//! # catrisk-gpusim
//!
//! A simulated many-core GPU and the aggregate-analysis kernels that run on
//! it.
//!
//! The paper evaluates its engine on an NVIDIA Tesla C2075 using CUDA.  That
//! hardware (and a CUDA toolchain) is not assumed here; instead this crate
//! provides a **software device model** with the pieces of the CUDA
//! execution model that the paper's results hinge on:
//!
//! * a [`DeviceSpec`] describing streaming
//!   multiprocessors, warps, clock rate, global-memory latency/bandwidth,
//!   and the per-SM shared/constant memory budgets (a Tesla C2075 preset is
//!   provided);
//! * an [`occupancy`] calculator applying the Fermi limits (threads per SM,
//!   blocks per SM, shared memory per SM) to a launch configuration;
//! * a [`kernel`]/[`executor`] layer that **really executes** kernels one
//!   simulated thread at a time — so the Year Loss Tables produced by the
//!   GPU kernels are checked bit-for-bit against the CPU engines — while
//!   recording every memory access to the global/shared/constant spaces;
//! * a [`timing`] model converting the recorded traffic into simulated
//!   execution time using bandwidth, latency and occupancy-based latency
//!   hiding (plus spill-to-global costs when a kernel's shared-memory
//!   request exceeds the hardware budget);
//! * the two ARE kernels of the paper: [`kernels::BasicAreKernel`]
//!   (all intermediates in global memory) and
//!   [`kernels::ChunkedAreKernel`] (intermediates staged through shared
//!   memory in fixed-size chunks, terms in constant memory);
//! * a [`scan_oracle`] extending the same bit-for-bit contract to the
//!   host-side vectorized scan kernels in `catrisk-riskquery`: every
//!   SIMD lane width, thread count and scheduling granularity must
//!   reproduce the sequential scalar reference exactly.
//!
//! The simulated timings are what the Fig. 4 / Fig. 5 / Fig. 6 benchmark
//! harnesses sweep; they are not wall-clock measurements of the host.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod device;
pub mod executor;
pub mod kernel;
pub mod kernels;
pub mod memory;
pub mod occupancy;
pub mod scan_oracle;
pub mod timing;

pub use device::DeviceSpec;
pub use executor::{Executor, LaunchResult};
pub use kernel::{Kernel, LaunchConfig, ThreadTracker};
pub use kernels::{BasicAreKernel, ChunkedAreKernel};
pub use memory::MemoryCounters;
pub use occupancy::Occupancy;
pub use scan_oracle::{verify_scan_kernels, ScanOracleReport};

/// Errors produced when launching kernels on the simulated device.
#[derive(Debug, Clone, PartialEq)]
pub enum GpuError {
    /// The launch configuration violates a hard device limit.
    InvalidLaunch(String),
}

impl std::fmt::Display for GpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpuError::InvalidLaunch(msg) => write!(f, "invalid kernel launch: {msg}"),
        }
    }
}

impl std::error::Error for GpuError {}

/// Result alias for simulated-GPU operations.
pub type Result<T> = std::result::Result<T, GpuError>;
