//! # catrisk-metrics
//!
//! Portfolio risk metrics derived from Year Loss Tables.
//!
//! "From a YLT, a reinsurer can derive important portfolio risk metrics such
//! as the Probable Maximum Loss (PML) and the Tail Value at Risk (TVAR)
//! which are used for both internal risk management and reporting to
//! regulators and rating agencies" (paper §I).  This crate implements those
//! filters (the paper's "financial functions applied on the aggregate loss
//! values"):
//!
//! * [`ep`] — exceedance-probability curves: AEP (annual aggregate) built
//!   from year losses and OEP (occurrence) built from per-trial maximum
//!   occurrence losses;
//! * [`pml`] — Probable Maximum Loss at standard return periods;
//! * [`mod@var`] — Value at Risk and Tail Value at Risk estimators;
//! * [`convergence`] — Monte-Carlo standard errors and bootstrap confidence
//!   intervals, quantifying how many trials a given quote needs;
//! * [`report`] — a combined risk report for a layer or portfolio.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convergence;
pub mod ep;
pub mod pml;
pub mod report;
pub mod var;

pub use convergence::{bootstrap_ci, convergence_table, ConvergencePoint};
pub use ep::ExceedanceCurve;
pub use pml::{pml_table, PmlPoint, STANDARD_RETURN_PERIODS};
pub use report::RiskReport;
pub use var::{tvar, var};
