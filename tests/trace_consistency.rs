//! Request-trace consistency: the span-tree execution profiles must
//! agree *exactly* with the timings, counters and histograms built from
//! the same clock reads.
//!
//! The invariants are structural, not statistical:
//!
//! * `trace.total_micros == queue_micros + exec_micros` for every traced
//!   reply — the trace is assembled from the identical `u64`s that fill
//!   the reply's `RequestTimings`, so the equality is exact, never
//!   approximate;
//! * with sampling set to "always" (`trace_sample_every = 1`),
//!   `traces_started == submitted` — the sampling decision rides the
//!   admission critical section;
//! * a traced request's `scan_shard` span count equals the server's
//!   `partial_misses` delta across that request (trial-sharded
//!   catalogs);
//! * child span durations never sum past their parent, recursively, and
//!   every child interval nests inside its parent's;
//! * every nonzero histogram exemplar id resolves to a retained-or-
//!   evicted trace, never to an id the store never issued.

use std::sync::Arc;
use std::time::Duration;

use catrisk_riskquery::prelude::*;
use catrisk_riskserve::test_store::random_store;
use catrisk_riskserve::{
    Server, ServerConfig, ShardAxis, StoreCatalog, Ticket, TraceLookup, TraceSpan,
};

/// Four distinct query shapes — each a separate result-cache entry.
fn query_shapes() -> Vec<Query> {
    [
        QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .group_by(Dimension::Region),
        QueryBuilder::new()
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .group_by(Dimension::Lob),
        QueryBuilder::new().aggregate(Aggregate::MaxLoss),
        QueryBuilder::new()
            .aggregate(Aggregate::StdDev)
            .group_by(Dimension::Peril),
    ]
    .into_iter()
    .map(|b| b.build().unwrap())
    .collect()
}

/// Asserts, recursively, that `span`'s children sum to no more than the
/// span itself and that every child interval nests inside the parent's.
fn assert_tree_arithmetic(span: &TraceSpan) {
    let child_sum: u64 = span.children.iter().map(|c| c.micros).sum();
    assert!(
        child_sum <= span.micros,
        "children of `{}` sum to {child_sum}us > parent {}us",
        span.name,
        span.micros
    );
    for child in &span.children {
        assert!(
            child.start_micros >= span.start_micros
                && child.start_micros + child.micros <= span.start_micros + span.micros,
            "child `{}` [{}..{}] escapes parent `{}` [{}..{}]",
            child.name,
            child.start_micros,
            child.start_micros + child.micros,
            span.name,
            span.start_micros,
            span.start_micros + span.micros
        );
        assert_tree_arithmetic(child);
    }
}

#[test]
fn trace_totals_match_reply_timings_exactly() {
    let store = Arc::new(random_store(96, 8, 42));
    let server = Server::new(
        Arc::clone(&store),
        ServerConfig {
            batch_window: Duration::from_micros(200),
            trace_sample_every: 1,
            ..ServerConfig::default()
        },
    );
    let queries = query_shapes();
    for _ in 0..3 {
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| server.submit(q.clone()).expect("admitted"))
            .collect();
        for ticket in tickets {
            let reply = ticket.wait().expect("answered");
            let trace = reply.trace.expect("sampling=always traces everything");
            // THE contract: the trace totals the same u64s the timings
            // carry — equality is exact because they share clock reads.
            assert_eq!(
                trace.total_micros,
                reply.timings.queue_micros + reply.timings.exec_micros,
                "trace {} disagrees with its own reply's timings",
                trace.id
            );
            assert_eq!(trace.root.name, "request");
            assert_eq!(trace.root.micros, trace.total_micros);
            // The first level re-states the timings verbatim.
            let queue = trace.root.find("queue").expect("queue span");
            assert_eq!(queue.micros, reply.timings.queue_micros);
            let exec = trace.root.find("exec").expect("exec span");
            assert_eq!(exec.micros, reply.timings.exec_micros);
            assert_tree_arithmetic(&trace.root);
        }
    }

    let stats = server.stats();
    assert_eq!(
        stats.traces_started, stats.submitted,
        "sampling=always must trace every admitted request: {stats:?}"
    );
    assert!(stats.traces_retained > 0);

    // Every nonzero exemplar stamped into the stage histograms resolves
    // to a trace the store actually issued — retained or evicted, never
    // unknown.
    let metrics = server.metrics();
    let mut exemplars = 0;
    for (name, histogram) in &metrics.histograms {
        for &(_, id) in &histogram.exemplars {
            exemplars += 1;
            assert_ne!(
                server.trace(id),
                TraceLookup::Unknown,
                "histogram `{name}` carries exemplar id {id} that was never issued"
            );
        }
    }
    assert!(exemplars > 0, "traced load must stamp exemplars");
    server.shutdown();
}

#[test]
fn scan_shard_span_count_matches_partial_miss_delta() {
    // Two trial-window shard files cut from one 64-trial store.
    let store = random_store(64, 4, 31);
    let mut paths = Vec::new();
    for (index, (start, end)) in [(0usize, 32usize), (32, 64)].into_iter().enumerate() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-trace-consistency-{}-{index}.clm",
            std::process::id()
        ));
        let mut writer = catrisk_riskstore::StoreWriter::create_with(
            &path,
            end - start,
            catrisk_riskstore::StoreOptions {
                trial_offset: start as u64,
                ..catrisk_riskstore::StoreOptions::default()
            },
        )
        .unwrap();
        for s in 0..store.num_segments() {
            writer
                .append_segment(
                    *store.meta(s),
                    &store.year_losses(s)[start..end],
                    &store.max_occ_losses(s)[start..end],
                )
                .unwrap();
        }
        writer.finish().unwrap();
        paths.push(path);
    }
    let catalog = StoreCatalog::open(&paths).unwrap();
    assert_eq!(catalog.axis(), ShardAxis::Trial);
    let server = Server::new(
        catalog,
        ServerConfig {
            trace_sample_every: 1,
            ..ServerConfig::default()
        },
    );

    // One request at a time: the stats delta around each submit is then
    // attributable to exactly that request's trace.
    let mut saw_rescans = false;
    for round in 0..2 {
        for query in query_shapes() {
            let before = server.stats();
            let reply = server.query(query).expect("answered");
            let after = server.stats();
            let trace = reply.trace.expect("sampling=always");
            let rescans = trace.root.count_named("scan_shard") as u64;
            assert_eq!(
                rescans,
                after.partial_misses - before.partial_misses,
                "round {round}: trace {} claims {rescans} shard rescans, \
                 counters moved by {}",
                trace.id,
                after.partial_misses - before.partial_misses
            );
            saw_rescans |= rescans > 0;
            if rescans > 0 {
                // A rescanning trace also records the stitch that
                // recombined the windows, and attributes its scan.
                assert_eq!(trace.root.count_named("stitch"), 1);
                let scan = trace.root.find("scan").expect("scan span");
                assert!(scan.attrs.iter().any(|(k, _)| k == "segments"));
            }
            assert_tree_arithmetic(&trace.root);
        }
    }
    assert!(saw_rescans, "first-round queries must rescan both windows");

    let stats = server.stats();
    assert_eq!(stats.traces_started, stats.submitted, "{stats:?}");
    server.shutdown();
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn forced_traces_work_with_sampling_off_and_zero_capacity() {
    let store = Arc::new(random_store(48, 4, 7));
    // Sampling off, retention off: a forced trace still rides its reply
    // inline; lookups answer `evicted`, never `unknown`, for issued ids.
    let server = Server::new(
        Arc::clone(&store),
        ServerConfig {
            trace_sample_every: 0,
            trace_capacity: 0,
            ..ServerConfig::default()
        },
    );
    let query = query_shapes().remove(0);

    let plain = server.query(query.clone()).expect("answered");
    assert!(plain.trace.is_none(), "sampling off: no trace unasked");

    let reply = server
        .submit_traced(query)
        .expect("admitted")
        .wait()
        .expect("answered");
    let trace = reply.trace.expect("forced trace rides the reply");
    assert_eq!(
        trace.total_micros,
        reply.timings.queue_micros + reply.timings.exec_micros
    );
    assert_eq!(server.trace(trace.id), TraceLookup::Evicted);
    assert_eq!(server.trace(trace.id + 1000), TraceLookup::Unknown);
    assert!(server.slowest_traces(5).is_empty());

    let stats = server.stats();
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.traces_started, 1, "only the forced submit traced");
    assert_eq!(stats.traces_retained, 0);
    server.shutdown();
}
