//! The stochastic event catalog.
//!
//! "Stochastic event catalogs ... are a mathematical representation of the
//! natural occurrence patterns and characteristics of catastrophe perils"
//! (paper §I).  Each catalog event carries an annual occurrence rate and a
//! hazard intensity; the catastrophe-model substrate turns intensity into
//! losses per exposure set, and the YET generator samples occurrence
//! sequences from the rates.

use rand::Rng as _;
use serde::{Deserialize, Serialize};

use catrisk_simkit::distributions::{Distribution, Pareto, Uniform};
use catrisk_simkit::rng::RngFactory;

use crate::peril::{Peril, Region};
use crate::{EventId, GenError, Result};

/// One event of the stochastic catalog.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogEvent {
    /// Dense identifier, equal to the event's index in the catalog.
    pub id: EventId,
    /// Peril class of the event.
    pub peril: Peril,
    /// Region where the event occurs.
    pub region: Region,
    /// Mean annual occurrence rate of the event (events/year).
    pub annual_rate: f64,
    /// Normalised hazard intensity in `(0, 1]`: 1 is the most severe event
    /// of its peril in the catalog (e.g. a category-5 landfall or a M9
    /// rupture).
    pub intensity: f64,
}

/// Configuration of the synthetic catalog generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CatalogConfig {
    /// Total number of events in the catalog (the paper discusses catalogs
    /// of around 2 million events; tests use much smaller ones).
    pub num_events: u32,
    /// Expected total number of event occurrences per year across the whole
    /// catalog, which determines the YET's events-per-trial (≈800–1500 in
    /// the paper).
    pub annual_event_budget: f64,
    /// Tail index of the rate distribution: smaller values concentrate the
    /// annual budget on fewer, more frequent events.
    pub rate_tail_index: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            num_events: 100_000,
            annual_event_budget: 1_000.0,
            rate_tail_index: 1.2,
        }
    }
}

impl CatalogConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_events == 0 {
            return Err(GenError::InvalidConfig(
                "num_events must be positive".into(),
            ));
        }
        if !(self.annual_event_budget.is_finite() && self.annual_event_budget > 0.0) {
            return Err(GenError::InvalidConfig(
                "annual_event_budget must be positive".into(),
            ));
        }
        if !(self.rate_tail_index.is_finite() && self.rate_tail_index > 0.0) {
            return Err(GenError::InvalidConfig(
                "rate_tail_index must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// A complete stochastic event catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventCatalog {
    events: Vec<CatalogEvent>,
}

impl EventCatalog {
    /// Wraps an explicit list of events (ids must equal indices).
    pub fn from_events(events: Vec<CatalogEvent>) -> Result<Self> {
        for (i, e) in events.iter().enumerate() {
            if e.id as usize != i {
                return Err(GenError::InvalidConfig(format!(
                    "event at index {i} has id {} (ids must be dense)",
                    e.id
                )));
            }
            if !(e.annual_rate.is_finite() && e.annual_rate >= 0.0) {
                return Err(GenError::InvalidConfig(format!(
                    "event {i} has invalid rate"
                )));
            }
        }
        Ok(Self { events })
    }

    /// Generates a synthetic multi-peril catalog.
    ///
    /// Events are allocated to perils according to [`Peril::catalog_share`],
    /// assigned to regions where the peril is active, given Pareto-tailed
    /// annual rates normalised so that the catalog-wide expected annual
    /// occurrence count equals `config.annual_event_budget`, and given an
    /// intensity that is anti-correlated with the rate (rare events are the
    /// severe ones).
    pub fn generate(config: &CatalogConfig, factory: &RngFactory) -> Result<Self> {
        config.validate()?;
        let factory = factory.derive("event-catalog");
        let n = config.num_events as usize;
        let mut events = Vec::with_capacity(n);

        // Allocate contiguous id blocks per peril so that per-peril slices
        // are cheap to obtain; the catalog order is otherwise irrelevant.
        let mut peril_of: Vec<Peril> = Vec::with_capacity(n);
        for (pi, peril) in Peril::ALL.iter().enumerate() {
            let share = peril.catalog_share();
            let count = if pi + 1 == Peril::ALL.len() {
                n - peril_of.len()
            } else {
                ((n as f64) * share).round() as usize
            };
            peril_of.extend(std::iter::repeat_n(*peril, count.min(n - peril_of.len())));
        }
        // Rounding may leave a shortfall; pad with the last peril.
        while peril_of.len() < n {
            peril_of.push(*Peril::ALL.last().expect("non-empty"));
        }

        let rate_dist = Pareto::new(1.0, config.rate_tail_index).expect("validated");
        let uniform = Uniform::new(0.0, 1.0).expect("static");

        let mut raw_rates = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = factory.stream(i as u64);
            raw_rates.push(rate_dist.sample(&mut rng));
        }
        let total_raw: f64 = raw_rates.iter().sum();
        let scale = config.annual_event_budget / total_raw;

        for (i, peril) in peril_of.iter().enumerate().take(n) {
            let mut rng = factory.stream2(1, i as u64);
            // Pick a region uniformly among the regions where the peril occurs.
            let candidates: Vec<Region> = Region::ALL
                .iter()
                .copied()
                .filter(|r| r.active_perils().contains(peril))
                .collect();
            let region = candidates[rng.gen_range(0..candidates.len())];
            let rate = raw_rates[i] * scale;
            // Severity rank: rarer events are more intense.  Normalise the
            // raw rate into (0,1] and invert, with some noise.
            let rarity = 1.0 / (1.0 + raw_rates[i]);
            let noise = 0.15 * uniform.sample(&mut rng);
            let intensity = (rarity * 0.85 + noise).clamp(1e-3, 1.0);
            events.push(CatalogEvent {
                id: i as EventId,
                peril: *peril,
                region,
                annual_rate: rate,
                intensity,
            });
        }
        Ok(Self { events })
    }

    /// Number of events in the catalog.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the catalog has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All events.
    pub fn events(&self) -> &[CatalogEvent] {
        &self.events
    }

    /// The event with the given id.
    pub fn event(&self, id: EventId) -> Option<&CatalogEvent> {
        self.events.get(id as usize)
    }

    /// Sum of all annual rates: the expected number of event occurrences in
    /// one year (≈ the YET's mean events per trial).
    pub fn total_annual_rate(&self) -> f64 {
        self.events.iter().map(|e| e.annual_rate).sum()
    }

    /// Expected annual occurrence count restricted to one peril.
    pub fn annual_rate_of(&self, peril: Peril) -> f64 {
        self.events
            .iter()
            .filter(|e| e.peril == peril)
            .map(|e| e.annual_rate)
            .sum()
    }

    /// Event ids and rates of one peril (used by the trial simulator).
    pub fn peril_events(&self, peril: Peril) -> Vec<(EventId, f64)> {
        self.events
            .iter()
            .filter(|e| e.peril == peril)
            .map(|e| (e.id, e.annual_rate))
            .collect()
    }

    /// The perils actually present in the catalog.
    pub fn perils(&self) -> Vec<Peril> {
        let mut perils: Vec<Peril> = self.events.iter().map(|e| e.peril).collect();
        perils.sort_unstable();
        perils.dedup();
        perils
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_catalog() -> EventCatalog {
        EventCatalog::generate(
            &CatalogConfig {
                num_events: 5_000,
                annual_event_budget: 1_000.0,
                rate_tail_index: 1.2,
            },
            &RngFactory::new(42),
        )
        .unwrap()
    }

    #[test]
    fn generate_respects_size_and_budget() {
        let cat = small_catalog();
        assert_eq!(cat.len(), 5_000);
        assert!(!cat.is_empty());
        assert!((cat.total_annual_rate() - 1_000.0).abs() < 1e-6);
        // Ids are dense.
        for (i, e) in cat.events().iter().enumerate() {
            assert_eq!(e.id as usize, i);
            assert!(e.annual_rate >= 0.0);
            assert!(e.intensity > 0.0 && e.intensity <= 1.0);
            assert!(e.region.active_perils().contains(&e.peril));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_catalog();
        let b = small_catalog();
        assert_eq!(a, b);
        let c = EventCatalog::generate(
            &CatalogConfig {
                num_events: 5_000,
                annual_event_budget: 1_000.0,
                rate_tail_index: 1.2,
            },
            &RngFactory::new(43),
        )
        .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn peril_mix_roughly_matches_shares() {
        let cat = small_catalog();
        for peril in Peril::ALL {
            let count = cat.events().iter().filter(|e| e.peril == peril).count();
            let share = count as f64 / cat.len() as f64;
            assert!(
                (share - peril.catalog_share()).abs() < 0.02,
                "{peril}: {share} vs {}",
                peril.catalog_share()
            );
        }
        assert_eq!(cat.perils().len(), Peril::ALL.len());
    }

    #[test]
    fn peril_events_consistent_with_rates() {
        let cat = small_catalog();
        let hu = cat.peril_events(Peril::Hurricane);
        assert!(!hu.is_empty());
        let sum: f64 = hu.iter().map(|(_, r)| r).sum();
        assert!((sum - cat.annual_rate_of(Peril::Hurricane)).abs() < 1e-9);
        let total: f64 = Peril::ALL.iter().map(|p| cat.annual_rate_of(*p)).sum();
        assert!((total - cat.total_annual_rate()).abs() < 1e-9);
    }

    #[test]
    fn event_lookup_by_id() {
        let cat = small_catalog();
        assert_eq!(cat.event(0).unwrap().id, 0);
        assert_eq!(cat.event(4_999).unwrap().id, 4_999);
        assert!(cat.event(5_000).is_none());
    }

    #[test]
    fn from_events_validates_ids_and_rates() {
        let good = vec![CatalogEvent {
            id: 0,
            peril: Peril::Flood,
            region: Region::Europe,
            annual_rate: 0.5,
            intensity: 0.2,
        }];
        assert!(EventCatalog::from_events(good.clone()).is_ok());
        let bad_id = vec![CatalogEvent { id: 3, ..good[0] }];
        assert!(EventCatalog::from_events(bad_id).is_err());
        let bad_rate = vec![CatalogEvent {
            annual_rate: f64::NAN,
            ..good[0]
        }];
        assert!(EventCatalog::from_events(bad_rate).is_err());
    }

    #[test]
    fn config_validation() {
        assert!(CatalogConfig {
            num_events: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CatalogConfig {
            annual_event_budget: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CatalogConfig {
            rate_tail_index: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CatalogConfig::default().validate().is_ok());
    }

    #[test]
    fn serde_round_trip() {
        let cat = EventCatalog::generate(
            &CatalogConfig {
                num_events: 50,
                annual_event_budget: 10.0,
                rate_tail_index: 1.1,
            },
            &RngFactory::new(1),
        )
        .unwrap();
        let json = serde_json::to_string(&cat).unwrap();
        let back: EventCatalog = serde_json::from_str(&json).unwrap();
        assert_eq!(cat, back);
    }
}
