//! The line-oriented wire protocol: one query text per line in, one JSON
//! object per line out.
//!
//! **The normative specification of this protocol is
//! `docs/PROTOCOL.md` at the repository root** — framing, the full
//! request grammar, the reply schema field by field, error/`Overloaded`
//! semantics and the versioning rules live there; this module
//! documentation is a working summary, and this module is the
//! implementation the spec's round-trip tests pin.
//!
//! # Request grammar
//!
//! Every request is a single line of UTF-8 text.  A query line is
//!
//! ```text
//! select <aggregates> [where <constraints>] [group by <dimensions>]
//! ```
//!
//! where the three clause bodies use exactly the textual forms of the CLI's
//! `--select` / `--where` / `--group-by` options (they are parsed by the
//! same `catrisk_riskquery::parse` functions):
//!
//! ```text
//! select mean, tvar(0.99), aep(10) where peril=HU|FL loss>=1e6 group by region
//! ```
//!
//! The keywords `select`, `where` and `group` are matched
//! case-insensitively at token boundaries and are reserved: clause bodies
//! never contain them (aggregates are a closed set, constraints always
//! contain `=`, `>` or `<`, dimensions are a closed set).
//!
//! A query line may be prefixed with `trace` to request the server's
//! execution profile alongside the result:
//!
//! ```text
//! trace select mean where peril=HU
//! ```
//!
//! Command lines are recognised instead of a query:
//!
//! * `ping` — liveness probe, answered with a `pong` reply;
//! * `stats` — a snapshot of the server counters;
//! * `metrics` — a snapshot of every metric (counters, gauges and the
//!   per-stage latency histograms); render it as Prometheus text with
//!   [`MetricsSnapshot::to_prometheus`](catrisk_telemetry::MetricsSnapshot::to_prometheus);
//! * `recorder` — the flight recorder's recent structured events;
//! * `recorder since <seq>` — only events with `seq >= <seq>`
//!   (incremental scrape);
//! * `trace <id>` — look up a retained trace by id (an evicted id
//!   answers `error.kind = "evicted"`, an unknown id `"invalid"`);
//! * `trace slowest [n]` — the `n` (default 5) slowest retained traces;
//! * `quit` — close this connection (the server keeps running);
//! * `shutdown` — drain and stop the whole server (the reply is sent
//!   before the listener winds down).
//!
//! Empty (or all-whitespace) lines are ignored.
//!
//! # Reply schema
//!
//! Every reply is one line of JSON (a [`WireReply`]):
//!
//! ```json
//! {"ok":true,"kind":"result","result":{...},"error":null,"stats":null,
//!  "timings":{"queue_micros":184,"exec_micros":950,"batch_size":7}}
//! ```
//!
//! `kind` is one of `result`, `pong`, `stats`, `trace`, `traces`, `bye`,
//! `shutting-down` or `error`.  Failed requests carry `ok=false` and an
//! `error` object whose `kind` is `parse`, `invalid`, `evicted`,
//! `overloaded` or `shutting-down` — an overloaded rejection is a
//! well-formed reply, not a dropped connection, so clients can implement
//! typed backoff.

use catrisk_riskquery::{parse_group_by, parse_select, parse_where, Query, QueryBuilder};

use crate::server::{Reply, ServeError};

// The reply types live in `catrisk-riskclient` (clients parse them
// without linking the serving stack); re-exported here at their
// long-standing paths.  This crate supplies the server-side
// constructors as `From` conversions below — `Reply` and `ServeError`
// are this crate's types, so the impls cannot live client-side.
pub use catrisk_riskclient::{WireError, WireReply};

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// An ad-hoc query to submit for batched execution.
    Query {
        /// The parsed query.
        query: Query,
        /// True when the line carried the `trace` prefix: the reply
        /// should include the request's execution profile.
        trace: bool,
    },
    /// Liveness probe.
    Ping,
    /// Server-counters snapshot.
    Stats,
    /// Full metric snapshot (counters, gauges, stage histograms).
    Metrics,
    /// Flight-recorder dump.
    Recorder,
    /// Incremental flight-recorder dump: events with `seq >= since`.
    RecorderSince(u64),
    /// Look up one retained trace by id.
    Trace(u64),
    /// The `n` slowest retained traces.
    TraceSlowest(usize),
    /// Close this connection.
    Quit,
    /// Drain and stop the whole server.
    Shutdown,
}

/// Parses one request line.  Returns `Ok(None)` for blank lines.
pub fn parse_request(line: &str) -> Result<Option<Request>, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(None);
    }
    match line.to_ascii_lowercase().as_str() {
        "ping" => return Ok(Some(Request::Ping)),
        "stats" => return Ok(Some(Request::Stats)),
        "metrics" => return Ok(Some(Request::Metrics)),
        "recorder" => return Ok(Some(Request::Recorder)),
        "quit" | "bye" => return Ok(Some(Request::Quit)),
        "shutdown" => return Ok(Some(Request::Shutdown)),
        _ => {}
    }
    let first = line.split_whitespace().next().unwrap_or("");
    if first.eq_ignore_ascii_case("trace") {
        return parse_trace_line(&line[first.len()..]).map(Some);
    }
    if first.eq_ignore_ascii_case("recorder") {
        return parse_recorder_since(&line[first.len()..]).map(Some);
    }
    parse_query_line(line).map(|query| {
        Some(Request::Query {
            query,
            trace: false,
        })
    })
}

/// Parses what follows the `trace` keyword: a traced query (`trace
/// select ...`), a lookup (`trace <id>`) or the slowest listing (`trace
/// slowest [n]`).
fn parse_trace_line(rest: &str) -> Result<Request, String> {
    let rest = rest.trim();
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    match tokens.first() {
        None => Err(
            "`trace` needs an argument: `trace select ...`, `trace <id>` or `trace slowest [n]`"
                .to_string(),
        ),
        Some(t) if t.eq_ignore_ascii_case("select") => {
            parse_query_line(rest).map(|query| Request::Query { query, trace: true })
        }
        Some(t) if t.eq_ignore_ascii_case("slowest") => {
            if tokens.len() > 2 {
                return Err("`trace slowest` takes at most one count argument".to_string());
            }
            let n = match tokens.get(1) {
                None => 5,
                Some(raw) => raw
                    .parse::<usize>()
                    .map_err(|_| format!("`trace slowest` count must be a number, got `{raw}`"))?,
            };
            Ok(Request::TraceSlowest(n))
        }
        Some(raw) => {
            if tokens.len() > 1 {
                return Err("`trace <id>` takes exactly one trace id".to_string());
            }
            raw.parse::<u64>().map(Request::Trace).map_err(|_| {
                format!("`trace` expects a numeric id, `slowest` or `select ...`, got `{raw}`")
            })
        }
    }
}

/// Parses what follows the `recorder` keyword when it is not the bare
/// command: only `since <seq>` is recognised.
fn parse_recorder_since(rest: &str) -> Result<Request, String> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    match tokens.as_slice() {
        [since, seq] if since.eq_ignore_ascii_case("since") => seq
            .parse::<u64>()
            .map(Request::RecorderSince)
            .map_err(|_| format!("`recorder since` expects a numeric seq, got `{seq}`")),
        _ => Err("after `recorder`, only `since <seq>` is recognised".to_string()),
    }
}

/// Splits a query line into its clauses and builds the [`Query`].
fn parse_query_line(line: &str) -> Result<Query, String> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    if !tokens
        .first()
        .is_some_and(|t| t.eq_ignore_ascii_case("select"))
    {
        return Err(format!(
            "a request is `[trace] select ... [where ...] [group by ...]` or one of \
             ping/stats/metrics/recorder/trace/quit/shutdown, got `{line}`"
        ));
    }
    const SELECT: usize = 0;
    const WHERE: usize = 1;
    const GROUP: usize = 2;
    let mut clauses: [Vec<&str>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut seen = [true, false, false];
    let mut current = SELECT;
    let mut index = 1;
    while index < tokens.len() {
        let token = tokens[index];
        if token.eq_ignore_ascii_case("where") {
            if seen[WHERE] {
                return Err("duplicate `where` clause".to_string());
            }
            seen[WHERE] = true;
            current = WHERE;
            index += 1;
            continue;
        }
        if token.eq_ignore_ascii_case("group") {
            if !tokens
                .get(index + 1)
                .is_some_and(|t| t.eq_ignore_ascii_case("by"))
            {
                return Err("`group` must be followed by `by`".to_string());
            }
            if seen[GROUP] {
                return Err("duplicate `group by` clause".to_string());
            }
            seen[GROUP] = true;
            current = GROUP;
            index += 2;
            continue;
        }
        clauses[current].push(token);
        index += 1;
    }
    let select_text = clauses[SELECT].join(" ");
    let where_text = clauses[WHERE].join(" ");
    let group_text = clauses[GROUP].join(" ");
    if select_text.is_empty() {
        return Err("empty select clause".to_string());
    }
    if seen[WHERE] && where_text.is_empty() {
        return Err("empty where clause".to_string());
    }
    if seen[GROUP] && group_text.is_empty() {
        return Err("empty group by clause".to_string());
    }

    let mut builder = QueryBuilder::new();
    for aggregate in parse_select(&select_text).map_err(|e| e.to_string())? {
        builder = builder.aggregate(aggregate);
    }
    if !where_text.is_empty() {
        let filter = parse_where(&where_text).map_err(|e| e.to_string())?;
        if let Some(perils) = filter.perils {
            builder = builder.with_perils(perils);
        }
        if let Some(regions) = filter.regions {
            builder = builder.in_regions(regions);
        }
        if let Some(lobs) = filter.lobs {
            builder = builder.for_lobs(lobs);
        }
        if let Some(layers) = filter.layers {
            builder = builder.in_layers(layers);
        }
        if let Some((start, end)) = filter.trials {
            builder = builder.trials(start..end);
        }
        if let Some(range) = filter.loss {
            builder = builder.loss_in(range.min, range.max);
        }
    }
    if !group_text.is_empty() {
        for dim in parse_group_by(&group_text).map_err(|e| e.to_string())? {
            builder = builder.group_by(dim);
        }
    }
    builder.build().map_err(|e| e.to_string())
}

impl From<Reply> for WireReply {
    /// A successful query reply.  The trace rides along exactly when the
    /// server sampled the request *and* the caller asked for it (the
    /// connection handler clears it otherwise).
    fn from(reply: Reply) -> Self {
        Self {
            result: Some(reply.result),
            trace: reply.trace,
            timings: reply.timings,
            ..Self::base("result")
        }
    }
}

impl From<&ServeError> for WireReply {
    /// The error reply for a typed serving error.
    fn from(err: &ServeError) -> Self {
        Self::error(err.kind(), err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_eventgen::peril::Peril;
    use catrisk_riskquery::prelude::*;

    #[test]
    fn commands_parse() {
        assert_eq!(parse_request("  "), Ok(None));
        assert_eq!(parse_request("ping"), Ok(Some(Request::Ping)));
        assert_eq!(parse_request("STATS"), Ok(Some(Request::Stats)));
        assert_eq!(parse_request("metrics"), Ok(Some(Request::Metrics)));
        assert_eq!(parse_request("Recorder"), Ok(Some(Request::Recorder)));
        assert_eq!(parse_request("quit"), Ok(Some(Request::Quit)));
        assert_eq!(parse_request("bye"), Ok(Some(Request::Quit)));
        assert_eq!(parse_request("Shutdown"), Ok(Some(Request::Shutdown)));
    }

    #[test]
    fn trace_and_recorder_since_commands_parse() {
        assert_eq!(parse_request("trace 42"), Ok(Some(Request::Trace(42))));
        assert_eq!(parse_request("TRACE 7"), Ok(Some(Request::Trace(7))));
        assert_eq!(
            parse_request("trace slowest"),
            Ok(Some(Request::TraceSlowest(5)))
        );
        assert_eq!(
            parse_request("trace Slowest 3"),
            Ok(Some(Request::TraceSlowest(3)))
        );
        assert_eq!(
            parse_request("recorder since 17"),
            Ok(Some(Request::RecorderSince(17)))
        );
        assert_eq!(
            parse_request("Recorder SINCE 0"),
            Ok(Some(Request::RecorderSince(0)))
        );

        let traced = parse_request("trace select mean where peril=HU")
            .unwrap()
            .unwrap();
        let Request::Query { query, trace } = traced else {
            panic!("expected a traced query");
        };
        assert!(trace);
        assert_eq!(query.aggregates.len(), 1);

        for line in [
            "trace",
            "trace nope",
            "trace 1 2",
            "trace slowest x",
            "trace slowest 1 2",
            "recorder since",
            "recorder since x",
            "recorder nonsense",
        ] {
            assert!(parse_request(line).is_err(), "`{line}` must fail");
        }
    }

    #[test]
    fn query_lines_parse_into_full_queries() {
        let request = parse_request(
            "select mean, tvar(0.99), aep(4) where peril=HU|FL loss>=1e6 group by region, lob",
        )
        .unwrap()
        .unwrap();
        let Request::Query { query, trace } = request else {
            panic!("expected a query");
        };
        assert!(!trace);
        assert_eq!(query.aggregates.len(), 3);
        assert_eq!(
            query.filter.perils,
            Some(vec![Peril::Hurricane, Peril::Flood])
        );
        assert_eq!(query.filter.loss, Some(LossRange::at_least(1.0e6)));
        assert_eq!(query.group_by, vec![Dimension::Region, Dimension::Lob]);

        // Clauses are optional and keywords case-insensitive.
        let minimal = parse_request("SELECT mean").unwrap().unwrap();
        let Request::Query { query, .. } = minimal else {
            panic!("expected a query");
        };
        assert_eq!(query.aggregates, vec![Aggregate::Mean]);
        assert!(query.group_by.is_empty());
    }

    #[test]
    fn malformed_lines_error_without_panicking() {
        for line in [
            "frobnicate",
            "select",
            "select nope",
            "select mean where",
            "select mean group region",
            "select mean group by",
            "select mean group by continent",
            "select mean where galaxy=milkyway",
            "select mean where peril=HU where peril=FL",
            "select mean group by region group by lob",
        ] {
            assert!(parse_request(line).is_err(), "`{line}` must fail");
        }
    }

    #[test]
    fn wire_replies_round_trip_with_live_telemetry_payloads() {
        // The pure wire-schema round trips live in `catrisk-riskclient`;
        // this pins the server-built payloads (metrics registry, flight
        // recorder) through the same serialisation.
        let registry = catrisk_telemetry::Registry::new();
        registry.counter("completed").add(3);
        registry.histogram("stage_scan_micros").record(120);
        let metrics = WireReply::metrics(registry.snapshot());
        let parsed = WireReply::from_line(&metrics.to_line()).unwrap();
        assert_eq!(parsed.kind, "metrics");
        let snapshot = parsed.metrics.unwrap();
        assert_eq!(snapshot.counter("completed"), Some(3));
        assert_eq!(snapshot.histogram("stage_scan_micros").unwrap().count, 1);

        let recorder = catrisk_telemetry::FlightRecorder::new(4);
        recorder.record("batch", [("size", 2u64.into())]);
        let parsed = WireReply::from_line(&WireReply::recorder(recorder.dump()).to_line()).unwrap();
        assert_eq!(parsed.kind, "recorder");
        assert_eq!(parsed.recorder.unwrap().len(), 1);
    }

    #[test]
    fn trace_replies_round_trip_and_map_lookup_outcomes() {
        use catrisk_telemetry::{TraceLookup, TraceRecord, TraceSpan};
        let record = TraceRecord {
            id: 9,
            total_micros: 120,
            root: TraceSpan::new("request", 0, 120).attr("batch_size", 2),
        };

        let retained = WireReply::trace_lookup(9, TraceLookup::Retained(record.clone()));
        let parsed = WireReply::from_line(&retained.to_line()).unwrap();
        assert!(parsed.ok);
        assert_eq!(parsed.kind, "trace");
        assert_eq!(parsed.trace, Some(record.clone()));

        let evicted = WireReply::trace_lookup(3, TraceLookup::Evicted);
        assert!(!evicted.ok);
        assert_eq!(evicted.error.as_ref().unwrap().kind, "evicted");

        let unknown = WireReply::trace_lookup(999, TraceLookup::Unknown);
        assert_eq!(unknown.error.as_ref().unwrap().kind, "invalid");

        let slowest = WireReply::traces(vec![record.clone()]);
        let parsed = WireReply::from_line(&slowest.to_line()).unwrap();
        assert_eq!(parsed.kind, "traces");
        assert_eq!(parsed.traces, Some(vec![record]));
    }

    #[test]
    fn serve_errors_map_to_wire_kinds() {
        let reply = WireReply::from(&ServeError::Overloaded { depth: 9 });
        assert!(!reply.ok);
        assert_eq!(reply.error.as_ref().unwrap().kind, "overloaded");
        let reply = WireReply::from(&ServeError::InvalidQuery("x".to_string()));
        assert_eq!(reply.error.as_ref().unwrap().kind, "invalid");
    }
}
