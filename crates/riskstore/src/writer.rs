//! The buffered, incremental store writer.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use catrisk_engine::ylt::{AnalysisOutput, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::{Dictionary, LineOfBusiness, SegmentMeta};

use crate::commit::read_committed_state;
use crate::footer::{encode_layer, encode_lob, encode_peril, encode_region, Footer, SegmentEntry};
use crate::format::{align8, crc32, pages_per_column, Header, DEFAULT_PAGE_TRIALS, HEADER_LEN};
use crate::{Result, StoreError};

/// Tunables for a new store file.
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Trials per checksummed loss page (must be positive).
    pub page_trials: u32,
    /// First global trial this store covers: the store holds trials
    /// `[trial_offset, trial_offset + num_trials)` of a larger logical
    /// trial axis.  Zero (the default) marks a self-contained store; a
    /// trial-sharded ingest fleet gives each writer its own offset so a
    /// serving catalog can stitch the shards back together in order.
    /// Fixed at creation, like the page size.
    pub trial_offset: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            page_trials: DEFAULT_PAGE_TRIALS,
            trial_offset: 0,
        }
    }
}

/// Writes segments into a store file, buffered, with explicit commits.
///
/// Appended segments become durable and reader-visible only at
/// [`commit`](StoreWriter::commit) (or [`finish`](StoreWriter::finish),
/// which commits and closes) — see the crate docs for the commit protocol.
/// Between commits the writer holds only the footer state (dictionaries,
/// codes, page checksums) in memory; loss pages go straight to the file.
#[derive(Debug)]
pub struct StoreWriter {
    file: File,
    path: PathBuf,
    num_trials: usize,
    page_trials: u32,
    trial_offset: u64,
    commit_seq: u64,
    /// Next append offset (always ≥ the end of committed bytes).
    end: u64,
    /// Segments included in the last committed footer.
    committed_segments: usize,
    layer_dict: Dictionary<LayerId>,
    peril_dict: Dictionary<Peril>,
    region_dict: Dictionary<Region>,
    lob_dict: Dictionary<LineOfBusiness>,
    codes: [Vec<u32>; 4],
    directory: Vec<SegmentEntry>,
}

impl StoreWriter {
    /// Creates a new store file for `num_trials`-trial segments,
    /// truncating any existing file at `path`.
    pub fn create(path: impl AsRef<Path>, num_trials: usize) -> Result<StoreWriter> {
        Self::create_with(path, num_trials, StoreOptions::default())
    }

    /// Creates a new store file with explicit options.
    pub fn create_with(
        path: impl AsRef<Path>,
        num_trials: usize,
        options: StoreOptions,
    ) -> Result<StoreWriter> {
        if options.page_trials == 0 {
            return Err(StoreError::InvalidArgument(
                "page_trials must be positive".to_string(),
            ));
        }
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let header = Header {
            num_trials: num_trials as u64,
            page_trials: options.page_trials,
            footer_offset: 0,
            footer_len: 0,
            commit_seq: 0,
            trial_offset: options.trial_offset,
        };
        // Both header slots start identical; commits then alternate slots
        // so a torn header write can never lose the store.
        let slot = header.encode();
        file.write_all(&slot)?;
        file.write_all(&slot)?;
        file.sync_data()?;
        Ok(StoreWriter {
            file,
            path,
            num_trials,
            page_trials: options.page_trials,
            trial_offset: options.trial_offset,
            commit_seq: 0,
            end: HEADER_LEN,
            committed_segments: 0,
            layer_dict: Dictionary::new(),
            peril_dict: Dictionary::new(),
            region_dict: Dictionary::new(),
            lob_dict: Dictionary::new(),
            codes: Default::default(),
            directory: Vec::new(),
        })
    }

    /// Reopens an existing store for appending.
    ///
    /// The committed state (header, footer, dictionaries, directory) is
    /// validated and loaded — through the same decode path
    /// [`StoreReader::open`](crate::StoreReader::open) uses — and any
    /// bytes past the committed footer — an interrupted earlier append —
    /// are truncated away before new segments are written.
    pub fn open_append(path: impl AsRef<Path>) -> Result<StoreWriter> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
        let state = read_committed_state(&mut file)?;

        let mut writer = StoreWriter {
            file,
            path,
            num_trials: state.num_trials,
            page_trials: state.header.page_trials,
            trial_offset: state.header.trial_offset,
            commit_seq: state.header.commit_seq,
            end: state.committed_end,
            committed_segments: 0,
            layer_dict: Dictionary::new(),
            peril_dict: Dictionary::new(),
            region_dict: Dictionary::new(),
            lob_dict: Dictionary::new(),
            codes: Default::default(),
            directory: Vec::new(),
        };
        if let Some(footer) = state.footer {
            writer.load_footer(&footer)?;
            writer.committed_segments = footer.segments.len();
            writer.directory = footer.segments;
        }

        // Drop uncommitted bytes from an interrupted append.
        writer.file.set_len(writer.end)?;
        Ok(writer)
    }

    /// Rebuilds the in-memory dictionaries and code vectors from a decoded
    /// footer (intern order is code order, so codes are preserved).
    fn load_footer(&mut self, footer: &Footer) -> Result<()> {
        for &raw in &footer.dict_values[0] {
            self.layer_dict.intern(crate::footer::decode_layer(raw)?);
        }
        for &raw in &footer.dict_values[1] {
            self.peril_dict.intern(crate::footer::decode_peril(raw)?);
        }
        for &raw in &footer.dict_values[2] {
            self.region_dict.intern(crate::footer::decode_region(raw)?);
        }
        for &raw in &footer.dict_values[3] {
            self.lob_dict.intern(crate::footer::decode_lob(raw)?);
        }
        self.codes = footer.codes.clone();
        Ok(())
    }

    /// Trials every segment must hold.
    pub fn num_trials(&self) -> usize {
        self.num_trials
    }

    /// Trials per checksummed loss page — fixed at store creation.
    pub fn page_trials(&self) -> u32 {
        self.page_trials
    }

    /// First global trial this store covers — fixed at store creation
    /// (zero for a self-contained store).
    pub fn trial_offset(&self) -> u64 {
        self.trial_offset
    }

    /// Total segments appended (committed or not).
    pub fn num_segments(&self) -> usize {
        self.directory.len()
    }

    /// Segments appended since the last commit.
    pub fn uncommitted_segments(&self) -> usize {
        self.directory.len() - self.committed_segments
    }

    /// Commits published so far.
    pub fn commit_seq(&self) -> u64 {
        self.commit_seq
    }

    /// The file being written.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one segment (its two loss columns plus dimension tags),
    /// returning the segment index.  Not visible to readers until
    /// [`commit`](StoreWriter::commit).
    pub fn append_segment(
        &mut self,
        meta: SegmentMeta,
        year: &[f64],
        max_occ: &[f64],
    ) -> Result<usize> {
        if year.len() != self.num_trials || max_occ.len() != self.num_trials {
            return Err(StoreError::InvalidArgument(format!(
                "segment {meta} columns hold {} / {} trials but the store holds \
                 {}-trial segments",
                year.len(),
                max_occ.len(),
                self.num_trials
            )));
        }
        let data_offset = align8(self.end);
        self.file.seek(SeekFrom::Start(self.end))?;
        if data_offset > self.end {
            self.file
                .write_all(&vec![0u8; (data_offset - self.end) as usize])?;
        }

        let year_page_crcs = self.write_column(year)?;
        let occ_page_crcs = self.write_column(max_occ)?;
        self.end = data_offset + 2 * (self.num_trials as u64) * 8;

        self.codes[0].push(self.layer_dict.intern(meta.layer));
        self.codes[1].push(self.peril_dict.intern(meta.peril));
        self.codes[2].push(self.region_dict.intern(meta.region));
        self.codes[3].push(self.lob_dict.intern(meta.lob));
        self.directory.push(SegmentEntry {
            data_offset,
            year_page_crcs,
            occ_page_crcs,
        });
        Ok(self.directory.len() - 1)
    }

    /// Appends one YLT, reading its columns out of the trial outcomes.
    pub fn append_ylt(&mut self, ylt: &YearLossTable, meta: SegmentMeta) -> Result<usize> {
        let mut year = Vec::with_capacity(ylt.num_trials());
        let mut occ = Vec::with_capacity(ylt.num_trials());
        for outcome in ylt.outcomes() {
            year.push(outcome.year_loss);
            occ.push(outcome.max_occurrence_loss);
        }
        self.append_segment(meta, &year, &occ)
    }

    /// Appends every layer of an engine run, `metas[i]` tagging
    /// `output.layer(i)` — the persistent analogue of
    /// `ResultStore::ingest_output`.
    pub fn append_output(&mut self, output: &AnalysisOutput, metas: &[SegmentMeta]) -> Result<()> {
        if output.num_layers() != metas.len() {
            return Err(StoreError::InvalidArgument(format!(
                "{} layers but {} segment tags",
                output.num_layers(),
                metas.len()
            )));
        }
        for (ylt, meta) in output.layers().iter().zip(metas) {
            self.append_ylt(ylt, *meta)?;
        }
        Ok(())
    }

    /// Writes one loss column as checksummed pages at the current file
    /// position, returning the per-page CRCs.
    fn write_column(&mut self, column: &[f64]) -> Result<Vec<u32>> {
        let mut crcs = Vec::with_capacity(pages_per_column(self.num_trials, self.page_trials));
        let mut page_bytes = Vec::with_capacity(self.page_trials as usize * 8);
        for page in column.chunks(self.page_trials as usize) {
            page_bytes.clear();
            for &loss in page {
                page_bytes.extend_from_slice(&loss.to_le_bytes());
            }
            crcs.push(crc32(&page_bytes));
            self.file.write_all(&page_bytes)?;
        }
        Ok(crcs)
    }

    /// Publishes every appended segment: syncs the data pages, writes a
    /// footer at the (8-aligned) end of file, syncs it, then re-patches
    /// the header to point at it.  Returns the new commit sequence.
    /// A no-op returning the current sequence when nothing is pending and
    /// a footer already exists.
    pub fn commit(&mut self) -> Result<u64> {
        if self.uncommitted_segments() == 0 && self.commit_seq > 0 {
            return Ok(self.commit_seq);
        }
        self.file.sync_data()?;

        let footer_offset = align8(self.end);
        self.commit_seq += 1;
        let footer = Footer {
            commit_seq: self.commit_seq,
            dict_values: [
                self.layer_dict
                    .values()
                    .iter()
                    .map(|&l| encode_layer(l))
                    .collect(),
                self.peril_dict
                    .values()
                    .iter()
                    .map(|&p| encode_peril(p))
                    .collect(),
                self.region_dict
                    .values()
                    .iter()
                    .map(|&r| encode_region(r))
                    .collect(),
                self.lob_dict
                    .values()
                    .iter()
                    .map(|&l| encode_lob(l))
                    .collect(),
            ],
            codes: self.codes.clone(),
            segments: self.directory.clone(),
        };
        let footer_bytes = footer.encode();
        self.file.seek(SeekFrom::Start(self.end))?;
        if footer_offset > self.end {
            self.file
                .write_all(&vec![0u8; (footer_offset - self.end) as usize])?;
        }
        self.file.write_all(&footer_bytes)?;
        self.file.sync_data()?;

        let header = Header {
            num_trials: self.num_trials as u64,
            page_trials: self.page_trials,
            footer_offset,
            footer_len: footer_bytes.len() as u64,
            commit_seq: self.commit_seq,
            trial_offset: self.trial_offset,
        };
        // Alternate header slots: a crash tearing this write damages only
        // the slot holding the stale twin of the *previous* commit, so a
        // reader always finds a valid header pointing at a valid footer.
        self.file
            .seek(SeekFrom::Start(Header::slot_offset(self.commit_seq)))?;
        self.file.write_all(&header.encode())?;
        self.file.sync_data()?;

        self.end = footer_offset + footer_bytes.len() as u64;
        self.committed_segments = self.directory.len();
        Ok(self.commit_seq)
    }

    /// Commits pending segments and closes the writer, returning the total
    /// number of committed segments.
    pub fn finish(mut self) -> Result<usize> {
        self.commit()?;
        Ok(self.directory.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::StoreReader;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-writer-{}-{}.clm",
            std::process::id(),
            name
        ));
        path
    }

    fn meta(layer: u32, peril: Peril) -> SegmentMeta {
        SegmentMeta::new(
            LayerId(layer),
            peril,
            Region::Europe,
            LineOfBusiness::Property,
        )
    }

    #[test]
    fn writer_validates_inputs() {
        let path = temp_path("validate");
        assert!(matches!(
            StoreWriter::create_with(
                &path,
                4,
                StoreOptions {
                    page_trials: 0,
                    ..StoreOptions::default()
                }
            ),
            Err(StoreError::InvalidArgument(_))
        ));
        let mut writer = StoreWriter::create(&path, 4).unwrap();
        assert!(matches!(
            writer.append_segment(meta(0, Peril::Flood), &[1.0], &[1.0]),
            Err(StoreError::InvalidArgument(_))
        ));
        assert_eq!(writer.num_trials(), 4);
        assert_eq!(writer.num_segments(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_append_truncates_uncommitted_tail() {
        let path = temp_path("truncate");
        let mut writer = StoreWriter::create(&path, 2).unwrap();
        writer
            .append_segment(meta(0, Peril::Hurricane), &[1.0, 2.0], &[1.0, 1.5])
            .unwrap();
        writer.commit().unwrap();
        let committed_len = std::fs::metadata(&path).unwrap().len();
        // Append without committing, then drop the writer (simulating a
        // crash): the bytes past the footer are garbage.
        writer
            .append_segment(meta(1, Peril::Flood), &[3.0, 4.0], &[2.0, 2.0])
            .unwrap();
        drop(writer);
        assert!(std::fs::metadata(&path).unwrap().len() > committed_len);

        let reopened = StoreWriter::open_append(&path).unwrap();
        assert_eq!(reopened.num_segments(), 1);
        assert_eq!(reopened.uncommitted_segments(), 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed_len);
        drop(reopened);

        let reader = StoreReader::open(&path).unwrap();
        assert_eq!(reader.num_segments(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn commit_without_changes_is_a_noop() {
        let path = temp_path("noop");
        let mut writer = StoreWriter::create(&path, 1).unwrap();
        writer
            .append_segment(meta(0, Peril::Hurricane), &[1.0], &[1.0])
            .unwrap();
        let seq = writer.commit().unwrap();
        assert_eq!(writer.commit().unwrap(), seq);
        let len = std::fs::metadata(&path).unwrap().len();
        assert_eq!(writer.commit().unwrap(), seq);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
        let _ = std::fs::remove_file(&path);
    }
}
