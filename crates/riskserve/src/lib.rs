//! # catrisk-riskserve
//!
//! The async serving front-end over the query engine: micro-batched
//! execution of many concurrent analyst queries against one shared store.
//!
//! The ROADMAP north star is a serving system under heavy interactive
//! traffic.  QuPARA (Rau-Chaplin et al.) got its throughput by pushing a
//! *whole batch* of analyst queries through one pass over the shared YLT
//! file; `catrisk-riskquery` reproduced that as
//! [`QuerySession`](catrisk_riskquery::QuerySession) — a fused
//! scan answering a batch of queries bit-identically to running each
//! alone.  What was missing is the layer that turns *concurrent client
//! requests* into those batches.  This crate is that layer.
//!
//! ## Architecture: queue → window → fused batch → reply
//!
//! ```text
//!  clients        admission            batch scheduler          workers
//!  ───────        ─────────            ───────────────          ───────
//!  submit ──▶ bounded queue ──▶ window closes at max_batch ──▶ QuerySession::run
//!  submit ──▶  (Overloaded      or batch_window µs,            (one fused scan,
//!  submit ──▶   past depth)     whichever first)                rayon pool)
//!                                                                   │
//!  Ticket::wait ◀── reply slots (result + latency attribution) ◀────┘
//! ```
//!
//! * **Admission** ([`Server::submit`]): the query is validated against
//!   the store up front (a malformed query is rejected here and can never
//!   fail a batch it would have shared with other clients), then appended
//!   to a bounded queue.  Past [`ServerConfig::queue_depth`] pending
//!   requests the submit returns a typed [`ServeError::Overloaded`] —
//!   backpressure is an answer, not a dropped connection.
//! * **Batch window**: a worker that finds the queue non-empty holds a
//!   window open, closing it after [`ServerConfig::max_batch`] requests
//!   or [`ServerConfig::batch_window`] microseconds, whichever comes
//!   first.  Everything pending rides one batch.
//! * **Fused batch**: identical queries from different submitters are
//!   deduplicated (— [`Query`](catrisk_riskquery::Query) is `Eq + Hash`
//!   with a total, NaN-free float treatment precisely so this map cannot
//!   collide or miss), then the whole batch goes through one
//!   [`QuerySession::run`](catrisk_riskquery::QuerySession::run): shared
//!   scan specs collapse, the remaining scans fuse into one pass per
//!   trial window, order statistics are computed once per spec.  N
//!   concurrent "mean/TVaR/EP of slice X" requests cost ~1 scan, not N.
//! * **Reply**: every request's [`Ticket`] resolves to the result plus
//!   [`RequestTimings`] — queue wait, batch execution time, batch size —
//!   so tail latency is attributable.  Accepted tickets are always
//!   answered, including across shutdown (workers drain the queue before
//!   exiting).
//!
//! Results are **bit-identical** to running each query sequentially
//! through a `QuerySession` — batching is a throughput optimisation, not
//! an approximation (`tests/serve_equivalence.rs` in the workspace proves
//! this property under concurrency, for arbitrary batch windows).
//!
//! ## Three ways in
//!
//! 1. **Library**: [`Server::submit`] → [`Ticket`] → [`Reply`], from any
//!    number of threads.
//! 2. **TCP** ([`TcpFrontEnd`]): a line-oriented protocol on `std::net` —
//!    one query text per line in, one JSON reply per line out; the
//!    normative wire specification is `docs/PROTOCOL.md` at the
//!    repository root ([`protocol`] summarises it and implements the
//!    framing).  No async runtime: one OS thread per connection, which
//!    is exactly the concurrency the batch scheduler coalesces.
//! 3. **CLI**: `catrisk serve` (start a front-end over a persistent
//!    store) and `catrisk loadgen` (drive open-loop load and print
//!    throughput/p50/p99) in the `catrisk-cli` crate.
//!
//! ## The data plane: providers, catalogs, refresh, cache
//!
//! The store side is a [`SourceProvider`] — the abstraction that hands
//! every batch a consistent snapshot of the data plus the *generation
//! stamps* the result cache keys on:
//!
//! * any `Arc<SegmentSource>` (an in-memory store, an immutable
//!   `catrisk_riskstore::StoreReader`) serves as a single static shard;
//! * a [`StoreCatalog`] serves **many persistent stores as one logical
//!   store**, along either sharding axis (detected at open from the
//!   stores' persisted trial offsets, see [`ShardAxis`]) — per batch it
//!   snapshots every
//!   shard under read locks and presents a **segment**-axis catalog's
//!   union through [`ShardedSource`](catrisk_riskquery::ShardedSource)
//!   and a **trial**-axis catalog (the paper's partition dimension:
//!   shards own disjoint trial windows of the same segments) through
//!   [`TrialShardedSource`](catrisk_riskquery::TrialShardedSource),
//!   bit-identically to one store holding everything.
//!
//! Before each batch the scheduler calls
//! [`SourceProvider::refresh`]: a catalog probes each shard's committed
//! generation from its 128-byte header and maps newly committed segments
//! in place (`StoreReader::refresh`), so the server keeps answering while
//! ingest writers commit — *serve while ingesting*.  Batches then consult
//! a generation-keyed result cache (keyed on the total `Eq + Hash`
//! [`Query`](catrisk_riskquery::Query), stamped with every shard's
//! generation): repeated queries cost no scan at all, and a shard's
//! entries go stale precisely when its refresh observes a new commit —
//! cached replies are bit-identical to a fresh scan of the current
//! snapshot, never a stale approximation.
//!
//! On a trial-axis catalog the result cache is backed by a **per-shard
//! partial-aggregate cache**: each `(query, shard)` pair caches the
//! shard's [`TrialPartial`](catrisk_riskquery::TrialPartial), stamped
//! with only that shard's generation (plus the union's committed segment
//! prefix).  A refresh of one shard therefore rescans *one trial window*
//! and re-combines the other shards' cached partials through the exact
//! adjacent-window monoid — where the whole-result cache alone would
//! have rescanned the entire axis for every cached query.  The
//! [`StatsSnapshot`] `partial_hits` / `partial_misses` counters account
//! for exactly this reuse.  See `docs/ARCHITECTURE.md` at the repository
//! root for the full refresh / generation / invalidation protocol.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cache;
mod sync;

pub mod catalog;
pub mod fleet;
pub mod loadgen;
pub mod protocol;
pub mod server;
pub mod source;
pub mod stats;
pub mod tcp;
pub mod telemetry;

pub use catalog::{ShardAxis, StoreCatalog};
pub use fleet::{Fleet, FleetError, FleetOptions, ReplicaHealth};
pub use loadgen::{default_mix, IngestReport, LoadReport, LoadgenOptions};
pub use protocol::{parse_request, Request, WireError, WireReply};
pub use server::{Reply, ServeError, Server, ServerConfig, Ticket};
pub use source::{SourceProvider, SourceSnapshot};
pub use stats::{percentile, RequestTimings, StatsSnapshot};
pub use tcp::TcpFrontEnd;

pub use catrisk_telemetry::{TraceLookup, TraceRecord, TraceSpan};

/// Test fixtures (a random tagged store, a mixed query batch) shared with
/// the workspace's integration tests via the `testkit` feature; this
/// crate's own tests always see them.
#[cfg(any(test, feature = "testkit"))]
pub mod test_store;
