//! On-disk format primitives: magic numbers, the fixed-size header, CRC32,
//! and little-endian encode/decode helpers.
//!
//! The authoritative byte-level layout specification lives in the crate
//! root documentation ([`crate`]); this module implements it.

use crate::{Result, StoreError};

/// File magic, first 8 bytes of every store file.
pub const MAGIC: [u8; 8] = *b"CRSKYLT1";

/// Footer magic, first 8 bytes of every committed footer.
pub const FOOTER_MAGIC: [u8; 8] = *b"CRSKFTR1";

/// Format version written and the only version read.
pub const VERSION: u32 = 1;

/// Size of one header slot, in bytes.
pub const HEADER_SLOT_LEN: u64 = 64;

/// Size of the fixed header region at offset 0: two independently
/// checksummed slots, so a torn header write can never lose the store
/// (the commit protocol alternates slots; readers pick the valid slot
/// with the highest commit counter).
pub const HEADER_LEN: u64 = 2 * HEADER_SLOT_LEN;

/// Default number of trials per checksummed loss page.
pub const DEFAULT_PAGE_TRIALS: u32 = 4096;

/// Rounds `offset` up to the next 8-byte boundary (loss pages hold `f64`s
/// and must stay 8-aligned so a loaded region can be reinterpreted
/// in place).
pub fn align8(offset: u64) -> u64 {
    (offset + 7) & !7
}

/// Reads as many bytes as the file holds, up to `buf.len()` — used to read
/// the header region of files that may be shorter than it.
pub(crate) fn read_up_to(file: &mut std::fs::File, buf: &mut [u8]) -> Result<usize> {
    use std::io::Read;
    let mut got = 0;
    while got < buf.len() {
        let n = file.read(&mut buf[got..])?;
        if n == 0 {
            break;
        }
        got += n;
    }
    Ok(got)
}

/// Number of pages each loss column of a segment occupies.
pub fn pages_per_column(num_trials: usize, page_trials: u32) -> usize {
    num_trials.div_ceil(page_trials as usize)
}

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.
///
/// Implemented locally because the build environment vendors no compression
/// or hashing crates; the polynomial is reflected 0x04C11DB7 (0xEDB88320),
/// initial value and final XOR are `0xFFFF_FFFF` — byte-for-byte the
/// checksum `crc32fast` would produce.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Little-endian buffer codec
// ---------------------------------------------------------------------------

/// Append-only little-endian encoder used to build headers and footers.
#[derive(Debug, Default)]
pub struct Encoder {
    bytes: Vec<u8>,
}

impl Encoder {
    /// Starts an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Finishes encoding, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.bytes.extend_from_slice(bytes);
    }

    /// Appends a `u32` little-endian.
    pub fn put_u32(&mut self, value: u32) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `u64` little-endian.
    pub fn put_u64(&mut self, value: u64) {
        self.bytes.extend_from_slice(&value.to_le_bytes());
    }
}

/// Cursor-style little-endian decoder with typed truncation errors.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    at: usize,
    /// Context used in error messages ("header", "footer", ...).
    what: &'static str,
}

impl<'a> Decoder<'a> {
    /// Decodes from `bytes`; `what` names the region for error messages.
    pub fn new(bytes: &'a [u8], what: &'static str) -> Self {
        Self { bytes, at: 0, what }
    }

    /// Offset of the next unread byte.
    pub fn position(&self) -> usize {
        self.at
    }

    /// The bytes consumed so far.
    pub fn consumed(&self) -> &'a [u8] {
        &self.bytes[..self.at]
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(StoreError::Truncated {
                what: format!(
                    "{}: wanted {} bytes at offset {}, region holds {}",
                    self.what,
                    n,
                    self.at,
                    self.bytes.len()
                ),
            });
        };
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    /// Reads a `u32` little-endian.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a `u64` little-endian.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// The decoded fixed-size header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Trials every segment holds.
    pub num_trials: u64,
    /// Trials per checksummed loss page.
    pub page_trials: u32,
    /// Offset of the latest committed footer (0 = nothing committed yet).
    pub footer_offset: u64,
    /// Length of the latest committed footer in bytes.
    pub footer_len: u64,
    /// Monotonic commit counter; the footer it points at echoes it.
    pub commit_seq: u64,
    /// First global trial this store's segments cover: the store holds
    /// trials `[trial_offset, trial_offset + num_trials)` of a larger
    /// logical trial axis.  Zero for a self-contained store — the byte
    /// was a zeroed reserved field before trial-axis sharding existed, so
    /// every pre-existing file decodes as offset 0.
    pub trial_offset: u64,
}

impl Header {
    /// The slot offset a commit with this sequence number writes to —
    /// commits alternate slots, so a torn write can only damage the slot
    /// holding the *older* commit's staler twin.
    pub fn slot_offset(commit_seq: u64) -> u64 {
        (commit_seq % 2) * HEADER_SLOT_LEN
    }

    /// Encodes one 64-byte header slot.
    pub fn encode(&self) -> [u8; HEADER_SLOT_LEN as usize] {
        let mut enc = Encoder::new();
        enc.put_bytes(&MAGIC);
        enc.put_u32(VERSION);
        enc.put_u32(self.page_trials);
        enc.put_u64(self.num_trials);
        enc.put_u64(self.footer_offset);
        enc.put_u64(self.footer_len);
        enc.put_u64(self.commit_seq);
        enc.put_u64(self.trial_offset);
        let crc = crc32(enc.bytes());
        enc.put_u32(crc);
        enc.put_u32(0); // padding
        let bytes = enc.into_bytes();
        debug_assert_eq!(bytes.len(), HEADER_SLOT_LEN as usize);
        bytes.try_into().unwrap()
    }

    /// Decodes the dual-slot header region: both slots are validated
    /// independently and the valid slot with the highest commit counter
    /// wins.  Only a file in which *both* slots are damaged is rejected —
    /// a crash can tear at most the one slot the interrupted commit was
    /// writing.
    pub fn decode(bytes: &[u8]) -> Result<Header> {
        if bytes.len() < HEADER_LEN as usize {
            return Err(StoreError::Truncated {
                what: format!(
                    "header: file holds {} bytes, the header region alone is {HEADER_LEN}",
                    bytes.len()
                ),
            });
        }
        let slot_len = HEADER_SLOT_LEN as usize;
        let a = Self::decode_slot(&bytes[..slot_len]);
        let b = Self::decode_slot(&bytes[slot_len..2 * slot_len]);
        match (a, b) {
            (Ok(a), Ok(b)) => Ok(if a.commit_seq >= b.commit_seq { a } else { b }),
            (Ok(a), Err(_)) => Ok(a),
            (Err(_), Ok(b)) => Ok(b),
            (Err(a), Err(_)) => Err(a),
        }
    }

    /// Decodes and validates one header slot (magic, version, checksum).
    pub fn decode_slot(bytes: &[u8]) -> Result<Header> {
        if bytes.len() < HEADER_SLOT_LEN as usize {
            return Err(StoreError::Truncated {
                what: format!(
                    "header slot: {} bytes, a slot is {HEADER_SLOT_LEN}",
                    bytes.len()
                ),
            });
        }
        let mut dec = Decoder::new(&bytes[..HEADER_SLOT_LEN as usize], "header");
        let magic: [u8; 8] = dec.take(8)?.try_into().unwrap();
        if magic != MAGIC {
            return Err(StoreError::BadMagic { found: magic });
        }
        let version = dec.get_u32()?;
        if version != VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: VERSION,
            });
        }
        let page_trials = dec.get_u32()?;
        let num_trials = dec.get_u64()?;
        let footer_offset = dec.get_u64()?;
        let footer_len = dec.get_u64()?;
        let commit_seq = dec.get_u64()?;
        let trial_offset = dec.get_u64()?;
        let computed = crc32(dec.consumed());
        let stored = dec.get_u32()?;
        if computed != stored {
            return Err(StoreError::ChecksumMismatch {
                what: "header".to_string(),
            });
        }
        if page_trials == 0 {
            return Err(StoreError::Corrupt(
                "header: page_trials must be positive".to_string(),
            ));
        }
        Ok(Header {
            num_trials,
            page_trials,
            footer_offset,
            footer_len,
            commit_seq,
            trial_offset,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    /// Two identical slots, as `StoreWriter::create` lays them out.
    fn dual(header: &Header) -> Vec<u8> {
        let slot = header.encode();
        [slot.as_slice(), slot.as_slice()].concat()
    }

    #[test]
    fn header_round_trips() {
        let header = Header {
            num_trials: 123_456,
            page_trials: 4096,
            footer_offset: 9_999,
            footer_len: 321,
            commit_seq: 7,
            trial_offset: 0,
        };
        assert_eq!(Header::decode(&dual(&header)).unwrap(), header);

        // A trial-sharded store's window offset survives the round trip
        // (it lives in what used to be the zeroed reserved field, so an
        // offset of zero is byte-identical to the legacy layout).
        let sharded = Header {
            trial_offset: 1_000_000,
            ..header
        };
        assert_eq!(Header::decode(&dual(&sharded)).unwrap(), sharded);
    }

    #[test]
    fn newest_valid_slot_wins() {
        let older = Header {
            num_trials: 10,
            page_trials: 8,
            footer_offset: 100,
            footer_len: 50,
            commit_seq: 3,
            trial_offset: 0,
        };
        let newer = Header {
            commit_seq: 4,
            footer_offset: 300,
            ..older
        };
        // Slot order must not matter, only the commit counter.
        let ab = [older.encode().as_slice(), newer.encode().as_slice()].concat();
        let ba = [newer.encode().as_slice(), older.encode().as_slice()].concat();
        assert_eq!(Header::decode(&ab).unwrap(), newer);
        assert_eq!(Header::decode(&ba).unwrap(), newer);

        // A torn write to one slot falls back to the surviving slot.
        let mut torn = ab;
        torn[70] ^= 0xFF; // inside slot B (the newer one)
        assert_eq!(Header::decode(&torn).unwrap(), older);

        assert_eq!(Header::slot_offset(3), HEADER_SLOT_LEN);
        assert_eq!(Header::slot_offset(4), 0);
    }

    #[test]
    fn header_rejects_corruption_of_both_slots() {
        let header = Header {
            num_trials: 10,
            page_trials: 8,
            footer_offset: 0,
            footer_len: 0,
            commit_seq: 0,
            trial_offset: 0,
        };
        let good = dual(&header);
        let slot = HEADER_SLOT_LEN as usize;

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        bad_magic[slot] ^= 0xFF;
        assert!(matches!(
            Header::decode(&bad_magic),
            Err(StoreError::BadMagic { .. })
        ));

        let mut bad_version = good.clone();
        for base in [0, slot] {
            bad_version[base + 8] = 99;
            // The version field is covered by the CRC, so patch the stored
            // CRC to isolate the version check.
            let crc = crc32(&bad_version[base..base + 56]);
            bad_version[base + 56..base + 60].copy_from_slice(&crc.to_le_bytes());
        }
        assert!(matches!(
            Header::decode(&bad_version),
            Err(StoreError::UnsupportedVersion { found: 99, .. })
        ));

        let mut bad_crc = good.clone();
        bad_crc[16] ^= 0x01;
        bad_crc[slot + 16] ^= 0x01;
        assert!(matches!(
            Header::decode(&bad_crc),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Damage to a single slot is survivable by design.
        let mut one_slot = good.clone();
        one_slot[16] ^= 0x01;
        assert_eq!(Header::decode(&one_slot).unwrap(), header);

        assert!(matches!(
            Header::decode(&good[..32]),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn alignment_and_page_math() {
        assert_eq!(align8(0), 0);
        assert_eq!(align8(1), 8);
        assert_eq!(align8(8), 8);
        assert_eq!(align8(12), 16);
        assert_eq!(pages_per_column(0, 4), 0);
        assert_eq!(pages_per_column(4, 4), 1);
        assert_eq!(pages_per_column(5, 4), 2);
    }

    #[test]
    fn decoder_reports_truncation() {
        let mut dec = Decoder::new(&[1, 2, 3], "footer");
        assert!(dec.get_u32().unwrap_err().to_string().contains("footer"));
    }
}
