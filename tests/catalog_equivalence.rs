//! Catalog-path equivalence properties: sharded + refreshed + cached
//! serving must be bit-identical to a sequential single-store session.
//!
//! Five layers of the serving shape are pinned here:
//!
//! 1. [`ShardedSource`] over *random segment-axis splits* of a store
//!    answers every query bit-identically to the single concatenated
//!    store — including through the batched `QuerySession`.
//! 2. [`TrialShardedSource`] over *random trial-axis splits* does the
//!    same along the paper's own partition dimension.
//! 3. A [`StoreCatalog`]-backed server keeps that equivalence across a
//!    *refresh mid-session*: segments committed to one shard while the
//!    server runs become visible and the results match a store that held
//!    them all along.
//! 4. The generation-keyed result cache hits on repeats and **must miss
//!    after a refresh** — a cached reply can never survive its snapshot.
//! 5. On a trial-axis catalog, a refresh of one shard rescans *only that
//!    shard's window*: the stats counters prove the other shards'
//!    cached partial aggregates were re-served.

use std::path::PathBuf;

use proptest::prelude::*;

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_riskserve::{Server, ServerConfig, ShardAxis, StoreCatalog};
use catrisk_riskstore::{StoreOptions, StoreWriter};
use catrisk_simkit::rng::RngFactory;

/// One generated segment: its loss outcomes plus its dimension tags.
#[derive(Clone)]
struct RawSegment {
    outcomes: Vec<TrialOutcome>,
    meta: SegmentMeta,
}

/// Generates `segments` random tagged segments over `trials` trials.
fn random_segments(trials: usize, segments: usize, seed: u64) -> Vec<RawSegment> {
    let factory = RngFactory::new(seed).derive("catalog-equivalence");
    (0..segments)
        .map(|s| {
            let mut rng = factory.stream(s as u64);
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.35 {
                        rng.uniform() * 1.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(
                LayerId((s / 3) as u32),
                Peril::ALL[s % Peril::ALL.len()],
                Region::ALL[(s / 2) % Region::ALL.len()],
                LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
            );
            RawSegment { outcomes, meta }
        })
        .collect()
}

fn ingest(store: &mut ResultStore, segment: &RawSegment) {
    store
        .ingest(
            &YearLossTable::new(segment.meta.layer, segment.outcomes.clone()),
            segment.meta,
        )
        .expect("ingest");
}

/// A mixed query batch covering scalar metrics, order statistics, curves,
/// filters, trial windows and loss ranges.
fn query_batch(trials: usize) -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .with_perils([Peril::Hurricane, Peril::Flood])
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Var { level: 0.95 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 6,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Pml {
                return_period: 100.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .trials(0..trials.div_ceil(2))
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::StdDev)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Layer)
            .loss_at_least(2.0e5)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::MaxLoss)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .aggregate(Aggregate::AttachProb)
            .build()
            .unwrap(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ShardedSource over a random split ≡ the concatenated single store,
    /// bit for bit, through both `execute` and the batched session.
    #[test]
    fn random_shard_splits_are_bit_identical(
        trials in 8..120usize,
        segments in 1..24usize,
        shards in 1..5usize,
        seed in 0..500u64,
    ) {
        let raw = random_segments(trials, segments, seed);
        // Random-ish but deterministic shard assignment.
        let assignment: Vec<usize> = (0..segments)
            .map(|s| (s.wrapping_mul(7).wrapping_add(seed as usize)) % shards)
            .collect();

        let mut shard_stores: Vec<ResultStore> =
            (0..shards).map(|_| ResultStore::new(trials)).collect();
        for (segment, &shard) in raw.iter().zip(&assignment) {
            ingest(&mut shard_stores[shard], segment);
        }
        // The reference holds every shard's segments in shard-major
        // (union) order.
        let mut reference = ResultStore::new(trials);
        for shard in 0..shards {
            for (segment, &owner) in raw.iter().zip(&assignment) {
                if owner == shard {
                    ingest(&mut reference, segment);
                }
            }
        }

        let shard_refs: Vec<&ResultStore> = shard_stores.iter().collect();
        let sharded = ShardedSource::new(shard_refs).unwrap();
        let queries = query_batch(trials);
        for query in &queries {
            prop_assert_eq!(
                execute(&sharded, query).unwrap(),
                execute(&reference, query).unwrap(),
                "per-query sharded execution diverged"
            );
        }
        prop_assert_eq!(
            QuerySession::new(&sharded).run(&queries).unwrap(),
            QuerySession::new(&reference).run(&queries).unwrap(),
            "batched sharded session diverged"
        );
    }

    /// TrialShardedSource over a random trial split ≡ the whole store,
    /// bit for bit, through `execute`, the batched session, and the
    /// batched server path (the server additionally answers from
    /// stitched per-shard partials, so this also pins the partial
    /// combine against the fused scan).
    #[test]
    fn random_trial_splits_are_bit_identical(
        trials in 8..120usize,
        segments in 1..12usize,
        shards in 1..5usize,
        seed in 0..500u64,
    ) {
        let raw = random_segments(trials, segments, seed);
        let mut reference = ResultStore::new(trials);
        for segment in &raw {
            ingest(&mut reference, segment);
        }
        // Deterministic, seed-dependent window bounds.
        let shards = shards.min(trials);
        let mut bounds: Vec<usize> = (0..shards - 1)
            .map(|k| 1 + (seed as usize * 31 + k * 17 + k * k * 7) % (trials - 1))
            .collect();
        bounds.push(0);
        bounds.push(trials);
        bounds.sort_unstable();
        bounds.dedup();

        let shard_stores: Vec<ResultStore> = bounds
            .windows(2)
            .map(|window| {
                let (start, end) = (window[0], window[1]);
                let mut shard = ResultStore::new(end - start);
                for segment in &raw {
                    shard
                        .ingest(
                            &YearLossTable::new(
                                segment.meta.layer,
                                segment.outcomes[start..end].to_vec(),
                            ),
                            segment.meta,
                        )
                        .expect("ingest window");
                }
                shard
            })
            .collect();
        let shard_refs: Vec<&ResultStore> = shard_stores.iter().collect();
        let sharded = TrialShardedSource::new(shard_refs).unwrap();
        let queries = query_batch(trials);
        for query in &queries {
            prop_assert_eq!(
                execute(&sharded, query).unwrap(),
                execute(&reference, query).unwrap(),
                "per-query trial-sharded execution diverged"
            );
        }
        prop_assert_eq!(
            QuerySession::new(&sharded).run(&queries).unwrap(),
            QuerySession::new(&reference).run(&queries).unwrap(),
            "batched trial-sharded session diverged"
        );
    }
}

fn temp_shard(name: &str, index: usize) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "catrisk-catalog-eq-{}-{}-{}.clm",
        std::process::id(),
        name,
        index
    ));
    path
}

fn write_shard(path: &PathBuf, trials: usize, segments: &[RawSegment]) {
    let mut writer = StoreWriter::create(path, trials).unwrap();
    for segment in segments {
        writer
            .append_ylt(
                &YearLossTable::new(segment.meta.layer, segment.outcomes.clone()),
                segment.meta,
            )
            .unwrap();
    }
    writer.finish().unwrap();
}

/// The full tentpole property on disk: a catalog-backed server serving
/// two shard files, refreshed mid-session while an ingest writer commits,
/// with the result cache on — always bit-identical to a sequential
/// session over a single store holding the same segments, and the cache
/// must hit on repeats but miss after every refresh.
#[test]
fn catalog_server_refresh_and_cache_match_sequential_session() {
    let trials = 64;
    let raw = random_segments(trials, 10, 2012);
    let (initial_a, rest) = raw.split_at(4);
    let (initial_b, appended) = rest.split_at(3);

    let path_a = temp_shard("live", 0);
    let path_b = temp_shard("live", 1);
    write_shard(&path_a, trials, initial_a);
    write_shard(&path_b, trials, initial_b);

    let catalog = StoreCatalog::open([&path_a, &path_b]).unwrap();
    let server = Server::new(catalog, ServerConfig::default());
    let queries = query_batch(trials);

    // Phase 1: the catalog over the initial commits ≡ a single store
    // holding shard A's then shard B's segments.
    let mut reference = ResultStore::new(trials);
    for segment in initial_a.iter().chain(initial_b) {
        ingest(&mut reference, segment);
    }
    let expected = QuerySession::new(&reference).run(&queries).unwrap();
    for (query, expected) in queries.iter().zip(&expected) {
        assert_eq!(
            &server.query(query.clone()).unwrap().result,
            expected,
            "catalog serving diverged from the sequential session"
        );
    }
    let misses_phase1 = server.stats().cache_misses;
    assert!(misses_phase1 >= queries.len() as u64);

    // Repeats hit the cache, results unchanged.
    for (query, expected) in queries.iter().zip(&expected) {
        assert_eq!(&server.query(query.clone()).unwrap().result, expected);
    }
    let stats = server.stats();
    assert!(
        stats.cache_hits >= queries.len() as u64,
        "repeats must hit: {stats:?}"
    );
    assert_eq!(
        stats.cache_misses, misses_phase1,
        "repeats must not rescan: {stats:?}"
    );

    // Phase 2: an ingest writer commits new segments to shard B while the
    // server keeps running (refresh-mid-session).
    let mut writer = StoreWriter::open_append(&path_b).unwrap();
    for segment in appended {
        writer
            .append_ylt(
                &YearLossTable::new(segment.meta.layer, segment.outcomes.clone()),
                segment.meta,
            )
            .unwrap();
    }
    writer.commit().unwrap();
    drop(writer);

    // The union order is shard-major: A's segments, then all of B's.
    let mut reference = ResultStore::new(trials);
    for segment in initial_a.iter().chain(initial_b).chain(appended) {
        ingest(&mut reference, segment);
    }
    let expected_after = QuerySession::new(&reference).run(&queries).unwrap();
    for (index, (query, expected)) in queries.iter().zip(&expected_after).enumerate() {
        assert_eq!(
            &server.query(query.clone()).unwrap().result,
            expected,
            "query {index} diverged after the mid-session refresh"
        );
    }
    let stats = server.stats();
    assert!(
        stats.refreshes >= 1,
        "the commit must be picked up: {stats:?}"
    );
    // Cache-hit-after-refresh-must-miss: every query re-scanned.
    assert!(
        stats.cache_misses >= misses_phase1 + queries.len() as u64,
        "stale cache entries served across a refresh: {stats:?}"
    );
    assert_ne!(
        expected, expected_after,
        "the appended segments must actually change some result"
    );

    // And the refreshed cache serves the *new* snapshot on repeats.
    let miss_floor = server.stats().cache_misses;
    for (query, expected) in queries.iter().zip(&expected_after) {
        assert_eq!(&server.query(query.clone()).unwrap().result, expected);
    }
    assert_eq!(
        server.stats().cache_misses,
        miss_floor,
        "post-refresh repeats must hit the refreshed cache"
    );

    server.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

/// Writes the trial window `[start, end)` of `segments` as one shard
/// file stamped with its offset.
fn write_trial_window(path: &PathBuf, segments: &[RawSegment], start: usize, end: usize) {
    let mut writer = StoreWriter::create_with(
        path,
        end - start,
        StoreOptions {
            trial_offset: start as u64,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    for segment in segments {
        writer
            .append_ylt(
                &YearLossTable::new(segment.meta.layer, segment.outcomes[start..end].to_vec()),
                segment.meta,
            )
            .unwrap();
    }
    writer.finish().unwrap();
}

/// The trial-axis tentpole on disk: a catalog-backed server stitching
/// three trial-window shard files answers bit-identically to a
/// sequential session over the unsplit store, and after a *single-shard*
/// refresh the stats counters prove only that shard's window was
/// rescanned — every other shard's cached partial aggregate was
/// re-served.
#[test]
fn trial_sharded_server_rescans_only_the_refreshed_shard() {
    let trials = 48;
    let raw = random_segments(trials, 7, 4242);
    let cuts = [0usize, 17, 30, 48];
    let paths: Vec<PathBuf> = (0..3).map(|k| temp_shard("trial", k)).collect();
    for (path, window) in paths.iter().zip(cuts.windows(2)) {
        write_trial_window(path, &raw, window[0], window[1]);
    }

    let catalog = StoreCatalog::open(&paths).unwrap();
    assert_eq!(catalog.axis(), ShardAxis::Trial);
    let server = Server::new(catalog, ServerConfig::default());
    let queries = query_batch(trials);

    let mut reference = ResultStore::new(trials);
    for segment in &raw {
        ingest(&mut reference, segment);
    }
    let expected = QuerySession::new(&reference).run(&queries).unwrap();
    for (query, expected) in queries.iter().zip(&expected) {
        assert_eq!(
            &server.query(query.clone()).unwrap().result,
            expected,
            "trial-sharded serving diverged from the sequential session"
        );
    }
    let stats = server.stats();
    // Every unique query scanned every window exactly once, cold.
    assert_eq!(stats.partial_misses, 3 * queries.len() as u64, "{stats:?}");
    assert_eq!(stats.partial_hits, 0, "{stats:?}");

    // An ingest writer commits a new layer to the *middle* window only:
    // its generation moves, the result cache correctly misses, but the
    // two untouched windows must re-serve their cached partials — and
    // the answers are unchanged, because a layer missing from two
    // windows is not yet servable (common-prefix clamp).
    let extra = random_segments(trials, 8, 77).pop().unwrap();
    let mut writer = StoreWriter::open_append(&paths[1]).unwrap();
    writer
        .append_ylt(
            &YearLossTable::new(LayerId(7_000), extra.outcomes[cuts[1]..cuts[2]].to_vec()),
            SegmentMeta::new(
                LayerId(7_000),
                extra.meta.peril,
                extra.meta.region,
                extra.meta.lob,
            ),
        )
        .unwrap();
    writer.commit().unwrap();
    drop(writer);

    for (query, expected) in queries.iter().zip(&expected) {
        assert_eq!(&server.query(query.clone()).unwrap().result, expected);
    }
    let stats = server.stats();
    assert!(stats.refreshes >= 1, "{stats:?}");
    assert_eq!(
        stats.partial_hits,
        2 * queries.len() as u64,
        "the two untouched windows must hit their cached partials: {stats:?}"
    );
    assert_eq!(
        stats.partial_misses,
        4 * queries.len() as u64,
        "only the refreshed window rescans: {stats:?}"
    );

    // The other windows catch up with their slices of the same layer:
    // the segment prefix grows, the layer becomes servable, and the
    // served answers match a store that held it all along.
    for (shard, window) in [(0usize, (cuts[0], cuts[1])), (2, (cuts[2], cuts[3]))] {
        let mut writer = StoreWriter::open_append(&paths[shard]).unwrap();
        writer
            .append_ylt(
                &YearLossTable::new(LayerId(7_000), extra.outcomes[window.0..window.1].to_vec()),
                SegmentMeta::new(
                    LayerId(7_000),
                    extra.meta.peril,
                    extra.meta.region,
                    extra.meta.lob,
                ),
            )
            .unwrap();
        writer.commit().unwrap();
    }
    let mut grown = reference.clone();
    grown
        .ingest(
            &YearLossTable::new(LayerId(7_000), extra.outcomes.clone()),
            SegmentMeta::new(
                LayerId(7_000),
                extra.meta.peril,
                extra.meta.region,
                extra.meta.lob,
            ),
        )
        .unwrap();
    let expected_grown = QuerySession::new(&grown).run(&queries).unwrap();
    for (query, expected) in queries.iter().zip(&expected_grown) {
        assert_eq!(
            &server.query(query.clone()).unwrap().result,
            expected,
            "the stitched new layer diverged from the reference"
        );
    }
    assert_ne!(
        expected, expected_grown,
        "the new layer must change results"
    );

    server.shutdown();
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
}

/// The segment-axis refinement of the tentpole: a catalog-backed server
/// serving two **segment**-axis shard files answers shard-aligned
/// queries from per-segment-shard partial aggregates, and after a
/// *single-shard* commit the stats counters prove exactly one shard was
/// rescanned — including when the *first* shard grows and every later
/// shard's global segment indices shift (the cached partials align by
/// decoded key, not index).
#[test]
fn segment_sharded_server_rescans_only_the_refreshed_shard() {
    let trials = 40;
    // Shard A owns layers 0-1, shard B owns layers 2-3: every
    // layer-grouped plan is shard-aligned.
    let mut raw = random_segments(trials, 8, 1212);
    for (index, segment) in raw.iter_mut().enumerate() {
        segment.meta = SegmentMeta::new(
            LayerId((index / 2) as u32),
            segment.meta.peril,
            segment.meta.region,
            segment.meta.lob,
        );
    }
    let (side_a, side_b) = raw.split_at(4);
    let path_a = temp_shard("segment", 0);
    let path_b = temp_shard("segment", 1);
    write_shard(&path_a, trials, side_a);
    write_shard(&path_b, trials, side_b);

    let catalog = StoreCatalog::open([&path_a, &path_b]).unwrap();
    assert_eq!(catalog.axis(), ShardAxis::Segment);
    let server = Server::new(catalog, ServerConfig::default());
    // Every query groups by Layer, so each group's segments live in one
    // shard and the whole batch takes the segment-partial path — the
    // counter arithmetic below depends on that.
    let queries = vec![
        QueryBuilder::new()
            .group_by(Dimension::Layer)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Layer)
            .loss_at_least(2.0e5)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::MaxLoss)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Layer)
            .trials(0..trials / 2)
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 5,
            })
            .build()
            .unwrap(),
    ];
    let shards = 2u64;
    let queries_u64 = queries.len() as u64;

    let mut reference = ResultStore::new(trials);
    for segment in side_a.iter().chain(side_b) {
        ingest(&mut reference, segment);
    }
    let expected = QuerySession::new(&reference).run(&queries).unwrap();
    for (query, expected) in queries.iter().zip(&expected) {
        assert_eq!(
            &server.query(query.clone()).unwrap().result,
            expected,
            "segment-partial serving diverged from the sequential session"
        );
    }
    let stats = server.stats();
    // Cold: every query probed (and missed) both shards.
    assert_eq!(stats.partial_misses, shards * queries_u64, "{stats:?}");
    assert_eq!(stats.partial_hits, 0, "{stats:?}");
    assert!(
        stats.fused_partial_scans > 0 && stats.fused_partial_scans <= stats.partial_misses,
        "the rescans must have run through fused scans: {stats:?}"
    );

    // Commit a new layer to shard B only: B's generation moves, the
    // result cache misses, and exactly B rescans — shard A's partials
    // are re-served from the cache.
    let extra = random_segments(trials, 9, 99).pop().unwrap();
    let mut writer = StoreWriter::open_append(&path_b).unwrap();
    writer
        .append_ylt(
            &YearLossTable::new(LayerId(9), extra.outcomes.clone()),
            SegmentMeta::new(LayerId(9), extra.meta.peril, extra.meta.region, extra.meta.lob),
        )
        .unwrap();
    writer.commit().unwrap();
    drop(writer);

    let mut reference = ResultStore::new(trials);
    for segment in side_a.iter().chain(side_b) {
        ingest(&mut reference, segment);
    }
    reference
        .ingest(
            &YearLossTable::new(LayerId(9), extra.outcomes.clone()),
            SegmentMeta::new(LayerId(9), extra.meta.peril, extra.meta.region, extra.meta.lob),
        )
        .unwrap();
    let expected_b = QuerySession::new(&reference).run(&queries).unwrap();
    for (query, expected) in queries.iter().zip(&expected_b) {
        assert_eq!(
            &server.query(query.clone()).unwrap().result,
            expected,
            "segment-partial serving diverged after the shard-B commit"
        );
    }
    let stats = server.stats();
    assert!(stats.refreshes >= 1, "{stats:?}");
    assert_eq!(
        stats.partial_hits, queries_u64,
        "shard A's partials must be re-served from the cache: {stats:?}"
    );
    assert_eq!(
        stats.partial_misses,
        (shards + 1) * queries_u64,
        "only the refreshed shard rescans: {stats:?}"
    );

    // Commit a new layer to shard A: every shard-B segment's *global*
    // index shifts by one, but B's cached partials still hit and still
    // combine correctly, because the combine aligns by decoded key.
    let extra_a = random_segments(trials, 10, 123).pop().unwrap();
    let mut writer = StoreWriter::open_append(&path_a).unwrap();
    writer
        .append_ylt(
            &YearLossTable::new(LayerId(8), extra_a.outcomes.clone()),
            SegmentMeta::new(
                LayerId(8),
                extra_a.meta.peril,
                extra_a.meta.region,
                extra_a.meta.lob,
            ),
        )
        .unwrap();
    writer.commit().unwrap();
    drop(writer);

    // Union order is shard-major: A's segments (new one last), then B's.
    let mut reference = ResultStore::new(trials);
    for segment in side_a {
        ingest(&mut reference, segment);
    }
    reference
        .ingest(
            &YearLossTable::new(LayerId(8), extra_a.outcomes.clone()),
            SegmentMeta::new(
                LayerId(8),
                extra_a.meta.peril,
                extra_a.meta.region,
                extra_a.meta.lob,
            ),
        )
        .unwrap();
    for segment in side_b {
        ingest(&mut reference, segment);
    }
    reference
        .ingest(
            &YearLossTable::new(LayerId(9), extra.outcomes.clone()),
            SegmentMeta::new(LayerId(9), extra.meta.peril, extra.meta.region, extra.meta.lob),
        )
        .unwrap();
    let expected_a = QuerySession::new(&reference).run(&queries).unwrap();
    for (query, expected) in queries.iter().zip(&expected_a) {
        assert_eq!(
            &server.query(query.clone()).unwrap().result,
            expected,
            "segment-partial serving diverged after the index-shifting shard-A commit"
        );
    }
    let stats = server.stats();
    assert_eq!(
        stats.partial_hits,
        2 * queries_u64,
        "shard B's partials must survive the index shift: {stats:?}"
    );
    assert_eq!(
        stats.partial_misses,
        (shards + 2) * queries_u64,
        "only shard A rescans: {stats:?}"
    );
    assert_ne!(expected, expected_a, "the new layers must change results");

    server.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}

/// An uncommitted shard joining the catalog serves nothing until its
/// first commit, then exactly its committed prefix — the canonical
/// serve-while-ingesting startup shape.
#[test]
fn empty_shard_fills_in_live() {
    let trials = 32;
    let raw = random_segments(trials, 6, 77);
    let (seeded, later) = raw.split_at(3);

    let path_a = temp_shard("fill", 0);
    let path_b = temp_shard("fill", 1);
    write_shard(&path_a, trials, seeded);
    // Shard B exists but holds nothing committed yet.
    drop(StoreWriter::create(&path_b, trials).unwrap());

    let catalog = StoreCatalog::open([&path_a, &path_b]).unwrap();
    let server = Server::new(catalog, ServerConfig::default());
    let query = QueryBuilder::new()
        .group_by(Dimension::Peril)
        .aggregate(Aggregate::Mean)
        .build()
        .unwrap();

    let mut reference = ResultStore::new(trials);
    for segment in seeded {
        ingest(&mut reference, segment);
    }
    assert_eq!(
        server.query(query.clone()).unwrap().result,
        execute(&reference, &query).unwrap()
    );

    let mut writer = StoreWriter::open_append(&path_b).unwrap();
    for segment in later {
        writer
            .append_ylt(
                &YearLossTable::new(segment.meta.layer, segment.outcomes.clone()),
                segment.meta,
            )
            .unwrap();
    }
    writer.commit().unwrap();
    drop(writer);

    for segment in later {
        ingest(&mut reference, segment);
    }
    assert_eq!(
        server.query(query.clone()).unwrap().result,
        execute(&reference, &query).unwrap(),
        "the first commit of an initially-empty shard must become servable"
    );

    server.shutdown();
    let _ = std::fs::remove_file(&path_a);
    let _ = std::fs::remove_file(&path_b);
}
