//! Persistent-store benchmarks: cold-open query latency versus the
//! in-memory baseline.
//!
//! The serving-fleet scenario behind `catrisk-riskstore`: results are
//! materialised once and queried many times, possibly by processes that
//! did not produce them.  Three paths are measured over the same
//! production-shaped store:
//!
//! * `in_memory` — the PR-1 baseline, scanning the live `ResultStore`;
//! * `reader_warm` — the same query over an already-open `StoreReader`
//!   (steady-state serving: the open cost is amortised);
//! * `cold_open` — `StoreReader::open` (checksum verification + column
//!   load) plus the query, every iteration (worst-case first request).
//!
//! The `cold_open_summary` target prints the acceptance numbers and
//! asserts bit-identical results across all three paths.
//!
//! The `backing_comparison`/`backing_summary` targets open the same
//! store under both column backings — `Mapped` (mmap'd shared
//! read-only, the serving default) and `Loaded` (private heap copy,
//! the pre-mmap behaviour, selectable fleet-wide with
//! `CATRISK_STORE_BACKING=loaded`) — and report cold-open latency and
//! pinned bytes for each.  The mapped backing skips the column copy at
//! open (verification still touches every page, so the numbers are
//! honest about fault-in cost), and its pinned bytes are file-backed
//! address space shared across a whole replica fleet rather than
//! per-process heap.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_riskstore::{RegionBacking, StoreReader, StoreWriter};
use catrisk_simkit::rng::RngFactory;

const TRIALS: usize = 20_000;
const BOOKS: usize = 12;

/// The same production-shaped store the query-engine bench uses: every
/// active (peril, region) cell of several books becomes a segment.
fn build_store(trials: usize, books: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("store-bench");
    let mut store = ResultStore::new(trials);
    let mut segment = 0u64;
    for book in 0..books {
        let region = Region::ALL[book % Region::ALL.len()];
        let lob = LineOfBusiness::ALL[book % LineOfBusiness::ALL.len()];
        for peril in region.active_perils() {
            let mut rng = factory.stream(segment);
            segment += 1;
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.25 {
                        rng.uniform() * 5.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(LayerId(book as u32), *peril, region, lob);
            store
                .ingest(&YearLossTable::new(LayerId(book as u32), outcomes), meta)
                .expect("ingest");
        }
    }
    store
}

/// Writes every segment of `store` into a fresh store file.
fn write_store(store: &ResultStore, path: &std::path::Path) {
    let mut writer = StoreWriter::create(path, store.num_trials()).expect("create store file");
    for segment in 0..store.num_segments() {
        writer
            .append_segment(
                *store.meta(segment),
                store.year_losses(segment),
                store.max_occ_losses(segment),
            )
            .expect("append segment");
    }
    writer.finish().expect("commit store file");
}

fn bench_path(name: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("catrisk-bench-{}-{name}.clm", std::process::id()));
    path
}

fn serving_query() -> Query {
    QueryBuilder::new()
        .with_perils([Peril::Hurricane, Peril::Flood])
        .group_by(Dimension::Region)
        .aggregate(Aggregate::Mean)
        .aggregate(Aggregate::Tvar { level: 0.99 })
        .build()
        .unwrap()
}

fn store_query_paths(c: &mut Criterion) {
    let store = build_store(TRIALS, BOOKS, 2012);
    let path = bench_path("paths");
    write_store(&store, &path);
    let query = serving_query();

    let mut group = c.benchmark_group("store_query_latency");
    group.sample_size(15);
    group.bench_function("in_memory", |b| b.iter(|| execute(&store, &query).unwrap()));
    let reader = StoreReader::open(&path).expect("open store file");
    group.bench_function("reader_warm", |b| {
        b.iter(|| execute(&reader, &query).unwrap())
    });
    group.bench_function("cold_open", |b| {
        b.iter(|| {
            let reader = StoreReader::open(&path).expect("open store file");
            execute(&reader, &query).unwrap()
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// Cold open + query under each column backing: `Mapped` pays page
/// faults during verification but never copies the columns; `Loaded`
/// reads them into a private heap region.
fn backing_comparison(c: &mut Criterion) {
    let store = build_store(TRIALS, BOOKS, 2012);
    let path = bench_path("backing");
    write_store(&store, &path);
    let query = serving_query();

    let mut group = c.benchmark_group("store_backing_cold_open");
    group.sample_size(15);
    for (name, backing) in [
        ("mapped", RegionBacking::Mapped),
        ("loaded", RegionBacking::Loaded),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let reader =
                    StoreReader::open_with_backing(&path, backing).expect("open store file");
                execute(&reader, &query).unwrap()
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_file(&path);
}

/// Prints the mapped-versus-loaded acceptance numbers — cold open+query
/// latency, open-only time, and pinned bytes per backing — after
/// asserting the two backings answer bit-identically.  Mapped pinned
/// bytes are shared file-backed address space (one set of page-cache
/// pages across a replica fleet); loaded pinned bytes are per-process
/// heap.
fn backing_summary(_c: &mut Criterion) {
    let store = build_store(TRIALS, BOOKS, 2012);
    let path = bench_path("backing-summary");
    write_store(&store, &path);
    let query = serving_query();

    let mapped = StoreReader::open_with_backing(&path, RegionBacking::Mapped).expect("open mapped");
    let loaded = StoreReader::open_with_backing(&path, RegionBacking::Loaded).expect("open loaded");
    assert_eq!(
        execute(&mapped, &query).unwrap(),
        execute(&loaded, &query).unwrap(),
        "the two backings must answer bit-identically"
    );

    let samples = 10;
    let measure = |backing: RegionBacking| {
        let best = (0..samples)
            .map(|_| {
                let start = Instant::now();
                let reader =
                    StoreReader::open_with_backing(&path, backing).expect("open store file");
                let _ = execute(&reader, &query).unwrap();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min);
        let reader = StoreReader::open_with_backing(&path, backing).expect("open store file");
        (best, reader.open_micros(), reader.memory_bytes())
    };
    let (mapped_secs, mapped_open_us, mapped_bytes) = measure(RegionBacking::Mapped);
    let (loaded_secs, loaded_open_us, loaded_bytes) = measure(RegionBacking::Loaded);
    println!(
        "backing_summary: mapped cold open+query {:.2} ms (open {:.2} ms, \
         {:.1} MB shared map), loaded {:.2} ms (open {:.2} ms, {:.1} MB \
         private heap) — mapped/loaded {:.2}x",
        mapped_secs * 1e3,
        mapped_open_us as f64 / 1e3,
        mapped_bytes as f64 / 1.0e6,
        loaded_secs * 1e3,
        loaded_open_us as f64 / 1e3,
        loaded_bytes as f64 / 1.0e6,
        mapped_secs / loaded_secs,
    );
    let _ = std::fs::remove_file(&path);
}

/// Prints the acceptance numbers: cold-open and warm query latency against
/// the in-memory baseline, after asserting all three paths agree bitwise.
fn cold_open_summary(_c: &mut Criterion) {
    let store = build_store(TRIALS, BOOKS, 2012);
    let path = bench_path("summary");
    write_store(&store, &path);
    let query = serving_query();

    let in_memory = execute(&store, &query).unwrap();
    let reader = StoreReader::open(&path).expect("open store file");
    let from_disk = execute(&reader, &query).unwrap();
    assert_eq!(
        in_memory, from_disk,
        "persisted queries must be bit-identical to in-memory queries"
    );

    let samples = 10;
    let best = |mut run: Box<dyn FnMut()>| {
        (0..samples)
            .map(|_| {
                let start = Instant::now();
                run();
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let memory_secs = best(Box::new(|| {
        let _ = execute(&store, &query).unwrap();
    }));
    let warm_secs = best(Box::new(|| {
        let _ = execute(&reader, &query).unwrap();
    }));
    let cold_secs = best(Box::new(|| {
        let reader = StoreReader::open(&path).expect("open store file");
        let _ = execute(&reader, &query).unwrap();
    }));
    let bytes = std::fs::metadata(&path).expect("store file").len();
    println!(
        "cold_open_summary: in-memory {:.2} ms, warm reader {:.2} ms ({:.2}x), \
         cold open+query {:.2} ms ({:.2}x) over a {:.1} MB store \
         ({} segments, {} trials)",
        memory_secs * 1e3,
        warm_secs * 1e3,
        warm_secs / memory_secs,
        cold_secs * 1e3,
        cold_secs / memory_secs,
        bytes as f64 / 1.0e6,
        reader.num_segments(),
        reader.num_trials()
    );
    let _ = std::fs::remove_file(&path);
}

criterion_group!(
    store_cold_open,
    store_query_paths,
    backing_comparison,
    backing_summary,
    cold_open_summary
);
criterion_main!(store_cold_open);
