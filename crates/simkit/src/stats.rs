//! Running statistics, quantiles, empirical CDFs and histograms.
//!
//! These primitives back the Year Loss Table analytics in `catrisk-metrics`
//! (PML, VaR, TVaR) and the distribution checks in the test suites.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance/min/max accumulator
/// (Welford's online algorithm).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for RunningStats {
    fn default() -> Self {
        Self::new()
    }
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Adds every observation in a slice.
    pub fn extend(&mut self, xs: &[f64]) {
        for &x in xs {
            self.push(x);
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Coefficient of variation (std/mean), 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev() / self.mean.abs()
        }
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Mean of a loss vector (0 when empty).
///
/// The shared scalar kernel behind `YearLossTable::mean_loss` and the query
/// engine's `mean` aggregate — both call this, so their results agree by
/// construction.
pub fn mean_or_zero(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation (`n` divisor; 0 when fewer than two
/// observations), shared by `YearLossTable::loss_std_dev` and the query
/// engine's `stddev` aggregate.
pub fn population_std_dev(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let mean = mean_or_zero(values);
    let variance = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
    variance.sqrt()
}

/// Largest value, folding from 0 (so it is 0 when empty — losses are
/// non-negative), shared by `YearLossTable::max_loss` and the query
/// engine's `maxloss` aggregate.
pub fn max_or_zero(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// Fraction of strictly positive values (0 when empty), shared by
/// `YearLossTable::nonzero_fraction` and the query engine's `attach`
/// aggregate.
pub fn positive_fraction(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().filter(|&&x| x > 0.0).count() as f64 / values.len() as f64
    }
}

/// Linear-interpolation quantile (R type-7 / Excel `PERCENTILE.INC`) of a
/// **sorted ascending** slice.
///
/// `q` is clamped into `[0, 1]`.  Panics on an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Convenience wrapper that copies, sorts and calls [`quantile_sorted`].
pub fn quantile(values: &[f64], q: f64) -> f64 {
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Mean of the observations at or above quantile `q` of a sorted slice —
/// the empirical tail conditional expectation used by TVaR.
pub fn tail_mean_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "tail_mean of empty slice");
    let q = q.clamp(0.0, 1.0);
    let start = ((sorted.len() as f64) * q).floor() as usize;
    let start = start.min(sorted.len() - 1);
    let tail = &sorted[start..];
    tail.iter().sum::<f64>() / tail.len() as f64
}

/// Empirical cumulative distribution function over a fixed sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a (possibly unsorted) sample.
    pub fn new(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| a.partial_cmp(b).expect("NaN in ECDF input"));
        Self { sorted: values }
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the ECDF holds no observations.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X <= x).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// P(X > x) — the exceedance probability.
    pub fn exceedance(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile (inverse CDF) via linear interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// Underlying sorted sample.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Fixed-width histogram over `[lo, hi)` with an overflow and underflow bin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(
            bins > 0 && hi > lo,
            "histogram requires hi > lo and bins > 0"
        );
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Bin counts (excluding under/overflow).
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations pushed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Midpoint of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + width * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        s.extend(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 10.0);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert!((s.variance() - 1.25).abs() < 1e-12);
        assert!((s.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert!(s.std_error() > 0.0);
        assert!(s.cv() > 0.0);
    }

    #[test]
    fn running_stats_empty_and_single() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        let mut s = RunningStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        whole.extend(&data);
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        a.extend(&data[..400]);
        b.extend(&data[400..]);
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());

        let mut empty = RunningStats::new();
        empty.merge(&whole);
        assert_eq!(empty.count(), whole.count());
        let mut w2 = whole;
        w2.merge(&RunningStats::new());
        assert_eq!(w2.count(), whole.count());
    }

    #[test]
    fn quantile_interpolation() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile_sorted(&v, 0.0), 1.0);
        assert_eq!(quantile_sorted(&v, 1.0), 5.0);
        assert_eq!(quantile_sorted(&v, 0.5), 3.0);
        assert!((quantile_sorted(&v, 0.25) - 2.0).abs() < 1e-12);
        assert!((quantile_sorted(&v, 0.1) - 1.4).abs() < 1e-12);
        // Clamping out-of-range q.
        assert_eq!(quantile_sorted(&v, -1.0), 1.0);
        assert_eq!(quantile_sorted(&v, 2.0), 5.0);
        // Unsorted convenience wrapper.
        assert_eq!(quantile(&[5.0, 1.0, 3.0, 2.0, 4.0], 0.5), 3.0);
        // Single element.
        assert_eq!(quantile_sorted(&[9.0], 0.3), 9.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        quantile_sorted(&[], 0.5);
    }

    #[test]
    fn tail_mean_matches_manual() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        // Top 20% = {9, 10}
        assert!((tail_mean_sorted(&v, 0.8) - 9.5).abs() < 1e-12);
        // q = 0 is the plain mean.
        assert!((tail_mean_sorted(&v, 0.0) - 5.5).abs() < 1e-12);
        // q = 1 degenerates to the maximum.
        assert_eq!(tail_mean_sorted(&v, 1.0), 10.0);
    }

    #[test]
    fn ecdf_cdf_and_exceedance() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!(!e.is_empty());
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(10.0), 1.0);
        assert_eq!(e.exceedance(2.5), 0.5);
        assert_eq!(e.quantile(0.5), 2.5);
        assert_eq!(e.sorted_values(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [-1.0, 0.0, 1.9, 2.0, 5.5, 9.99, 10.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "hi > lo")]
    fn histogram_invalid_range_panics() {
        Histogram::new(5.0, 5.0, 3);
    }
}
