//! `catrisk` — command-line front end for the aggregate risk analysis
//! library.
//!
//! Subcommands:
//!
//! * `demo` — run the full synthetic pipeline (catalog → exposures → ELTs →
//!   YET → aggregate analysis → risk report);
//! * `engines` — run every engine variant on the same workload and print a
//!   timing comparison (a miniature of the paper's Fig. 6a);
//! * `quote` — interactive-speed quoting of a Cat XL layer with varying
//!   terms (the paper's real-time pricing scenario);
//! * `query` — ad-hoc aggregate risk queries (filters, group-bys, EP
//!   curves, VaR/TVaR, PML) over a columnar YLT store;
//! * `store` — persist engine results in an on-disk columnar store
//!   (`store write`, incremental) and query it back (`store query`);
//! * `serve` — a micro-batched TCP query server over a persistent store
//!   (concurrent requests coalesce into fused scans);
//! * `loadgen` — drive open-loop load at a running `serve` instance and
//!   print throughput and latency percentiles;
//! * `stats` — scrape a running `serve` instance's telemetry (counters,
//!   per-stage latency histograms, the flight-recorder event ring);
//! * `info` — print the simulated device and the default configuration.
//!
//! Run `catrisk <command> --help` for the options of each command.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            ExitCode::FAILURE
        }
    }
}
