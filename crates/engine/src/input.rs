//! Analysis input assembly and preprocessing.
//!
//! The paper's algorithm has "a preprocessing stage in which data is loaded
//! into local memory" (§II.B): the Year Event Table, the Event Loss Tables
//! of every covered layer (materialised as direct access tables), and the
//! financial and layer terms.  [`AnalysisInput`] is that in-memory state and
//! is shared read-only by every engine implementation.

use std::sync::Arc;

use catrisk_eventgen::yet::YearEventTable;
use catrisk_eventgen::EventId;
use catrisk_finterms::layer::{Layer, LayerId};
use catrisk_finterms::terms::{FinancialTerms, LayerTerms};
use catrisk_lookup::{
    CuckooTable, DirectAccessTable, EventLookup, HashedTable, LookupKind, SortedTable,
};

use crate::{EngineError, Result};

/// A concrete lookup structure for one ELT.
///
/// An enum (rather than `Box<dyn EventLookup>`) keeps the per-event lookup
/// call monomorphic and inlinable in the hot loop while still letting the
/// ablation benchmark switch representations at run time.
#[derive(Debug, Clone)]
pub enum PreparedLookup {
    /// Dense direct access table (the paper's choice).
    Direct(DirectAccessTable),
    /// Sorted pairs with binary search.
    Sorted(SortedTable),
    /// Open-addressing hash table.
    Hashed(HashedTable),
    /// Cuckoo hash table.
    Cuckoo(CuckooTable),
}

impl PreparedLookup {
    /// Builds the lookup structure of the requested kind.
    pub fn build(kind: LookupKind, pairs: &[(EventId, f64)], catalog_size: u32) -> Self {
        match kind {
            LookupKind::Direct => {
                PreparedLookup::Direct(DirectAccessTable::from_pairs(pairs, catalog_size))
            }
            LookupKind::Sorted => PreparedLookup::Sorted(SortedTable::from_pairs(pairs)),
            LookupKind::Hashed => PreparedLookup::Hashed(HashedTable::from_pairs(pairs)),
            LookupKind::Cuckoo => PreparedLookup::Cuckoo(CuckooTable::from_pairs(pairs)),
        }
    }

    /// Loss of `event` (0.0 when absent).
    #[inline]
    pub fn get(&self, event: EventId) -> f64 {
        match self {
            PreparedLookup::Direct(t) => t.get(event),
            PreparedLookup::Sorted(t) => t.get(event),
            PreparedLookup::Hashed(t) => t.get(event),
            PreparedLookup::Cuckoo(t) => t.get(event),
        }
    }

    /// Which representation this is.
    pub fn kind(&self) -> LookupKind {
        match self {
            PreparedLookup::Direct(_) => LookupKind::Direct,
            PreparedLookup::Sorted(_) => LookupKind::Sorted,
            PreparedLookup::Hashed(_) => LookupKind::Hashed,
            PreparedLookup::Cuckoo(_) => LookupKind::Cuckoo,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        match self {
            PreparedLookup::Direct(t) => t.len(),
            PreparedLookup::Sorted(t) => t.len(),
            PreparedLookup::Hashed(t) => t.len(),
            PreparedLookup::Cuckoo(t) => t.len(),
        }
    }

    /// True when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap memory used, in bytes.
    pub fn memory_bytes(&self) -> usize {
        match self {
            PreparedLookup::Direct(t) => t.memory_bytes(),
            PreparedLookup::Sorted(t) => t.memory_bytes(),
            PreparedLookup::Hashed(t) => t.memory_bytes(),
            PreparedLookup::Cuckoo(t) => t.memory_bytes(),
        }
    }
}

/// One preprocessed ELT: its lookup structure plus its financial terms `I`.
#[derive(Debug, Clone)]
pub struct PreparedElt {
    /// Lookup structure over the ELT's `(event, loss)` pairs.
    pub lookup: PreparedLookup,
    /// Financial terms applied to each event loss taken from this ELT.
    pub terms: FinancialTerms,
    /// Number of non-zero records in the source ELT.
    pub record_count: usize,
}

/// The fully preprocessed input of an aggregate analysis.
#[derive(Debug, Clone)]
pub struct AnalysisInput {
    yet: Arc<YearEventTable>,
    elts: Vec<PreparedElt>,
    layers: Vec<Layer>,
}

impl AnalysisInput {
    /// The Year Event Table.
    pub fn yet(&self) -> &YearEventTable {
        &self.yet
    }

    /// Shared handle to the Year Event Table.
    pub fn yet_arc(&self) -> Arc<YearEventTable> {
        Arc::clone(&self.yet)
    }

    /// All preprocessed ELTs.
    pub fn elts(&self) -> &[PreparedElt] {
        &self.elts
    }

    /// All layers.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// The preprocessed ELTs covered by one layer, in coverage order.
    pub fn layer_elts(&self, layer: &Layer) -> Vec<&PreparedElt> {
        layer.elt_indices.iter().map(|&i| &self.elts[i]).collect()
    }

    /// Number of trials in the YET.
    pub fn num_trials(&self) -> usize {
        self.yet.num_trials()
    }

    /// Total number of ELT lookups the analysis will perform
    /// (`events × ELTs`, summed over layers and trials) — the paper's
    /// "15 billion events" scale indicator.
    pub fn total_lookups(&self) -> u64 {
        let events = self.yet.total_events() as u64;
        let elts_per_layer: u64 = self.layers.iter().map(|l| l.num_elts() as u64).sum();
        events * elts_per_layer
    }

    /// Total heap memory of all prepared lookup structures.
    pub fn lookup_memory_bytes(&self) -> usize {
        self.elts.iter().map(|e| e.lookup.memory_bytes()).sum()
    }

    /// Clones this input with the YET replaced (used by the streaming engine
    /// to run block slices of the trial set).  The prepared ELT lookup
    /// structures and layers are reused unchanged.
    pub fn with_yet_slice(&self, yet: YearEventTable) -> AnalysisInput {
        AnalysisInput {
            yet: Arc::new(yet),
            elts: self.elts.clone(),
            layers: self.layers.clone(),
        }
    }

    /// Clones this input with a different set of layers over the same YET
    /// and prepared ELTs (used by the real-time quoting workflow, which
    /// re-prices alternative layer terms against a fixed trial set).
    ///
    /// Every layer must reference only existing ELT indices.
    pub fn with_layers(&self, layers: Vec<Layer>) -> Result<AnalysisInput> {
        if layers.is_empty() {
            return Err(EngineError::InvalidInput(
                "at least one layer is required".into(),
            ));
        }
        for layer in &layers {
            layer
                .validate(self.elts.len())
                .map_err(|e| EngineError::InvalidInput(format!("layer {}: {e}", layer.id)))?;
        }
        Ok(AnalysisInput {
            yet: Arc::clone(&self.yet),
            elts: self.elts.clone(),
            layers,
        })
    }

    /// Average number of ELTs per layer.
    pub fn avg_elts_per_layer(&self) -> f64 {
        if self.layers.is_empty() {
            0.0
        } else {
            self.layers.iter().map(|l| l.num_elts()).sum::<usize>() as f64
                / self.layers.len() as f64
        }
    }
}

/// Builder assembling an [`AnalysisInput`] from raw pieces.
#[derive(Debug)]
pub struct AnalysisInputBuilder {
    yet: Option<Arc<YearEventTable>>,
    lookup_kind: LookupKind,
    catalog_size: Option<u32>,
    elt_pairs: Vec<(Vec<(EventId, f64)>, FinancialTerms)>,
    layers: Vec<Layer>,
}

impl Default for AnalysisInputBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl AnalysisInputBuilder {
    /// Starts an empty builder using direct access tables.
    pub fn new() -> Self {
        Self {
            yet: None,
            lookup_kind: LookupKind::Direct,
            catalog_size: None,
            elt_pairs: Vec::new(),
            layers: Vec::new(),
        }
    }

    /// Selects the lookup representation used for every ELT.
    pub fn with_lookup(&mut self, kind: LookupKind) -> &mut Self {
        self.lookup_kind = kind;
        self
    }

    /// Sets the Year Event Table.
    pub fn set_yet(&mut self, yet: YearEventTable) -> &mut Self {
        self.catalog_size.get_or_insert(yet.catalog_size());
        self.yet = Some(Arc::new(yet));
        self
    }

    /// Sets an already-shared Year Event Table without copying it.
    pub fn set_yet_shared(&mut self, yet: Arc<YearEventTable>) -> &mut Self {
        self.catalog_size.get_or_insert(yet.catalog_size());
        self.yet = Some(yet);
        self
    }

    /// Convenience for tests and examples: builds a YET from explicit
    /// per-trial `(event, time)` pairs over a catalog of `catalog_size`.
    pub fn set_yet_from_trials(
        &mut self,
        catalog_size: u32,
        trials: Vec<Vec<(EventId, f32)>>,
    ) -> &mut Self {
        let mut builder = catrisk_eventgen::yet::YetBuilder::new(catalog_size, trials.len(), 8);
        for trial in trials {
            builder.push_trial(
                trial
                    .into_iter()
                    .map(|(event, time)| catrisk_eventgen::yet::EventOccurrence { event, time })
                    .collect(),
            );
        }
        self.set_yet(builder.build())
    }

    /// Overrides the catalog size used to size direct access tables
    /// (defaults to the YET's catalog size).
    pub fn with_catalog_size(&mut self, catalog_size: u32) -> &mut Self {
        self.catalog_size = Some(catalog_size);
        self
    }

    /// Adds one ELT from `(event, loss)` pairs and returns its index.
    pub fn add_elt(&mut self, pairs: &[(EventId, f64)], terms: FinancialTerms) -> usize {
        self.elt_pairs.push((pairs.to_vec(), terms));
        self.elt_pairs.len() - 1
    }

    /// Adds a layer covering the given ELT indices under the given terms and
    /// returns its index.
    pub fn add_layer_over(&mut self, elt_indices: &[usize], terms: LayerTerms) -> usize {
        let id = LayerId(self.layers.len() as u32);
        self.layers.push(Layer {
            id,
            elt_indices: elt_indices.to_vec(),
            terms,
            participation: 1.0,
            description: String::new(),
        });
        self.layers.len() - 1
    }

    /// Adds a fully specified layer and returns its index.
    pub fn add_layer(&mut self, layer: Layer) -> usize {
        self.layers.push(layer);
        self.layers.len() - 1
    }

    /// Finalises the input: builds the lookup structures and validates the
    /// layers against the available ELTs.
    pub fn build(&mut self) -> Result<AnalysisInput> {
        let yet = self
            .yet
            .take()
            .ok_or_else(|| EngineError::InvalidInput("a Year Event Table is required".into()))?;
        if self.elt_pairs.is_empty() {
            return Err(EngineError::InvalidInput(
                "at least one ELT is required".into(),
            ));
        }
        if self.layers.is_empty() {
            return Err(EngineError::InvalidInput(
                "at least one layer is required".into(),
            ));
        }
        let catalog_size = self.catalog_size.unwrap_or_else(|| yet.catalog_size());
        for (i, (pairs, _)) in self.elt_pairs.iter().enumerate() {
            if let Some((event, _)) = pairs.iter().find(|(e, _)| *e >= catalog_size) {
                return Err(EngineError::InvalidInput(format!(
                    "ELT {i} references event {event} outside the catalog of size {catalog_size}"
                )));
            }
        }
        for layer in &self.layers {
            layer
                .validate(self.elt_pairs.len())
                .map_err(|e| EngineError::InvalidInput(format!("layer {}: {e}", layer.id)))?;
        }
        let elts = self
            .elt_pairs
            .drain(..)
            .map(|(pairs, terms)| PreparedElt {
                lookup: PreparedLookup::build(self.lookup_kind, &pairs, catalog_size),
                terms,
                record_count: pairs.len(),
            })
            .collect();
        Ok(AnalysisInput {
            yet,
            elts,
            layers: std::mem::take(&mut self.layers),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_builder() -> AnalysisInputBuilder {
        let mut b = AnalysisInputBuilder::new();
        b.set_yet_from_trials(100, vec![vec![(1, 10.0), (2, 20.0)], vec![(3, 5.0)]]);
        b
    }

    #[test]
    fn build_happy_path() {
        let mut b = tiny_builder();
        let e0 = b.add_elt(&[(1, 100.0)], FinancialTerms::pass_through());
        let e1 = b.add_elt(&[(2, 50.0), (3, 25.0)], FinancialTerms::pass_through());
        b.add_layer_over(&[e0, e1], LayerTerms::unlimited());
        let input = b.build().unwrap();
        assert_eq!(input.num_trials(), 2);
        assert_eq!(input.elts().len(), 2);
        assert_eq!(input.layers().len(), 1);
        assert_eq!(input.layer_elts(&input.layers()[0]).len(), 2);
        assert_eq!(input.total_lookups(), 3 * 2);
        assert!((input.avg_elts_per_layer() - 2.0).abs() < 1e-12);
        assert!(input.lookup_memory_bytes() >= 100 * 8 * 2);
        assert_eq!(input.yet().num_trials(), 2);
        assert_eq!(input.yet_arc().num_trials(), 2);
        assert_eq!(input.elts()[1].record_count, 2);
    }

    #[test]
    fn all_lookup_kinds_agree() {
        for kind in LookupKind::ALL {
            let mut b = tiny_builder();
            b.with_lookup(kind);
            let e = b.add_elt(&[(1, 7.0), (3, 9.0)], FinancialTerms::pass_through());
            b.add_layer_over(&[e], LayerTerms::unlimited());
            let input = b.build().unwrap();
            let lookup = &input.elts()[0].lookup;
            assert_eq!(lookup.kind(), kind);
            assert_eq!(lookup.get(1), 7.0);
            assert_eq!(lookup.get(3), 9.0);
            assert_eq!(lookup.get(2), 0.0);
            assert_eq!(lookup.len(), 2);
            assert!(!lookup.is_empty());
            assert!(lookup.memory_bytes() > 0);
        }
    }

    #[test]
    fn build_requires_all_parts() {
        // Missing YET.
        let mut b = AnalysisInputBuilder::new();
        b.add_elt(&[(0, 1.0)], FinancialTerms::pass_through());
        b.add_layer_over(&[0], LayerTerms::unlimited());
        assert!(b.build().is_err());
        // Missing ELTs.
        let mut b = tiny_builder();
        b.add_layer_over(&[0], LayerTerms::unlimited());
        assert!(b.build().is_err());
        // Missing layers.
        let mut b = tiny_builder();
        b.add_elt(&[(0, 1.0)], FinancialTerms::pass_through());
        assert!(b.build().is_err());
    }

    #[test]
    fn build_rejects_bad_references() {
        // Layer referencing a non-existent ELT.
        let mut b = tiny_builder();
        b.add_elt(&[(0, 1.0)], FinancialTerms::pass_through());
        b.add_layer_over(&[3], LayerTerms::unlimited());
        assert!(b.build().is_err());
        // ELT referencing an event outside the catalog.
        let mut b = tiny_builder();
        b.add_elt(&[(500, 1.0)], FinancialTerms::pass_through());
        b.add_layer_over(&[0], LayerTerms::unlimited());
        assert!(b.build().is_err());
    }

    #[test]
    fn explicit_catalog_size_override() {
        let mut b = tiny_builder();
        b.with_catalog_size(1_000);
        let e = b.add_elt(&[(999, 3.0)], FinancialTerms::pass_through());
        b.add_layer_over(&[e], LayerTerms::unlimited());
        let input = b.build().unwrap();
        assert_eq!(input.elts()[0].lookup.get(999), 3.0);
    }

    #[test]
    fn add_layer_with_full_struct() {
        let mut b = tiny_builder();
        let e = b.add_elt(&[(1, 1.0)], FinancialTerms::pass_through());
        let layer = catrisk_finterms::layer::LayerBuilder::new(LayerId(7))
            .covering(e)
            .with_terms(LayerTerms::aggregate(0.0, 100.0).unwrap())
            .build()
            .unwrap();
        b.add_layer(layer);
        let input = b.build().unwrap();
        assert_eq!(input.layers()[0].id, LayerId(7));
    }
}
