//! The optimised ("chunked") aggregate-analysis kernel: intermediates staged
//! through shared memory, terms in constant memory.

use std::sync::OnceLock;

use catrisk_engine::input::{AnalysisInput, PreparedElt};
use catrisk_engine::steps;
use catrisk_engine::ylt::TrialOutcome;
use catrisk_finterms::terms::LayerTerms;

use crate::kernel::{Kernel, ThreadTracker};

/// Shared-memory bytes the kernel stages per thread per chunk element: the
/// double-buffered `lx_d`/`lox_d` values plus the staged event id and
/// time-stamp, padded for bank alignment.  With this footprint a 192-thread
/// block at chunk size 4 uses exactly the Fermi SM's 48 KB — which is why
/// the paper reports 192 as the maximum thread count for chunk size 4
/// (Fig. 5b), and why chunk sizes beyond ~12 overflow and spill (Fig. 5a).
pub const SHARED_BYTES_PER_THREAD_PER_CHUNK_ELEMENT: u32 = 64;

/// The paper's optimised GPU implementation for one layer: one thread per
/// trial, events processed in fixed-size chunks whose intermediate
/// per-occurrence losses live in shared memory, with the financial terms `I`
/// and layer terms `T` read from constant memory.
pub struct ChunkedAreKernel<'a> {
    input: &'a AnalysisInput,
    elts: Vec<&'a PreparedElt>,
    terms: LayerTerms,
    chunk_size: usize,
    outcomes: Vec<OnceLock<TrialOutcome>>,
}

impl<'a> ChunkedAreKernel<'a> {
    /// Creates the kernel for one layer with the given chunk size.
    pub fn new(input: &'a AnalysisInput, layer_index: usize, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let layer = &input.layers()[layer_index];
        let elts = input.layer_elts(layer);
        let outcomes = (0..input.num_trials()).map(|_| OnceLock::new()).collect();
        Self {
            input,
            elts,
            terms: layer.terms,
            chunk_size,
            outcomes,
        }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Extracts the per-trial outcomes after the launch.
    pub fn into_outcomes(self) -> Vec<TrialOutcome> {
        self.outcomes
            .into_iter()
            .map(|slot| slot.into_inner().unwrap_or_default())
            .collect()
    }
}

impl Kernel for ChunkedAreKernel<'_> {
    fn name(&self) -> &str {
        "are-chunked"
    }

    fn total_threads(&self) -> usize {
        self.input.num_trials()
    }

    fn shared_mem_per_block(&self, threads_per_block: u32) -> u32 {
        threads_per_block * self.chunk_size as u32 * SHARED_BYTES_PER_THREAD_PER_CHUNK_ELEMENT
    }

    fn memory_parallelism(&self) -> f64 {
        // The lookups of one staged chunk are independent, so a thread keeps
        // roughly one outstanding load per chunk element.
        self.chunk_size as f64
    }

    fn execute_thread(&self, tracker: &mut ThreadTracker) {
        let trial_index = tracker.thread_id;
        let trial = self.input.yet().trial(trial_index).occurrences;
        let k = trial.len() as u64;
        let m = self.elts.len() as u64;
        let chunks = (trial.len().div_ceil(self.chunk_size)) as u64;

        // --- Functional execution: the chunked per-trial kernel, identical
        // results to every other engine.
        let mut scratch = Vec::new();
        let outcome = steps::trial_outcome_chunked(
            &self.elts,
            &self.terms,
            trial,
            self.chunk_size,
            &mut scratch,
        );
        self.outcomes[trial_index]
            .set(outcome)
            .expect("each trial is executed exactly once");

        // --- Memory accounting.
        // Trial boundaries.
        tracker.global_read(16);
        // Stage the trial's events chunk by chunk: each event is read from
        // global memory exactly once and parked in shared memory.
        for _ in 0..k {
            tracker.global_read(8);
            tracker.shared_access(8);
        }
        // ELT lookups remain random global reads; the accumulation into the
        // shared-memory `lox` staging buffer replaces the basic kernel's
        // global read-modify-write.
        for _ in 0..(k * m) {
            tracker.global_read(8);
            tracker.shared_access(8);
            tracker.compute(6);
        }
        // Financial and layer terms are served from constant memory, read
        // once per ELT per chunk (broadcast within the block).
        for _ in 0..(m * chunks) {
            tracker.constant_access();
        }
        tracker.constant_access(); // layer terms
                                   // Per-chunk bookkeeping: the running cumulative state is
                                   // check-pointed to global memory at each chunk boundary.
        for _ in 0..chunks {
            tracker.global_read(8);
            tracker.global_read(8);
            tracker.global_write(8);
            tracker.global_write(8);
            tracker.compute(4);
        }
        // Layer-term passes run over the shared-memory staging buffers.
        for _ in 0..(6 * k) {
            tracker.shared_access(8);
            tracker.compute(3);
        }
        // Result write.
        tracker.global_write(8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::kernel::LaunchConfig;
    use catrisk_engine::input::AnalysisInputBuilder;
    use catrisk_engine::sequential::SequentialEngine;
    use catrisk_finterms::terms::FinancialTerms;

    fn input() -> AnalysisInput {
        let mut b = AnalysisInputBuilder::new();
        let trials: Vec<Vec<(u32, f32)>> = (0..64)
            .map(|t: u32| {
                (0..(t % 11))
                    .map(|i| ((t.wrapping_mul(29).wrapping_add(i * 3)) % 300, i as f32))
                    .collect()
            })
            .collect();
        b.set_yet_from_trials(300, trials);
        let pairs_a: Vec<(u32, f64)> = (0..300)
            .step_by(2)
            .map(|e| (e, 10.0 + f64::from(e)))
            .collect();
        let pairs_b: Vec<(u32, f64)> = (0..300)
            .step_by(5)
            .map(|e| (e, 5.0 + f64::from(e)))
            .collect();
        let a = b.add_elt(&pairs_a, FinancialTerms::new(5.0, 250.0, 0.8, 1.0).unwrap());
        let c = b.add_elt(&pairs_b, FinancialTerms::pass_through());
        b.add_layer_over(&[a, c], LayerTerms::new(20.0, 200.0, 50.0, 800.0).unwrap());
        b.build().unwrap()
    }

    #[test]
    fn kernel_matches_cpu_engine_for_various_chunk_sizes() {
        let input = input();
        let reference = SequentialEngine::new().run(&input);
        let executor = Executor::tesla_c2075();
        for chunk_size in [1, 2, 4, 8, 16] {
            let kernel = ChunkedAreKernel::new(&input, 0, chunk_size);
            assert_eq!(kernel.chunk_size(), chunk_size);
            executor
                .launch(&kernel, LaunchConfig::with_block_size(64))
                .unwrap();
            let outcomes = kernel.into_outcomes();
            for (a, b) in outcomes.iter().zip(reference.layer(0).outcomes()) {
                assert_eq!(a.year_loss, b.year_loss, "chunk {chunk_size}");
            }
        }
    }

    #[test]
    fn shared_memory_request_follows_chunk_size() {
        let input = input();
        let kernel = ChunkedAreKernel::new(&input, 0, 4);
        assert_eq!(
            kernel.shared_mem_per_block(192),
            48 * 1024,
            "paper: 192 threads max at chunk 4"
        );
        assert_eq!(kernel.shared_mem_per_block(64), 16 * 1024);
        assert_eq!(kernel.memory_parallelism(), 4.0);
    }

    #[test]
    fn uses_shared_and_constant_memory() {
        let input = input();
        let executor = Executor::tesla_c2075();
        let kernel = ChunkedAreKernel::new(&input, 0, 4);
        let result = executor
            .launch(&kernel, LaunchConfig::with_block_size(64))
            .unwrap();
        assert!(result.counters.shared_accesses > 0);
        assert!(result.counters.constant_accesses > 0);
        // Far fewer global accesses than the basic kernel on the same input.
        let basic = super::super::BasicAreKernel::new(&input, 0);
        let basic_result = executor
            .launch(&basic, LaunchConfig::with_block_size(64))
            .unwrap();
        assert!(result.counters.global_accesses() < basic_result.counters.global_accesses());
    }

    #[test]
    fn oversized_chunk_spills_to_global() {
        let input = input();
        let executor = Executor::tesla_c2075();
        // chunk 16 at 64 threads/block requests 64 KB > 48 KB.
        let kernel = ChunkedAreKernel::new(&input, 0, 16);
        let result = executor
            .launch(&kernel, LaunchConfig::with_block_size(64))
            .unwrap();
        assert!(result.occupancy.shared_overflow_fraction > 0.0);
        assert!(result.counters.spilled_accesses > 0);
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn zero_chunk_size_panics() {
        ChunkedAreKernel::new(&input(), 0, 0);
    }
}
