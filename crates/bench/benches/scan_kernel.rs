//! Scan-kernel benchmark: the explicit-lane SIMD block kernel against
//! the scalar fallback, and chunked self-scheduling against the old
//! static one-chunk-per-worker split on a skewed trial-sharded catalog.
//!
//! Two acceptance gates ride along with the timed groups:
//!
//! * `kernel_speedup` — the fused add/max accumulation at the active
//!   lane width must run >= 1.5x the per-element scalar reference on a
//!   cache-resident block (skipped with a note when the host only has
//!   the scalar path).  The reference executes one trial at a time with
//!   auto-vectorization suppressed, so the gate pins that runtime
//!   dispatch actually engages the vector units — a stable bar that
//!   does not wobble with the compiler's own vectorizer.  The compiled
//!   scalar fallback (which LLVM auto-vectorizes to baseline SSE2) is
//!   timed and printed alongside for tracking, but not gated: on
//!   store-port-bound hardware it sits within ~2x of the widest lanes,
//!   too close for a robust threshold.
//! * `scheduling_speedup` — on a trial-sharded source whose windows
//!   halve in size (so cut-aligned blocks are heavily skewed and the
//!   old block-count split hands one worker most of the trials), the
//!   self-scheduling defaults must answer the mix >= 1.2x faster than
//!   the static split (skipped with a note on single-core hosts, where
//!   there is no imbalance to recover).
//!
//! Both gates assert bit-identity between the configurations they time
//! — the speedup is tracked, the bits are non-negotiable.
//! `CATRISK_BENCH_QUICK=1` shrinks the workloads for smoke runs.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::kernel::{self, SimdLevel};
use catrisk_riskquery::prelude::*;
use catrisk_riskquery::TrialShardedSource;
use catrisk_simkit::rng::RngFactory;

fn quick() -> bool {
    std::env::var("CATRISK_BENCH_QUICK").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

/// Restores the scheduling knobs on scope exit so a failed gate cannot
/// leak a forced granularity into the other benchmarks in this process.
struct RestoreKnobs;

impl Drop for RestoreKnobs {
    fn drop(&mut self) {
        kernel::set_scan_chunks_per_thread(None);
        rayon::set_chunks_per_worker(None);
    }
}

// ---------------------------------------------------------------------
// Kernel: scalar vs widest available lane width on one resident block.
// ---------------------------------------------------------------------

/// One trial block's worth of column data — small enough to stay cache
/// resident, so the comparison isolates the kernel, not the memory bus.
const BLOCK_LEN: usize = 1024;

fn kernel_reps() -> usize {
    if quick() {
        4_000
    } else {
        20_000
    }
}

/// Deterministic loss-shaped data (sparse years, correlated maxima).
fn block_data(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = RngFactory::new(seed).derive("scan-kernel-bench").stream(0);
    let year: Vec<f64> = (0..BLOCK_LEN)
        .map(|_| {
            if rng.uniform() < 0.25 {
                rng.uniform() * 5.0e6
            } else {
                0.0
            }
        })
        .collect();
    let occ: Vec<f64> = year.iter().map(|&y| y * rng.uniform()).collect();
    (year, occ)
}

/// The per-element reference: the same add and `MAXPD`-select per trial
/// as the kernel, executed one trial at a time.  The opaque index step
/// keeps the loop un-vectorized and un-unrolled, so this measures what
/// the scan would cost without any lane parallelism at all.
fn accumulate_per_element(acc_year: &mut [f64], acc_occ: &mut [f64], year: &[f64], occ: &[f64]) {
    let n = year.len();
    assert!(acc_year.len() == n && acc_occ.len() == n && occ.len() == n);
    let mut i = 0;
    while i < n {
        acc_year[i] += year[i];
        let o = occ[i];
        acc_occ[i] = if o > acc_occ[i] { o } else { acc_occ[i] };
        i = criterion::black_box(i + 1);
    }
}

/// Seconds for `reps` fused accumulations through `run`, best of 5 runs.
fn time_accumulate(
    reps: usize,
    year: &[f64],
    occ: &[f64],
    run: impl Fn(&mut [f64], &mut [f64], &[f64], &[f64]),
) -> f64 {
    let mut acc_year = vec![0.0; BLOCK_LEN];
    let mut acc_occ = vec![0.0; BLOCK_LEN];
    // Warm the accumulators and the instruction path.
    run(&mut acc_year, &mut acc_occ, year, occ);
    (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                run(&mut acc_year, &mut acc_occ, year, occ);
            }
            criterion::black_box(&acc_year);
            criterion::black_box(&acc_occ);
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Timed group: one entry per lane width available on this host, so the
/// JSON summaries record the whole ladder, not just the endpoints.
fn kernel_block(c: &mut Criterion) {
    let (year, occ) = block_data(2012);
    let reps = kernel_reps().min(2_000);
    let mut group = c.benchmark_group("scan_kernel_block");
    group.sample_size(10);
    for level in kernel::available_levels() {
        group.bench_function(level.name(), |b| {
            let mut acc_year = vec![0.0; BLOCK_LEN];
            let mut acc_occ = vec![0.0; BLOCK_LEN];
            b.iter(|| {
                for _ in 0..reps {
                    kernel::accumulate_fused_at(level, &mut acc_year, &mut acc_occ, &year, &occ);
                }
                criterion::black_box(acc_year.as_slice());
            })
        });
    }
    group.finish();
}

/// Prints the measured kernel speedup and enforces the >= 1.5x bar when
/// a vector path exists, after pinning every path's bits to the
/// per-element reference.
fn kernel_speedup(_c: &mut Criterion) {
    let (year, occ) = block_data(2012);
    let best = kernel::active_level();

    // Bits first: the compiled scalar fallback and the widest vector
    // path must both match the per-element reference exactly.
    let (mut ref_year, mut ref_occ) = (vec![0.0; BLOCK_LEN], vec![0.0; BLOCK_LEN]);
    accumulate_per_element(&mut ref_year, &mut ref_occ, &year, &occ);
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    for level in [SimdLevel::Scalar, best] {
        let (mut got_year, mut got_occ) = (vec![0.0; BLOCK_LEN], vec![0.0; BLOCK_LEN]);
        kernel::accumulate_fused_at(level, &mut got_year, &mut got_occ, &year, &occ);
        assert_eq!(
            bits(&ref_year),
            bits(&got_year),
            "year bits diverged at {}",
            level.name()
        );
        assert_eq!(
            bits(&ref_occ),
            bits(&got_occ),
            "occ bits diverged at {}",
            level.name()
        );
    }

    let reps = kernel_reps();
    let reference_secs = time_accumulate(reps, &year, &occ, accumulate_per_element);
    let scalar_secs = time_accumulate(reps, &year, &occ, |ay, ao, y, o| {
        kernel::accumulate_fused_at(SimdLevel::Scalar, ay, ao, y, o)
    });
    let vector_secs = time_accumulate(reps, &year, &occ, |ay, ao, y, o| {
        kernel::accumulate_fused_at(best, ay, ao, y, o)
    });
    let speedup = reference_secs / vector_secs;
    let per_elem = vector_secs / (reps * BLOCK_LEN) as f64 * 1.0e9;
    println!(
        "kernel_speedup: fused add/max over {BLOCK_LEN}-trial blocks x {reps} reps: \
         per-element {:.2} ms, compiled scalar fallback {:.2} ms, {} {:.2} ms \
         ({per_elem:.3} ns/elem), speedup {speedup:.2}x vs per-element",
        reference_secs * 1.0e3,
        scalar_secs * 1.0e3,
        best.name(),
        vector_secs * 1.0e3,
    );
    if best == SimdLevel::Scalar {
        println!(
            "kernel_speedup: gate SKIPPED — no vector lane width available on this \
             host, the scalar fallback is the only path"
        );
        return;
    }
    assert!(
        speedup >= 1.5,
        "the {} kernel must run >= 1.5x the per-element scalar reference, got {speedup:.2}x",
        best.name()
    );
}

// ---------------------------------------------------------------------
// Scheduling: static one-chunk-per-worker split vs self-scheduling on a
// skewed trial-sharded source.
// ---------------------------------------------------------------------

fn scheduling_trials() -> usize {
    if quick() {
        40_000
    } else {
        120_000
    }
}

const SEGMENTS: usize = 16;

/// Shard window lengths that halve: `[T/2, T/4, T/8, T/16, rest]`.
/// Cut-aligned blocks inherit the skew, and the old split — equal
/// *block counts* per worker, not equal trials — hands the worker that
/// draws the early blocks most of the axis.
fn skewed_windows(trials: usize) -> Vec<usize> {
    let mut windows = Vec::new();
    let mut remaining = trials;
    for _ in 0..4 {
        let half = remaining / 2;
        windows.push(half);
        remaining -= half;
    }
    windows.push(remaining);
    windows
}

/// Builds one in-memory store per skewed window, every shard holding the
/// same segments over its slice of the trial axis.
fn build_skewed_shards(trials: usize, seed: u64) -> Vec<ResultStore> {
    let factory = RngFactory::new(seed).derive("scan-sched-bench");
    let columns: Vec<(SegmentMeta, Vec<TrialOutcome>)> = (0..SEGMENTS)
        .map(|s| {
            let mut rng = factory.stream(s as u64);
            let outcomes: Vec<TrialOutcome> = (0..trials)
                .map(|_| {
                    let year = if rng.uniform() < 0.25 {
                        rng.uniform() * 5.0e6
                    } else {
                        0.0
                    };
                    TrialOutcome {
                        year_loss: year,
                        max_occurrence_loss: year * rng.uniform(),
                        nonzero_events: u32::from(year > 0.0),
                    }
                })
                .collect();
            let meta = SegmentMeta::new(
                LayerId((s / 2) as u32),
                Peril::ALL[s % Peril::ALL.len()],
                Region::ALL[(s / 3) % Region::ALL.len()],
                LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
            );
            (meta, outcomes)
        })
        .collect();

    let mut shards = Vec::new();
    let mut start = 0usize;
    for len in skewed_windows(trials) {
        let end = start + len;
        let mut shard = ResultStore::new(len);
        for (meta, outcomes) in &columns {
            shard
                .ingest(
                    &YearLossTable::new(meta.layer, outcomes[start..end].to_vec()),
                    *meta,
                )
                .expect("ingest shard window");
        }
        shards.push(shard);
        start = end;
    }
    shards
}

/// Ungrouped scans keep the serial merge/finalize fraction small, so
/// the measurement weighs the scheduled block scans, not the sort.
fn scheduling_mix() -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::MaxLoss)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .aggregate(Aggregate::AttachProb)
            .aggregate(Aggregate::StdDev)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .loss_at_least(1.0e5)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
    ]
}

fn run_mix(
    source: &TrialShardedSource<'_, ResultStore>,
    queries: &[Query],
    reps: usize,
) -> Vec<QueryResult> {
    let mut last = Vec::new();
    for _ in 0..reps {
        last = queries
            .iter()
            .map(|q| execute(source, q).expect("query"))
            .collect();
        criterion::black_box(&last);
    }
    last
}

/// Seconds for `reps` passes over the mix, best of 5 runs.
fn time_mix(source: &TrialShardedSource<'_, ResultStore>, queries: &[Query], reps: usize) -> f64 {
    (0..5)
        .map(|_| {
            let start = Instant::now();
            run_mix(source, queries, reps);
            start.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Applies one scheduling configuration: `static` = the pre-kernel-layer
/// split (one scan window per thread, one chunk per worker), `dynamic` =
/// the self-scheduling defaults.
fn set_static_split() {
    kernel::set_scan_chunks_per_thread(Some(1));
    rayon::set_chunks_per_worker(Some(1));
}

fn set_self_scheduling() {
    kernel::set_scan_chunks_per_thread(None);
    rayon::set_chunks_per_worker(None);
}

/// Timed group: the skewed mix under both scheduling configurations.
fn scheduling_skewed(c: &mut Criterion) {
    let _restore = RestoreKnobs;
    let shards = build_skewed_shards(scheduling_trials(), 2012);
    let source = TrialShardedSource::new(shards.iter().collect()).expect("sharded source");
    let queries = scheduling_mix();
    let reps = if quick() { 4 } else { 8 };
    let mut group = c.benchmark_group("scan_scheduling_skewed");
    group.sample_size(10);
    group.bench_function("static_one_chunk_per_worker", |b| {
        set_static_split();
        b.iter(|| run_mix(&source, &queries, reps))
    });
    group.bench_function("self_scheduling", |b| {
        set_self_scheduling();
        b.iter(|| run_mix(&source, &queries, reps))
    });
    group.finish();
}

/// Prints the measured scheduling speedup and enforces the >= 1.2x bar
/// on multi-core hosts, after pinning the two configurations' bits.
fn scheduling_speedup(_c: &mut Criterion) {
    let _restore = RestoreKnobs;
    let trials = scheduling_trials();
    let shards = build_skewed_shards(trials, 2012);
    let source = TrialShardedSource::new(shards.iter().collect()).expect("sharded source");
    let queries = scheduling_mix();
    let reps = if quick() { 4 } else { 8 };

    // Bits first: scheduling may only change *when* blocks run.
    set_static_split();
    let static_results = run_mix(&source, &queries, 1);
    set_self_scheduling();
    let dynamic_results = run_mix(&source, &queries, 1);
    assert_eq!(
        static_results, dynamic_results,
        "scheduling configuration must never change result bits"
    );

    set_static_split();
    run_mix(&source, &queries, 1); // warm
    let static_secs = time_mix(&source, &queries, reps);
    set_self_scheduling();
    run_mix(&source, &queries, 1);
    let dynamic_secs = time_mix(&source, &queries, reps);

    let threads = rayon::current_num_threads();
    let speedup = static_secs / dynamic_secs;
    println!(
        "scheduling_speedup: {} queries x {reps} reps over {trials} trials in {} skewed \
         windows, {threads} threads: static {:.1} ms, self-scheduling {:.1} ms, \
         speedup {speedup:.2}x",
        queries.len(),
        source.num_shards(),
        static_secs * 1.0e3,
        dynamic_secs * 1.0e3,
    );
    if threads <= 1 {
        println!(
            "scheduling_speedup: gate SKIPPED — single-threaded host, the static split \
             has no imbalance to recover"
        );
        return;
    }
    assert!(
        speedup >= 1.2,
        "self-scheduling must answer the skewed mix >= 1.2x faster than the static \
         split on {threads} threads, got {speedup:.2}x"
    );
}

criterion_group!(
    benches,
    kernel_block,
    scheduling_skewed,
    kernel_speedup,
    scheduling_speedup
);
criterion_main!(benches);
