//! Financial terms `I` and layer terms `T` (the paper's Table I).

use serde::{Deserialize, Serialize};

use crate::{Result, TermsError};

/// Serde helpers mapping an unlimited (`+∞`) limit to JSON `null` and back,
/// since JSON has no representation for IEEE infinities.
mod maybe_unlimited {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        value: &f64,
        serializer: S,
    ) -> std::result::Result<S::Ok, S::Error> {
        if value.is_finite() {
            serializer.serialize_some(value)
        } else {
            serializer.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        deserializer: D,
    ) -> std::result::Result<f64, D::Error> {
        let opt = Option::<f64>::deserialize(deserializer)?;
        Ok(opt.unwrap_or(f64::INFINITY))
    }
}

fn check(field: &'static str, value: f64) -> Result<f64> {
    if value.is_nan() || value < 0.0 {
        Err(TermsError::InvalidParameter { field, value })
    } else {
        Ok(value)
    }
}

/// Financial terms `I` attached to an Event Loss Table.
///
/// These are contractual terms "applied at the level of each individual
/// event loss" (paper §II.A): the engine's second step transforms every
/// looked-up loss `l` into
///
/// ```text
/// l' = min(max(l − deductible, 0), limit) × share × fx_rate
/// ```
///
/// before accumulating across the layer's ELTs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FinancialTerms {
    /// Event-level deductible (retention) subtracted from every loss.
    pub deductible: f64,
    /// Event-level limit capping every loss after the deductible.
    #[serde(with = "maybe_unlimited")]
    pub limit: f64,
    /// Participation share in `[0, 1]` applied after deductible and limit.
    pub share: f64,
    /// Exchange-rate multiplier converting the ELT's currency into the
    /// analysis base currency.
    pub fx_rate: f64,
}

impl Default for FinancialTerms {
    fn default() -> Self {
        Self::pass_through()
    }
}

impl FinancialTerms {
    /// Terms that leave losses unchanged (zero deductible, unlimited,
    /// full share, unit exchange rate).
    pub fn pass_through() -> Self {
        Self {
            deductible: 0.0,
            limit: f64::INFINITY,
            share: 1.0,
            fx_rate: 1.0,
        }
    }

    /// Builds validated financial terms.
    pub fn new(deductible: f64, limit: f64, share: f64, fx_rate: f64) -> Result<Self> {
        check("deductible", deductible)?;
        if limit.is_nan() || limit < 0.0 {
            return Err(TermsError::InvalidParameter {
                field: "limit",
                value: limit,
            });
        }
        if !(0.0..=1.0).contains(&share) {
            return Err(TermsError::InvalidParameter {
                field: "share",
                value: share,
            });
        }
        if !(fx_rate.is_finite() && fx_rate > 0.0) {
            return Err(TermsError::InvalidParameter {
                field: "fx_rate",
                value: fx_rate,
            });
        }
        Ok(Self {
            deductible,
            limit,
            share,
            fx_rate,
        })
    }

    /// Applies the terms to a single event loss.
    #[inline]
    pub fn apply(&self, loss: f64) -> f64 {
        crate::apply::retention_and_limit(loss, self.deductible, self.limit)
            * self.share
            * self.fx_rate
    }

    /// True when [`apply`](Self::apply) is the identity function.
    pub fn is_pass_through(&self) -> bool {
        self.deductible == 0.0
            && self.limit.is_infinite()
            && self.share == 1.0
            && self.fx_rate == 1.0
    }
}

/// Layer terms `T = (OccR, OccL, AggR, AggL)` — the paper's Table I.
///
/// | Notation | Term | Description |
/// |---|---|---|
/// | `TOccR` | Occurrence retention | Retention/deductible of the insured for an individual occurrence loss |
/// | `TOccL` | Occurrence limit | Limit the insurer will pay for occurrence losses in excess of the retention |
/// | `TAggR` | Aggregate retention | Retention/deductible of the insured for an annual cumulative loss |
/// | `TAggL` | Aggregate limit | Limit the insurer will pay for annual cumulative losses in excess of the aggregate retention |
///
/// Occurrence terms capture Cat XL / Per-Occurrence XL treaties and apply to
/// each event occurrence independently; aggregate terms capture Aggregate XL
/// (stop-loss) treaties and apply to the running cumulative loss within a
/// trial.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerTerms {
    /// Occurrence retention `TOccR`.
    pub occ_retention: f64,
    /// Occurrence limit `TOccL`.
    #[serde(with = "maybe_unlimited")]
    pub occ_limit: f64,
    /// Aggregate retention `TAggR`.
    pub agg_retention: f64,
    /// Aggregate limit `TAggL`.
    #[serde(with = "maybe_unlimited")]
    pub agg_limit: f64,
}

impl Default for LayerTerms {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl LayerTerms {
    /// Terms that pass every loss through unchanged: zero retentions and
    /// infinite limits.  Applying these terms is the identity on the trial's
    /// aggregate loss.
    pub fn unlimited() -> Self {
        Self {
            occ_retention: 0.0,
            occ_limit: f64::INFINITY,
            agg_retention: 0.0,
            agg_limit: f64::INFINITY,
        }
    }

    /// Builds validated layer terms.
    pub fn new(
        occ_retention: f64,
        occ_limit: f64,
        agg_retention: f64,
        agg_limit: f64,
    ) -> Result<Self> {
        check("occ_retention", occ_retention)?;
        check("agg_retention", agg_retention)?;
        if occ_limit.is_nan() || occ_limit < 0.0 {
            return Err(TermsError::InvalidParameter {
                field: "occ_limit",
                value: occ_limit,
            });
        }
        if agg_limit.is_nan() || agg_limit < 0.0 {
            return Err(TermsError::InvalidParameter {
                field: "agg_limit",
                value: agg_limit,
            });
        }
        Ok(Self {
            occ_retention,
            occ_limit,
            agg_retention,
            agg_limit,
        })
    }

    /// Terms of a pure per-occurrence (Cat XL) layer: `limit xs retention`
    /// per event, no aggregate terms.
    pub fn per_occurrence(retention: f64, limit: f64) -> Result<Self> {
        Self::new(retention, limit, 0.0, f64::INFINITY)
    }

    /// Terms of a pure aggregate (stop-loss) layer: `limit xs retention`
    /// on the annual cumulative loss, no occurrence terms.
    pub fn aggregate(retention: f64, limit: f64) -> Result<Self> {
        Self::new(0.0, f64::INFINITY, retention, limit)
    }

    /// Applies the occurrence terms to one occurrence loss:
    /// `min(max(loss − OccR, 0), OccL)` (paper line 11).
    #[inline]
    pub fn apply_occurrence(&self, loss: f64) -> f64 {
        crate::apply::retention_and_limit(loss, self.occ_retention, self.occ_limit)
    }

    /// Applies the aggregate terms to a cumulative loss:
    /// `min(max(cum − AggR, 0), AggL)` (paper line 15).
    #[inline]
    pub fn apply_aggregate(&self, cumulative: f64) -> f64 {
        crate::apply::retention_and_limit(cumulative, self.agg_retention, self.agg_limit)
    }

    /// True when both pairs of terms pass losses through unchanged.
    pub fn is_unlimited(&self) -> bool {
        self.occ_retention == 0.0
            && self.agg_retention == 0.0
            && self.occ_limit.is_infinite()
            && self.agg_limit.is_infinite()
    }

    /// The maximum possible annual recovery under these terms
    /// (the aggregate limit, itself bounded by `∞` when unlimited).
    pub fn max_annual_recovery(&self) -> f64 {
        self.agg_limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn financial_terms_pass_through_is_identity() {
        let t = FinancialTerms::pass_through();
        assert!(t.is_pass_through());
        for loss in [0.0, 1.0, 123.456, 1e12] {
            assert_eq!(t.apply(loss), loss);
        }
        assert_eq!(FinancialTerms::default(), FinancialTerms::pass_through());
    }

    #[test]
    fn financial_terms_apply_order() {
        // deductible 100, limit 500, share 50%, fx 2.0
        let t = FinancialTerms::new(100.0, 500.0, 0.5, 2.0).unwrap();
        assert_eq!(t.apply(50.0), 0.0); // below deductible
        assert_eq!(t.apply(100.0), 0.0);
        assert_eq!(t.apply(300.0), (300.0 - 100.0) * 0.5 * 2.0);
        assert_eq!(t.apply(10_000.0), 500.0 * 0.5 * 2.0); // capped at limit
        assert!(!t.is_pass_through());
    }

    #[test]
    fn financial_terms_validation() {
        assert!(FinancialTerms::new(-1.0, 10.0, 1.0, 1.0).is_err());
        assert!(FinancialTerms::new(0.0, -10.0, 1.0, 1.0).is_err());
        assert!(FinancialTerms::new(0.0, 10.0, 1.5, 1.0).is_err());
        assert!(FinancialTerms::new(0.0, 10.0, 1.0, 0.0).is_err());
        assert!(FinancialTerms::new(0.0, 10.0, 1.0, f64::NAN).is_err());
        assert!(FinancialTerms::new(0.0, f64::INFINITY, 1.0, 1.0).is_ok());
    }

    #[test]
    fn layer_terms_table_one_semantics() {
        // 40M xs 10M per occurrence, 80M xs 0 aggregate.
        let t = LayerTerms::new(10.0e6, 40.0e6, 0.0, 80.0e6).unwrap();
        // Occurrence below retention.
        assert_eq!(t.apply_occurrence(5.0e6), 0.0);
        // In the layer.
        assert_eq!(t.apply_occurrence(30.0e6), 20.0e6);
        // Above the top of the layer.
        assert_eq!(t.apply_occurrence(100.0e6), 40.0e6);
        // Aggregate caps at 80M.
        assert_eq!(t.apply_aggregate(200.0e6), 80.0e6);
        assert_eq!(t.max_annual_recovery(), 80.0e6);
    }

    #[test]
    fn unlimited_terms_are_identity() {
        let t = LayerTerms::unlimited();
        assert!(t.is_unlimited());
        for x in [0.0, 1.5, 9e9] {
            assert_eq!(t.apply_occurrence(x), x);
            assert_eq!(t.apply_aggregate(x), x);
        }
        assert_eq!(LayerTerms::default(), LayerTerms::unlimited());
    }

    #[test]
    fn per_occurrence_and_aggregate_constructors() {
        let occ = LayerTerms::per_occurrence(1_000.0, 5_000.0).unwrap();
        assert_eq!(occ.agg_retention, 0.0);
        assert!(occ.agg_limit.is_infinite());
        assert_eq!(occ.apply_occurrence(3_000.0), 2_000.0);

        let agg = LayerTerms::aggregate(10_000.0, 50_000.0).unwrap();
        assert_eq!(agg.occ_retention, 0.0);
        assert!(agg.occ_limit.is_infinite());
        assert_eq!(agg.apply_aggregate(70_000.0), 50_000.0);
    }

    #[test]
    fn layer_terms_validation() {
        assert!(LayerTerms::new(-1.0, 1.0, 0.0, 1.0).is_err());
        assert!(LayerTerms::new(0.0, -1.0, 0.0, 1.0).is_err());
        assert!(LayerTerms::new(0.0, 1.0, -1.0, 1.0).is_err());
        assert!(LayerTerms::new(0.0, 1.0, 0.0, f64::NAN).is_err());
        let err = LayerTerms::new(0.0, 1.0, 0.0, f64::NAN).unwrap_err();
        assert!(err.to_string().contains("agg_limit"));
    }

    #[test]
    fn serde_round_trip() {
        let t = LayerTerms::new(1.0, 2.0, 3.0, 4.0).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        let back: LayerTerms = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        let ft = FinancialTerms::new(1.0, 2.0, 0.5, 1.1).unwrap();
        let json = serde_json::to_string(&ft).unwrap();
        let back: FinancialTerms = serde_json::from_str(&json).unwrap();
        assert_eq!(ft, back);
    }

    #[test]
    fn serde_round_trip_with_unlimited_terms() {
        // JSON has no infinity; unlimited limits round-trip through `null`.
        let t = LayerTerms::per_occurrence(10.0, f64::INFINITY).unwrap();
        let json = serde_json::to_string(&t).unwrap();
        assert!(json.contains("null"));
        let back: LayerTerms = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
        let ft = FinancialTerms::pass_through();
        let back: FinancialTerms =
            serde_json::from_str(&serde_json::to_string(&ft).unwrap()).unwrap();
        assert_eq!(ft, back);
    }
}
