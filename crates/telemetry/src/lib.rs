//! # catrisk-telemetry
//!
//! The measurement substrate of the serving stack: lock-free metrics,
//! stage-level span timers and a flight recorder, std-only like the rest
//! of the workspace.
//!
//! The paper's performance story is built on stage-level timing breakdowns
//! — knowing *which stage* of the aggregate-risk pipeline the time goes to,
//! not just the end-to-end latency.  This crate provides the pieces the
//! serving path uses to produce those breakdowns on a live server:
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s and [`Histogram`]s
//!   behind `Arc` handles; recording is wait-free atomics, registration is
//!   get-or-create under a mutex.  Each server owns its registry (no
//!   process globals).
//! * [`Histogram`] — HDR-style log-bucketed latency histogram: fixed
//!   atomic bucket array, mergeable snapshots, relative quantile error
//!   bounded at `1/2^`[`SUB_BITS`] (3.125%).  See [`histogram`] for the
//!   bucketing math.
//! * [`Span`] — RAII stage timer: `Span::enter(&hist)` at stage entry,
//!   the drop records elapsed microseconds.
//! * [`FlightRecorder`] — fixed-capacity ring of recent structured
//!   [`EventRecord`]s for post-hoc debugging, dumpable on demand
//!   (incrementally via [`FlightRecorder::dump_since`]).
//! * [`TraceRecord`] / [`TraceStore`] — request-scoped traces: span trees
//!   with numeric attribution built from the same clock reads the stage
//!   histograms record, retained under watermarked sequential ids so
//!   histogram bucket *exemplars* ([`Histogram::record_with_exemplar`])
//!   always resolve.  See [`trace`].
//! * [`MetricsSnapshot`] / [`HistogramSnapshot`] — plain serializable
//!   copies that cross the wire in the `metrics` protocol reply, with
//!   Prometheus text rendering
//!   ([`MetricsSnapshot::to_prometheus`]).
//!
//! Metric names, the stage taxonomy and the flight-recorder event schema
//! used by the serving path are documented in `docs/OBSERVABILITY.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod histogram;
pub mod recorder;
pub mod registry;
pub mod span;
pub mod trace;

pub use histogram::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_BITS,
};
pub use recorder::{EventRecord, EventValue, FlightRecorder};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry};
pub use span::Span;
pub use trace::{TraceLookup, TraceRecord, TraceSpan, TraceStore, SLOWEST_POOL};
