//! # catrisk-lookup
//!
//! Event-loss lookup structures.
//!
//! The paper identifies the representation of Event Loss Tables as *the*
//! key design decision of the aggregate risk engine (§III.B): the analysis
//! performs billions of random-key lookups (1 M trials × 1000 events × 15
//! ELTs = 15 × 10⁹ lookups for the standard workload), so the engine is
//! memory-access bound and the number of memory accesses per lookup
//! dominates everything else.  The paper chooses a **direct access table** —
//! a dense array indexed by event id, extremely sparse (e.g. 20 K non-zero
//! losses in a 2 M-event catalog) but answering every lookup with exactly
//! one memory access.
//!
//! This crate implements that structure plus the alternatives the paper
//! discusses and rejects, so the trade-off can be measured (the
//! `ablation_lookup` benchmark):
//!
//! * [`DirectAccessTable`] — dense `Vec<f64>` indexed by event id (paper's
//!   choice; one access per lookup, `O(catalog)` memory);
//! * [`SortedTable`] — sorted `(event, loss)` pairs with binary search
//!   (`O(log n)` accesses, compact);
//! * [`HashedTable`] — open-addressing hash table with a Fibonacci/Fx-style
//!   integer hash (amortised `O(1)` accesses, compact, but with probing);
//! * [`CuckooTable`] — two-choice cuckoo hashing (worst-case 2 accesses per
//!   lookup, compact, expensive construction) — the paper cites cuckoo
//!   hashing as the constant-time alternative it declined to use;
//! * [`CountingLookup`] — a wrapper that counts lookups/probes, used by the
//!   instrumentation and the ablation benchmarks.
//!
//! All structures implement [`EventLookup`] and are validated against a
//! `BTreeMap` reference in unit and property tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counting;
pub mod cuckoo;
pub mod direct;
pub mod hashed;
pub mod sorted;

pub use counting::CountingLookup;
pub use cuckoo::CuckooTable;
pub use direct::DirectAccessTable;
pub use hashed::HashedTable;
pub use sorted::SortedTable;

use serde::{Deserialize, Serialize};

/// Identifier of an event in the stochastic catalog.
///
/// Event ids are dense small integers (`0..catalog_size`), which is what
/// makes the direct access table representation possible.
pub type EventId = u32;

/// A read-only mapping from event id to loss.
///
/// `get` returns 0.0 for events that have no entry — an event that does not
/// appear in an ELT produces no loss for that exposure set, so the zero is
/// semantically meaningful and lets the engine avoid branching.
pub trait EventLookup: Send + Sync {
    /// Returns the loss for `event`, or 0.0 when the event has no entry.
    fn get(&self, event: EventId) -> f64;

    /// Number of entries (events with a stored loss, including explicit zeros).
    fn len(&self) -> usize;

    /// True when the table holds no entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap memory used by the structure, in bytes.
    fn memory_bytes(&self) -> usize;

    /// Short name used in benchmark output.
    fn kind(&self) -> LookupKind;
}

/// The available lookup-structure implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LookupKind {
    /// Dense direct access table (the paper's choice).
    Direct,
    /// Sorted array with binary search.
    Sorted,
    /// Open-addressing hash table.
    Hashed,
    /// Cuckoo hash table.
    Cuckoo,
}

impl LookupKind {
    /// All implemented kinds, in the order used by the ablation benchmark.
    pub const ALL: [LookupKind; 4] = [
        LookupKind::Direct,
        LookupKind::Sorted,
        LookupKind::Hashed,
        LookupKind::Cuckoo,
    ];

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            LookupKind::Direct => "direct",
            LookupKind::Sorted => "sorted",
            LookupKind::Hashed => "hashed",
            LookupKind::Cuckoo => "cuckoo",
        }
    }
}

impl std::fmt::Display for LookupKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the lookup structure of the requested kind from `(event, loss)`
/// pairs.
///
/// `catalog_size` is the size of the event catalog (one past the largest
/// possible event id); only the direct access table uses it, but passing it
/// uniformly keeps construction generic.
pub fn build_lookup(
    kind: LookupKind,
    pairs: &[(EventId, f64)],
    catalog_size: u32,
) -> Box<dyn EventLookup> {
    match kind {
        LookupKind::Direct => Box::new(DirectAccessTable::from_pairs(pairs, catalog_size)),
        LookupKind::Sorted => Box::new(SortedTable::from_pairs(pairs)),
        LookupKind::Hashed => Box::new(HashedTable::from_pairs(pairs)),
        LookupKind::Cuckoo => Box::new(CuckooTable::from_pairs(pairs)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sample_pairs() -> Vec<(EventId, f64)> {
        vec![
            (3, 10.0),
            (17, 2.5),
            (1_000, 7.0),
            (999_999, 123.0),
            (42, 0.0),
        ]
    }

    #[test]
    fn build_lookup_all_kinds_agree_with_reference() {
        let pairs = sample_pairs();
        let reference: BTreeMap<EventId, f64> = pairs.iter().copied().collect();
        for kind in LookupKind::ALL {
            let table = build_lookup(kind, &pairs, 1_000_000);
            assert_eq!(table.kind(), kind);
            assert_eq!(table.len(), pairs.len(), "{kind}");
            assert!(!table.is_empty());
            assert!(table.memory_bytes() > 0);
            for ev in [0u32, 3, 17, 42, 1_000, 500_000, 999_999] {
                let expected = reference.get(&ev).copied().unwrap_or(0.0);
                assert_eq!(table.get(ev), expected, "{kind} event {ev}");
            }
        }
    }

    #[test]
    fn kind_labels_unique() {
        let mut labels: Vec<&str> = LookupKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), LookupKind::ALL.len());
        assert_eq!(LookupKind::Direct.to_string(), "direct");
    }

    #[test]
    fn direct_table_uses_most_memory() {
        let pairs = sample_pairs();
        let direct = build_lookup(LookupKind::Direct, &pairs, 1_000_000);
        let sorted = build_lookup(LookupKind::Sorted, &pairs, 1_000_000);
        assert!(
            direct.memory_bytes() > 100 * sorted.memory_bytes(),
            "direct access table should be much larger on sparse data: {} vs {}",
            direct.memory_bytes(),
            sorted.memory_bytes()
        );
    }
}
