//! Reinsurance treaty structures and their lowering onto layer terms.
//!
//! The paper's introduction motivates three contract families:
//!
//! * **Cat XL / Per-Occurrence XL** — coverage for single event occurrences
//!   up to a limit with an optional retention;
//! * **Aggregate XL (stop-loss)** — coverage for the annual cumulative loss
//!   up to an aggregate limit with an optional aggregate retention;
//! * **combinations** of the two, which is what the generic
//!   `T = (OccR, OccL, AggR, AggL)` layer terms express.
//!
//! This module adds the treaty vocabulary on top of [`LayerTerms`]:
//! proportional treaties (quota share and surplus), reinstatement
//! provisions, and the lowering of each treaty to the layer terms consumed
//! by the engine.

use serde::{Deserialize, Serialize};

use crate::terms::LayerTerms;
use crate::{Result, TermsError};

/// A reinstatement provision on a per-occurrence treaty: after the layer
/// limit is exhausted it is restored (`count` times), usually against an
/// additional premium expressed as a percentage of the original premium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Reinstatements {
    /// Number of reinstatements (0 = none).
    pub count: u32,
    /// Premium for each reinstatement as a fraction of the original premium
    /// (e.g. 1.0 = "one at 100%").
    pub premium_pct: f64,
}

impl Reinstatements {
    /// No reinstatements.
    pub fn none() -> Self {
        Self {
            count: 0,
            premium_pct: 0.0,
        }
    }

    /// Builds a validated reinstatement provision.
    pub fn new(count: u32, premium_pct: f64) -> Result<Self> {
        if !(premium_pct.is_finite() && premium_pct >= 0.0) {
            return Err(TermsError::InvalidParameter {
                field: "premium_pct",
                value: premium_pct,
            });
        }
        Ok(Self { count, premium_pct })
    }

    /// Total annual capacity of a per-occurrence layer with this provision:
    /// the occurrence limit is available `count + 1` times.
    pub fn annual_capacity(&self, occurrence_limit: f64) -> f64 {
        occurrence_limit * f64::from(self.count + 1)
    }
}

/// A reinsurance treaty.
///
/// Every variant can be lowered to [`LayerTerms`] via [`Treaty::layer_terms`];
/// proportional treaties additionally expose a cession share that the engine
/// applies through the ELT financial terms.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Treaty {
    /// Catastrophe excess-of-loss: `limit` xs `retention` per occurrence,
    /// with optional reinstatements.
    CatXl {
        /// Occurrence retention (attachment point).
        retention: f64,
        /// Occurrence limit.
        limit: f64,
        /// Reinstatement provision.
        reinstatements: Reinstatements,
    },
    /// Aggregate excess-of-loss (stop loss): `limit` xs `retention` on the
    /// annual aggregate loss.
    AggregateXl {
        /// Aggregate retention.
        retention: f64,
        /// Aggregate limit.
        limit: f64,
    },
    /// Per-occurrence and aggregate terms combined in one contract.
    Combined {
        /// Occurrence retention.
        occ_retention: f64,
        /// Occurrence limit.
        occ_limit: f64,
        /// Aggregate retention.
        agg_retention: f64,
        /// Aggregate limit.
        agg_limit: f64,
    },
    /// Quota share: the reinsurer takes `cession` of every loss, optionally
    /// capped per event.
    QuotaShare {
        /// Ceded proportion in `[0, 1]`.
        cession: f64,
        /// Optional per-event cap on the ceded loss (`f64::INFINITY` = none).
        event_limit: f64,
    },
    /// Surplus share: cession derived from how far the insured value exceeds
    /// the cedant's retained line.
    Surplus {
        /// Value of one line (the cedant's retention per risk).
        retained_line: f64,
        /// Maximum number of lines ceded.
        lines: f64,
        /// Representative insured value used to derive the effective cession.
        insured_value: f64,
    },
}

impl Treaty {
    /// A conventional working-layer Cat XL treaty without reinstatements.
    pub fn cat_xl(retention: f64, limit: f64) -> Self {
        Treaty::CatXl {
            retention,
            limit,
            reinstatements: Reinstatements::none(),
        }
    }

    /// Validates the treaty's numeric parameters.
    pub fn validate(&self) -> Result<()> {
        let check = |field: &'static str, v: f64, allow_inf: bool| -> Result<()> {
            let ok = !v.is_nan() && v >= 0.0 && (allow_inf || v.is_finite());
            if ok {
                Ok(())
            } else {
                Err(TermsError::InvalidParameter { field, value: v })
            }
        };
        match *self {
            Treaty::CatXl {
                retention,
                limit,
                reinstatements,
            } => {
                check("retention", retention, false)?;
                check("limit", limit, true)?;
                check("premium_pct", reinstatements.premium_pct, false)
            }
            Treaty::AggregateXl { retention, limit } => {
                check("retention", retention, false)?;
                check("limit", limit, true)
            }
            Treaty::Combined {
                occ_retention,
                occ_limit,
                agg_retention,
                agg_limit,
            } => {
                check("occ_retention", occ_retention, false)?;
                check("occ_limit", occ_limit, true)?;
                check("agg_retention", agg_retention, false)?;
                check("agg_limit", agg_limit, true)
            }
            Treaty::QuotaShare {
                cession,
                event_limit,
            } => {
                if !(0.0..=1.0).contains(&cession) {
                    return Err(TermsError::InvalidParameter {
                        field: "cession",
                        value: cession,
                    });
                }
                check("event_limit", event_limit, true)
            }
            Treaty::Surplus {
                retained_line,
                lines,
                insured_value,
            } => {
                if !(retained_line.is_finite() && retained_line > 0.0) {
                    return Err(TermsError::InvalidParameter {
                        field: "retained_line",
                        value: retained_line,
                    });
                }
                check("lines", lines, false)?;
                check("insured_value", insured_value, false)
            }
        }
    }

    /// The proportional share this treaty cedes to the reinsurer (1.0 for
    /// non-proportional treaties).
    pub fn cession_share(&self) -> f64 {
        match *self {
            Treaty::QuotaShare { cession, .. } => cession,
            Treaty::Surplus {
                retained_line,
                lines,
                insured_value,
            } => {
                if insured_value <= retained_line {
                    0.0
                } else {
                    let surplus = (insured_value - retained_line).min(retained_line * lines);
                    surplus / insured_value
                }
            }
            _ => 1.0,
        }
    }

    /// Lowers the treaty onto the layer terms `T` consumed by the engine.
    ///
    /// Reinstatements extend the annual capacity of a Cat XL layer: the
    /// aggregate limit becomes `(count + 1) × occurrence limit`.
    pub fn layer_terms(&self) -> LayerTerms {
        match *self {
            Treaty::CatXl {
                retention,
                limit,
                reinstatements,
            } => LayerTerms {
                occ_retention: retention,
                occ_limit: limit,
                agg_retention: 0.0,
                agg_limit: if limit.is_finite() {
                    reinstatements.annual_capacity(limit)
                } else {
                    f64::INFINITY
                },
            },
            Treaty::AggregateXl { retention, limit } => LayerTerms {
                occ_retention: 0.0,
                occ_limit: f64::INFINITY,
                agg_retention: retention,
                agg_limit: limit,
            },
            Treaty::Combined {
                occ_retention,
                occ_limit,
                agg_retention,
                agg_limit,
            } => LayerTerms {
                occ_retention,
                occ_limit,
                agg_retention,
                agg_limit,
            },
            Treaty::QuotaShare { event_limit, .. } => LayerTerms {
                occ_retention: 0.0,
                occ_limit: event_limit,
                agg_retention: 0.0,
                agg_limit: f64::INFINITY,
            },
            Treaty::Surplus { .. } => LayerTerms::unlimited(),
        }
    }

    /// Human-readable description, e.g. `"40M xs 10M Cat XL, 1 reinstatement"`.
    pub fn describe(&self) -> String {
        fn millions(v: f64) -> String {
            if v.is_infinite() {
                "Unlimited".to_string()
            } else if v >= 1.0e6 {
                format!("{:.0}M", v / 1.0e6)
            } else {
                format!("{v:.0}")
            }
        }
        match *self {
            Treaty::CatXl {
                retention,
                limit,
                reinstatements,
            } => {
                let r = if reinstatements.count > 0 {
                    format!(", {} reinstatement(s)", reinstatements.count)
                } else {
                    String::new()
                };
                format!("{} xs {} Cat XL{}", millions(limit), millions(retention), r)
            }
            Treaty::AggregateXl { retention, limit } => {
                format!(
                    "{} xs {} Aggregate XL",
                    millions(limit),
                    millions(retention)
                )
            }
            Treaty::Combined {
                occ_retention,
                occ_limit,
                agg_retention,
                agg_limit,
            } => format!(
                "{} xs {} per occurrence / {} xs {} aggregate",
                millions(occ_limit),
                millions(occ_retention),
                millions(agg_limit),
                millions(agg_retention)
            ),
            Treaty::QuotaShare { cession, .. } => format!("{:.0}% quota share", cession * 100.0),
            Treaty::Surplus { lines, .. } => format!("{lines:.0}-line surplus share"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cat_xl_lowering() {
        let t = Treaty::cat_xl(10.0e6, 40.0e6);
        t.validate().unwrap();
        let lt = t.layer_terms();
        assert_eq!(lt.occ_retention, 10.0e6);
        assert_eq!(lt.occ_limit, 40.0e6);
        assert_eq!(lt.agg_retention, 0.0);
        assert_eq!(
            lt.agg_limit, 40.0e6,
            "no reinstatements: one limit per year"
        );
        assert_eq!(t.cession_share(), 1.0);
        assert!(t.describe().contains("Cat XL"));
    }

    #[test]
    fn cat_xl_with_reinstatements_extends_capacity() {
        let t = Treaty::CatXl {
            retention: 10.0e6,
            limit: 40.0e6,
            reinstatements: Reinstatements::new(2, 1.0).unwrap(),
        };
        let lt = t.layer_terms();
        assert_eq!(lt.agg_limit, 120.0e6);
        assert!(t.describe().contains("2 reinstatement"));
    }

    #[test]
    fn aggregate_xl_lowering() {
        let t = Treaty::AggregateXl {
            retention: 50.0e6,
            limit: 100.0e6,
        };
        t.validate().unwrap();
        let lt = t.layer_terms();
        assert!(lt.occ_limit.is_infinite());
        assert_eq!(lt.agg_retention, 50.0e6);
        assert_eq!(lt.agg_limit, 100.0e6);
    }

    #[test]
    fn combined_lowering_is_identity_on_fields() {
        let t = Treaty::Combined {
            occ_retention: 1.0,
            occ_limit: 2.0,
            agg_retention: 3.0,
            agg_limit: 4.0,
        };
        assert_eq!(
            t.layer_terms(),
            LayerTerms {
                occ_retention: 1.0,
                occ_limit: 2.0,
                agg_retention: 3.0,
                agg_limit: 4.0
            }
        );
    }

    #[test]
    fn quota_share_cession() {
        let t = Treaty::QuotaShare {
            cession: 0.3,
            event_limit: f64::INFINITY,
        };
        t.validate().unwrap();
        assert_eq!(t.cession_share(), 0.3);
        assert!(t.layer_terms().is_unlimited());
        assert!(Treaty::QuotaShare {
            cession: 1.3,
            event_limit: 1.0
        }
        .validate()
        .is_err());
    }

    #[test]
    fn surplus_cession_share() {
        // Retained line 1M, 4 lines, insured value 3M: surplus = 2M, share = 2/3.
        let t = Treaty::Surplus {
            retained_line: 1.0e6,
            lines: 4.0,
            insured_value: 3.0e6,
        };
        t.validate().unwrap();
        assert!((t.cession_share() - 2.0 / 3.0).abs() < 1e-12);
        // Value below the retained line cedes nothing.
        let t = Treaty::Surplus {
            retained_line: 1.0e6,
            lines: 4.0,
            insured_value: 0.5e6,
        };
        assert_eq!(t.cession_share(), 0.0);
        // Value far above the capacity is capped at lines × line.
        let t = Treaty::Surplus {
            retained_line: 1.0e6,
            lines: 2.0,
            insured_value: 10.0e6,
        };
        assert!((t.cession_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        assert!(Treaty::cat_xl(-1.0, 10.0).validate().is_err());
        assert!(Treaty::AggregateXl {
            retention: 0.0,
            limit: f64::NAN
        }
        .validate()
        .is_err());
        assert!(Treaty::Surplus {
            retained_line: 0.0,
            lines: 2.0,
            insured_value: 1.0
        }
        .validate()
        .is_err());
        assert!(Treaty::CatXl {
            retention: 1.0,
            limit: 2.0,
            reinstatements: Reinstatements {
                count: 1,
                premium_pct: f64::NAN
            },
        }
        .validate()
        .is_err());
    }

    #[test]
    fn reinstatements_capacity() {
        assert_eq!(Reinstatements::none().annual_capacity(10.0), 10.0);
        assert_eq!(
            Reinstatements::new(3, 1.0).unwrap().annual_capacity(10.0),
            40.0
        );
        assert!(Reinstatements::new(1, -0.5).is_err());
    }

    #[test]
    fn describe_formats_magnitudes() {
        assert_eq!(
            Treaty::cat_xl(10.0e6, 40.0e6).describe(),
            "40M xs 10M Cat XL"
        );
        assert!(Treaty::AggregateXl {
            retention: 0.0,
            limit: f64::INFINITY
        }
        .describe()
        .contains("Unlimited"));
        assert_eq!(
            Treaty::QuotaShare {
                cession: 0.25,
                event_limit: f64::INFINITY
            }
            .describe(),
            "25% quota share"
        );
    }

    #[test]
    fn serde_round_trip() {
        let t = Treaty::Combined {
            occ_retention: 1.0,
            occ_limit: 2.0,
            agg_retention: 3.0,
            agg_limit: 4.0,
        };
        let json = serde_json::to_string(&t).unwrap();
        let back: Treaty = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }
}
