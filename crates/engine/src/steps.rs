//! The per-trial kernel: the paper's basic algorithm, lines 3–19.
//!
//! Every engine variant — sequential, parallel, chunked and the simulated
//! GPU kernels — funnels through the functions in this module, so their Year
//! Loss Tables are bit-identical by construction and the variants differ
//! only in *how trials are scheduled* and *how memory is staged*.

use catrisk_eventgen::yet::EventOccurrence;
use catrisk_finterms::apply;
use catrisk_finterms::terms::LayerTerms;

use crate::input::PreparedElt;
use crate::ylt::TrialOutcome;

/// Computes the per-occurrence losses of one trial for one layer, net of the
/// ELT financial terms and accumulated across the layer's ELTs
/// (paper lines 3–9), writing them into `occurrence_losses`.
///
/// `occurrence_losses` is cleared and resized to the trial length.
pub fn accumulate_occurrence_losses(
    elts: &[&PreparedElt],
    trial: &[EventOccurrence],
    occurrence_losses: &mut Vec<f64>,
) {
    occurrence_losses.clear();
    occurrence_losses.resize(trial.len(), 0.0);
    for elt in elts {
        for (slot, occ) in occurrence_losses.iter_mut().zip(trial) {
            // Line 5: look up the event's loss in this ELT.
            let gross = elt.lookup.get(occ.event);
            if gross > 0.0 {
                // Line 7: apply the ELT's financial terms; lines 8–9:
                // accumulate across ELTs into a single per-occurrence loss.
                *slot += elt.terms.apply(gross);
            }
        }
    }
}

/// Applies the layer terms to already-accumulated per-occurrence losses
/// (paper lines 10–19) and summarises the trial.
///
/// `occurrence_losses` is consumed as scratch space (it ends up holding the
/// per-occurrence recoveries net of all terms).
pub fn apply_layer_terms(occurrence_losses: &mut [f64], terms: &LayerTerms) -> TrialOutcome {
    // Lines 10–11: occurrence terms.
    apply::apply_occurrence_terms(occurrence_losses, terms.occ_retention, terms.occ_limit);
    let mut max_occurrence_loss = 0.0f64;
    let mut nonzero_events = 0u32;
    for &l in occurrence_losses.iter() {
        if l > 0.0 {
            nonzero_events += 1;
            if l > max_occurrence_loss {
                max_occurrence_loss = l;
            }
        }
    }
    // Lines 12–13: cumulative sums; lines 14–15: aggregate terms;
    // lines 16–19: difference back and sum into the year loss.
    apply::cumulative_sums(occurrence_losses);
    apply::apply_aggregate_terms(occurrence_losses, terms.agg_retention, terms.agg_limit);
    let year_loss = apply::difference_and_sum(occurrence_losses);
    TrialOutcome {
        year_loss,
        max_occurrence_loss,
        nonzero_events,
    }
}

/// The full per-trial kernel (paper lines 3–19): lookup + financial terms +
/// layer terms.
///
/// `scratch` is reused across calls to avoid per-trial allocation.
pub fn trial_outcome(
    elts: &[&PreparedElt],
    terms: &LayerTerms,
    trial: &[EventOccurrence],
    scratch: &mut Vec<f64>,
) -> TrialOutcome {
    accumulate_occurrence_losses(elts, trial, scratch);
    apply_layer_terms(scratch, terms)
}

/// Chunked variant of the per-trial kernel: events are processed in blocks
/// of `chunk_size`, with the per-occurrence losses of each block staged
/// through a small buffer before the layer pipeline runs over the whole
/// trial.  This mirrors the paper's optimised GPU kernel, which stages the
/// same intermediate vectors through shared memory chunk by chunk.
///
/// Produces exactly the same result as [`trial_outcome`].
pub fn trial_outcome_chunked(
    elts: &[&PreparedElt],
    terms: &LayerTerms,
    trial: &[EventOccurrence],
    chunk_size: usize,
    scratch: &mut Vec<f64>,
) -> TrialOutcome {
    assert!(chunk_size > 0, "chunk_size must be positive");
    scratch.clear();
    scratch.resize(trial.len(), 0.0);
    let mut chunk_buffer = vec![0.0f64; chunk_size];
    for (chunk_index, chunk) in trial.chunks(chunk_size).enumerate() {
        let buffer = &mut chunk_buffer[..chunk.len()];
        buffer.iter_mut().for_each(|b| *b = 0.0);
        for elt in elts {
            for (slot, occ) in buffer.iter_mut().zip(chunk) {
                let gross = elt.lookup.get(occ.event);
                if gross > 0.0 {
                    *slot += elt.terms.apply(gross);
                }
            }
        }
        let start = chunk_index * chunk_size;
        scratch[start..start + chunk.len()].copy_from_slice(buffer);
    }
    apply_layer_terms(scratch, terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{PreparedElt, PreparedLookup};
    use catrisk_finterms::terms::FinancialTerms;
    use catrisk_lookup::LookupKind;

    fn elt(pairs: &[(u32, f64)], terms: FinancialTerms) -> PreparedElt {
        PreparedElt {
            lookup: PreparedLookup::build(LookupKind::Direct, pairs, 1_000),
            terms,
            record_count: pairs.len(),
        }
    }

    fn occurrences(events: &[u32]) -> Vec<EventOccurrence> {
        events
            .iter()
            .enumerate()
            .map(|(i, &event)| EventOccurrence {
                event,
                time: i as f32,
            })
            .collect()
    }

    #[test]
    fn losses_accumulate_across_elts() {
        let a = elt(&[(1, 100.0), (2, 50.0)], FinancialTerms::pass_through());
        let b = elt(&[(2, 25.0), (3, 10.0)], FinancialTerms::pass_through());
        let trial = occurrences(&[1, 2, 3, 4]);
        let mut scratch = Vec::new();
        accumulate_occurrence_losses(&[&a, &b], &trial, &mut scratch);
        assert_eq!(scratch, vec![100.0, 75.0, 10.0, 0.0]);
    }

    #[test]
    fn financial_terms_applied_per_elt() {
        // ELT terms: 10 deductible, 100 limit, 50% share.
        let a = elt(
            &[(1, 60.0)],
            FinancialTerms::new(10.0, 100.0, 0.5, 1.0).unwrap(),
        );
        let trial = occurrences(&[1]);
        let mut scratch = Vec::new();
        accumulate_occurrence_losses(&[&a], &trial, &mut scratch);
        assert_eq!(scratch, vec![25.0]);
    }

    #[test]
    fn layer_terms_full_pipeline() {
        // Example from the finterms::apply tests: occurrence 10 xs 5,
        // aggregate 20 xs 10.
        let mut losses = vec![4.0, 12.0, 30.0, 8.0];
        let terms = LayerTerms::new(5.0, 10.0, 10.0, 20.0).unwrap();
        let outcome = apply_layer_terms(&mut losses, &terms);
        assert_eq!(outcome.year_loss, 10.0);
        assert_eq!(outcome.max_occurrence_loss, 10.0);
        assert_eq!(outcome.nonzero_events, 3);
    }

    #[test]
    fn trial_outcome_end_to_end() {
        let a = elt(&[(1, 100.0), (3, 400.0)], FinancialTerms::pass_through());
        let b = elt(&[(3, 50.0), (7, 900.0)], FinancialTerms::pass_through());
        let terms = LayerTerms::per_occurrence(100.0, 500.0).unwrap();
        let mut scratch = Vec::new();
        // Trial 1: events 1 and 3 -> losses 100 and 450; net of 500 xs 100 -> 0 + 350.
        let o1 = trial_outcome(&[&a, &b], &terms, &occurrences(&[1, 3]), &mut scratch);
        assert_eq!(o1.year_loss, 350.0);
        assert_eq!(o1.max_occurrence_loss, 350.0);
        assert_eq!(o1.nonzero_events, 1);
        // Trial 2: event 7 -> 900; net -> 500 (capped).
        let o2 = trial_outcome(&[&a, &b], &terms, &occurrences(&[7]), &mut scratch);
        assert_eq!(o2.year_loss, 500.0);
        // Empty trial.
        let o3 = trial_outcome(&[&a, &b], &terms, &occurrences(&[]), &mut scratch);
        assert_eq!(o3.year_loss, 0.0);
        assert_eq!(o3.nonzero_events, 0);
    }

    #[test]
    fn chunked_matches_unchunked_for_all_chunk_sizes() {
        let a = elt(
            &[(1, 100.0), (2, 250.0), (3, 400.0), (9, 30.0)],
            FinancialTerms::new(5.0, 350.0, 0.9, 1.1).unwrap(),
        );
        let b = elt(
            &[(2, 75.0), (7, 900.0), (9, 60.0)],
            FinancialTerms::pass_through(),
        );
        let terms = LayerTerms::new(50.0, 400.0, 100.0, 600.0).unwrap();
        let trial = occurrences(&[1, 2, 3, 4, 7, 9, 2, 3, 1, 9, 7]);
        let mut scratch = Vec::new();
        let reference = trial_outcome(&[&a, &b], &terms, &trial, &mut scratch);
        for chunk_size in [1, 2, 3, 4, 5, 8, 11, 16, 100] {
            let chunked =
                trial_outcome_chunked(&[&a, &b], &terms, &trial, chunk_size, &mut scratch);
            assert_eq!(chunked, reference, "chunk_size {chunk_size}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn chunked_zero_chunk_panics() {
        let a = elt(&[(1, 1.0)], FinancialTerms::pass_through());
        let mut scratch = Vec::new();
        trial_outcome_chunked(
            &[&a],
            &LayerTerms::unlimited(),
            &occurrences(&[1]),
            0,
            &mut scratch,
        );
    }

    #[test]
    fn unlimited_terms_sum_gross_losses() {
        let a = elt(&[(1, 10.0), (2, 20.0)], FinancialTerms::pass_through());
        let mut scratch = Vec::new();
        let o = trial_outcome(
            &[&a],
            &LayerTerms::unlimited(),
            &occurrences(&[1, 2, 2]),
            &mut scratch,
        );
        assert_eq!(o.year_loss, 50.0);
        assert_eq!(o.max_occurrence_loss, 20.0);
        assert_eq!(o.nonzero_events, 3);
    }
}
