//! Vectorized block-scan kernels: the innermost loops of every query.
//!
//! Each query bottoms out in two loops over a trial block's loss slices —
//! fused add/max accumulation ([`accumulate_fused`]) and loss-range
//! compaction ([`retain_fused`]).  This module owns those loops as
//! explicit-lane SIMD kernels over `core::arch`, with a portable scalar
//! fallback and runtime dispatch, following the paper's follow-up
//! observation that for this kernel *vectorization*, not core count, is
//! the decisive hardware lever.
//!
//! ## Lane abstraction
//!
//! [`SimdLevel`] names the lane width a kernel runs at: `Scalar` (one
//! element at a time, the portable reference), `F64x2` (128-bit lanes,
//! x86-64 SSE2 — always present at the x86-64 baseline), `F64x4`
//! (256-bit AVX) and `F64x8` (512-bit AVX-512F), the wider two detected
//! at runtime.  [`active_level`] caches the detection; `CATRISK_SIMD`
//! (`scalar` / `f64x2` / `f64x4` / `f64x8`) caps it for experiments, and
//! [`force_level`] overrides it programmatically for benches and the
//! bit-identity oracle.
//!
//! ## Why SIMD cannot change bits
//!
//! Every kernel performs the *same operation on the same index* in the
//! same order regardless of lane width: lane `i` of a vector add computes
//! exactly `acc[i] + v[i]`, the one scalar add the reference performs at
//! index `i` — elements never interact across lanes, nothing is
//! reassociated, and no fused-multiply-add contracts two roundings into
//! one.  The max merge is written as the lane select `if v > acc { v }
//! else { acc }` in the scalar path precisely because that is the
//! documented per-lane semantics of the x86 `MAXPD` family (on a NaN or
//! equal compare the second operand — the accumulator — is returned), so
//! scalar and every SIMD width agree bit-for-bit on all inputs, including
//! the `±0.0` tie `f64::max` leaves unspecified.  `crates/gpusim`'s
//! `scan_oracle` module enforces this contract across all detected
//! levels.
//!
//! ## Scheduling granularity
//!
//! The scan splits its trial window into `scan_parts()` blocks —
//! [`scan_chunks_per_thread`] fine-grained chunks per worker rather than
//! one static chunk each — so the rayon shim's self-scheduling claim loop
//! can rebalance skewed work (cut-split blocks from trial-sharded
//! catalogs, uneven segment routing).  Block boundaries provably never
//! change results (partials merge by exact adjacent-window
//! concatenation), so granularity is a pure scheduling knob:
//! `CATRISK_SCAN_CHUNKS` or [`set_scan_chunks_per_thread`] tune it,
//! `1` reproduces the old static one-chunk-per-worker split.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use crate::query::LossRange;

/// Lane width the block kernels run at.  Variants are ordered narrowest
/// to widest so clamping a requested level to the hardware's best is a
/// plain `min`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// One element at a time — the portable reference the wider lanes
    /// must match bit-for-bit.
    Scalar,
    /// 128-bit `f64x2` lanes (x86-64 SSE2, part of the baseline ISA).
    F64x2,
    /// 256-bit `f64x4` lanes (x86-64 AVX, runtime-detected).
    F64x4,
    /// 512-bit `f64x8` lanes (x86-64 AVX-512F, runtime-detected).
    F64x8,
}

impl SimdLevel {
    /// Number of `f64` lanes processed per vector operation.
    pub fn lanes(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::F64x2 => 2,
            SimdLevel::F64x4 => 4,
            SimdLevel::F64x8 => 8,
        }
    }

    /// Short lowercase name (`scalar`, `f64x2`, ...) — the values
    /// `CATRISK_SIMD` accepts.
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::F64x2 => "f64x2",
            SimdLevel::F64x4 => "f64x4",
            SimdLevel::F64x8 => "f64x8",
        }
    }
}

/// Lane widths this machine can run, narrowest first.  Always contains
/// [`SimdLevel::Scalar`]; on x86-64 also `F64x2` (SSE2 is baseline) and,
/// when detected, `F64x4` / `F64x8`.
pub fn available_levels() -> Vec<SimdLevel> {
    let mut levels = vec![SimdLevel::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        levels.push(SimdLevel::F64x2);
        if std::arch::is_x86_feature_detected!("avx") {
            levels.push(SimdLevel::F64x4);
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            levels.push(SimdLevel::F64x8);
        }
    }
    levels
}

const LEVEL_UNSET: u8 = 0;

/// Cached dispatch decision: 0 = not yet detected, otherwise
/// `encode(level)`.
static ACTIVE: AtomicU8 = AtomicU8::new(LEVEL_UNSET);

fn encode(level: SimdLevel) -> u8 {
    match level {
        SimdLevel::Scalar => 1,
        SimdLevel::F64x2 => 2,
        SimdLevel::F64x4 => 3,
        SimdLevel::F64x8 => 4,
    }
}

fn decode(byte: u8) -> SimdLevel {
    match byte {
        1 => SimdLevel::Scalar,
        2 => SimdLevel::F64x2,
        3 => SimdLevel::F64x4,
        _ => SimdLevel::F64x8,
    }
}

fn detect() -> SimdLevel {
    let best = *available_levels().last().expect("scalar always available");
    let requested = match std::env::var("CATRISK_SIMD") {
        Ok(value) => match value.trim().to_ascii_lowercase().as_str() {
            "scalar" => SimdLevel::Scalar,
            "f64x2" | "sse2" => SimdLevel::F64x2,
            "f64x4" | "avx" => SimdLevel::F64x4,
            "f64x8" | "avx512" => SimdLevel::F64x8,
            _ => best,
        },
        Err(_) => best,
    };
    // The available set is a prefix of the variant order, so clamping a
    // too-wide request to the hardware's best is a plain `min`.
    requested.min(best)
}

/// The lane width [`accumulate_fused`] dispatches to: the widest the
/// hardware supports, unless capped by `CATRISK_SIMD` or overridden by
/// [`force_level`].  The decision is made once and cached.
pub fn active_level() -> SimdLevel {
    match ACTIVE.load(Ordering::Relaxed) {
        LEVEL_UNSET => {
            let level = detect();
            ACTIVE.store(encode(level), Ordering::Relaxed);
            level
        }
        byte => decode(byte),
    }
}

/// Overrides [`active_level`] — the bench / oracle hook for pinning a
/// lane width.  `None` clears the override and re-detects.  Concurrent
/// scans observe the change on their next dispatch; results cannot
/// differ, only speed (the bit-identity contract above).
pub fn force_level(level: Option<SimdLevel>) {
    ACTIVE.store(level.map_or(LEVEL_UNSET, encode), Ordering::Relaxed);
}

/// Fused add/max accumulation of one segment's loss slices into a
/// group's accumulators, one pass over all four slices:
/// `acc_year[i] += year[i]` and `acc_occ[i] = max(occ[i], acc_occ[i])`
/// (the `MAXPD` select — see the module docs).  All four slices must
/// have equal length.  Dispatches on [`active_level`].
#[inline]
pub fn accumulate_fused(acc_year: &mut [f64], acc_occ: &mut [f64], year: &[f64], occ: &[f64]) {
    accumulate_fused_at(active_level(), acc_year, acc_occ, year, occ);
}

/// [`accumulate_fused`] at an explicit lane width — the entry point the
/// oracle and benches use to compare levels on the same inputs.  A width
/// the hardware lacks falls back to the widest it has below it.
pub fn accumulate_fused_at(
    level: SimdLevel,
    acc_year: &mut [f64],
    acc_occ: &mut [f64],
    year: &[f64],
    occ: &[f64],
) {
    let n = year.len();
    assert!(
        acc_year.len() == n && acc_occ.len() == n && occ.len() == n,
        "accumulate_fused: slice lengths differ ({}/{}/{}/{})",
        acc_year.len(),
        acc_occ.len(),
        n,
        occ.len()
    );
    match level {
        SimdLevel::Scalar => accumulate_scalar(acc_year, acc_occ, year, occ),
        #[cfg(target_arch = "x86_64")]
        SimdLevel::F64x2 => unsafe { x86::accumulate_f64x2(acc_year, acc_occ, year, occ) },
        #[cfg(target_arch = "x86_64")]
        SimdLevel::F64x4 => {
            if std::arch::is_x86_feature_detected!("avx") {
                unsafe { x86::accumulate_f64x4(acc_year, acc_occ, year, occ) }
            } else {
                unsafe { x86::accumulate_f64x2(acc_year, acc_occ, year, occ) }
            }
        }
        #[cfg(target_arch = "x86_64")]
        SimdLevel::F64x8 => {
            if std::arch::is_x86_feature_detected!("avx512f") {
                unsafe { x86::accumulate_f64x8(acc_year, acc_occ, year, occ) }
            } else {
                accumulate_fused_at(SimdLevel::F64x4, acc_year, acc_occ, year, occ)
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => accumulate_scalar(acc_year, acc_occ, year, occ),
    }
}

/// The scalar reference: the exact per-index operations every SIMD width
/// must reproduce.  The max is the lane select (`MAXPD` semantics), not
/// `f64::max`, so ±0.0 ties resolve identically everywhere.
fn accumulate_scalar(acc_year: &mut [f64], acc_occ: &mut [f64], year: &[f64], occ: &[f64]) {
    for ((ay, &y), (ao, &o)) in acc_year
        .iter_mut()
        .zip(year)
        .zip(acc_occ.iter_mut().zip(occ))
    {
        *ay += y;
        *ao = if o > *ao { o } else { *ao };
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::accumulate_scalar;
    use core::arch::x86_64::*;

    /// # Safety
    /// SSE2 is part of the x86-64 baseline; slices must have equal
    /// length (checked by the dispatcher).
    pub(super) unsafe fn accumulate_f64x2(
        acc_year: &mut [f64],
        acc_occ: &mut [f64],
        year: &[f64],
        occ: &[f64],
    ) {
        let n = year.len();
        let head = n - n % 2;
        let (ay, ao) = (acc_year.as_mut_ptr(), acc_occ.as_mut_ptr());
        let (y, o) = (year.as_ptr(), occ.as_ptr());
        let mut i = 0;
        // Two vectors per iteration: the per-index ops are independent,
        // so unrolling only overlaps loads — it cannot reorder results.
        while i + 4 <= head {
            // SAFETY: i + 4 <= head <= n for every slice.
            unsafe {
                let vy0 = _mm_loadu_pd(y.add(i));
                let va0 = _mm_loadu_pd(ay.add(i));
                let vy1 = _mm_loadu_pd(y.add(i + 2));
                let va1 = _mm_loadu_pd(ay.add(i + 2));
                _mm_storeu_pd(ay.add(i), _mm_add_pd(va0, vy0));
                _mm_storeu_pd(ay.add(i + 2), _mm_add_pd(va1, vy1));
                let vo0 = _mm_loadu_pd(o.add(i));
                let vb0 = _mm_loadu_pd(ao.add(i));
                let vo1 = _mm_loadu_pd(o.add(i + 2));
                let vb1 = _mm_loadu_pd(ao.add(i + 2));
                // MAXPD(vo, vb): per lane `vo > vb ? vo : vb` — the
                // select the scalar reference performs.
                _mm_storeu_pd(ao.add(i), _mm_max_pd(vo0, vb0));
                _mm_storeu_pd(ao.add(i + 2), _mm_max_pd(vo1, vb1));
            }
            i += 4;
        }
        while i < head {
            // SAFETY: i + 2 <= head <= n for every slice.
            unsafe {
                let vy = _mm_loadu_pd(y.add(i));
                let va = _mm_loadu_pd(ay.add(i));
                _mm_storeu_pd(ay.add(i), _mm_add_pd(va, vy));
                let vo = _mm_loadu_pd(o.add(i));
                let vb = _mm_loadu_pd(ao.add(i));
                _mm_storeu_pd(ao.add(i), _mm_max_pd(vo, vb));
            }
            i += 2;
        }
        accumulate_scalar(
            &mut acc_year[head..],
            &mut acc_occ[head..],
            &year[head..],
            &occ[head..],
        );
    }

    /// # Safety
    /// Caller must have verified AVX via `is_x86_feature_detected!`;
    /// slices must have equal length.
    #[target_feature(enable = "avx")]
    pub(super) unsafe fn accumulate_f64x4(
        acc_year: &mut [f64],
        acc_occ: &mut [f64],
        year: &[f64],
        occ: &[f64],
    ) {
        let n = year.len();
        let head = n - n % 4;
        let (ay, ao) = (acc_year.as_mut_ptr(), acc_occ.as_mut_ptr());
        let (y, o) = (year.as_ptr(), occ.as_ptr());
        let mut i = 0;
        // Two vectors per iteration (independent per-index ops — the
        // unroll overlaps loads without reordering any result).
        while i + 8 <= head {
            // SAFETY: i + 8 <= head <= n for every slice.
            unsafe {
                let vy0 = _mm256_loadu_pd(y.add(i));
                let va0 = _mm256_loadu_pd(ay.add(i));
                let vy1 = _mm256_loadu_pd(y.add(i + 4));
                let va1 = _mm256_loadu_pd(ay.add(i + 4));
                _mm256_storeu_pd(ay.add(i), _mm256_add_pd(va0, vy0));
                _mm256_storeu_pd(ay.add(i + 4), _mm256_add_pd(va1, vy1));
                let vo0 = _mm256_loadu_pd(o.add(i));
                let vb0 = _mm256_loadu_pd(ao.add(i));
                let vo1 = _mm256_loadu_pd(o.add(i + 4));
                let vb1 = _mm256_loadu_pd(ao.add(i + 4));
                _mm256_storeu_pd(ao.add(i), _mm256_max_pd(vo0, vb0));
                _mm256_storeu_pd(ao.add(i + 4), _mm256_max_pd(vo1, vb1));
            }
            i += 8;
        }
        while i < head {
            // SAFETY: i + 4 <= head <= n for every slice.
            unsafe {
                let vy = _mm256_loadu_pd(y.add(i));
                let va = _mm256_loadu_pd(ay.add(i));
                _mm256_storeu_pd(ay.add(i), _mm256_add_pd(va, vy));
                let vo = _mm256_loadu_pd(o.add(i));
                let vb = _mm256_loadu_pd(ao.add(i));
                _mm256_storeu_pd(ao.add(i), _mm256_max_pd(vo, vb));
            }
            i += 4;
        }
        accumulate_scalar(
            &mut acc_year[head..],
            &mut acc_occ[head..],
            &year[head..],
            &occ[head..],
        );
    }

    /// # Safety
    /// Caller must have verified AVX-512F via `is_x86_feature_detected!`;
    /// slices must have equal length.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn accumulate_f64x8(
        acc_year: &mut [f64],
        acc_occ: &mut [f64],
        year: &[f64],
        occ: &[f64],
    ) {
        let n = year.len();
        let head = n - n % 8;
        let (ay, ao) = (acc_year.as_mut_ptr(), acc_occ.as_mut_ptr());
        let (y, o) = (year.as_ptr(), occ.as_ptr());
        let mut i = 0;
        // Two vectors per iteration (independent per-index ops — the
        // unroll overlaps loads without reordering any result).
        while i + 16 <= head {
            // SAFETY: i + 16 <= head <= n for every slice.
            unsafe {
                let vy0 = _mm512_loadu_pd(y.add(i));
                let va0 = _mm512_loadu_pd(ay.add(i));
                let vy1 = _mm512_loadu_pd(y.add(i + 8));
                let va1 = _mm512_loadu_pd(ay.add(i + 8));
                _mm512_storeu_pd(ay.add(i), _mm512_add_pd(va0, vy0));
                _mm512_storeu_pd(ay.add(i + 8), _mm512_add_pd(va1, vy1));
                let vo0 = _mm512_loadu_pd(o.add(i));
                let vb0 = _mm512_loadu_pd(ao.add(i));
                let vo1 = _mm512_loadu_pd(o.add(i + 8));
                let vb1 = _mm512_loadu_pd(ao.add(i + 8));
                _mm512_storeu_pd(ao.add(i), _mm512_max_pd(vo0, vb0));
                _mm512_storeu_pd(ao.add(i + 8), _mm512_max_pd(vo1, vb1));
            }
            i += 16;
        }
        while i < head {
            // SAFETY: i + 8 <= head <= n for every slice.
            unsafe {
                let vy = _mm512_loadu_pd(y.add(i));
                let va = _mm512_loadu_pd(ay.add(i));
                _mm512_storeu_pd(ay.add(i), _mm512_add_pd(va, vy));
                let vo = _mm512_loadu_pd(o.add(i));
                let vb = _mm512_loadu_pd(ao.add(i));
                _mm512_storeu_pd(ao.add(i), _mm512_max_pd(vo, vb));
            }
            i += 8;
        }
        accumulate_scalar(
            &mut acc_year[head..],
            &mut acc_occ[head..],
            &year[head..],
            &occ[head..],
        );
    }
}

/// Initialises empty accumulators from the *first* segment of a group —
/// bit-identical to accumulating into the zero identity (`0.0 + v` for
/// the year column, `max(v, 0.0)` for the occurrence column; both matter
/// for `-0.0`) without materialising the zeros.  This is the block-level
/// partial reuse that replaces `PartialAggregate::identity`'s per-block
/// zeroed allocations: the first segment writes each group's vectors
/// directly, later segments accumulate in place.
pub fn init_fused(acc_year: &mut Vec<f64>, acc_occ: &mut Vec<f64>, year: &[f64], occ: &[f64]) {
    debug_assert!(acc_year.is_empty() && acc_occ.is_empty());
    debug_assert_eq!(year.len(), occ.len());
    acc_year.reserve_exact(year.len());
    acc_occ.reserve_exact(occ.len());
    acc_year.extend(year.iter().map(|&v| 0.0 + v));
    acc_occ.extend(occ.iter().map(|&v| if v > 0.0 { v } else { 0.0 }));
}

/// Order-preserving loss-range compaction of one group's columns: keeps
/// exactly the trials whose *year* loss lies in `range`, masking the
/// occurrence column by the same trials.  Written branchless — every
/// iteration stores unconditionally at the write cursor and advances it
/// by the predicate — so the loop body has no data-dependent branch to
/// mispredict and vectorises cleanly.  Compaction order is trial order,
/// so adjacent-window concatenation stays exact.
pub fn retain_fused(year: &mut Vec<f64>, maxocc: &mut Vec<f64>, range: LossRange) {
    let n = year.len();
    debug_assert_eq!(n, maxocc.len());
    let (ys, os) = (&mut year[..], &mut maxocc[..]);
    let mut keep = 0usize;
    for t in 0..n {
        let y = ys[t];
        let o = os[t];
        // keep <= t always holds, so these writes never clobber unread
        // elements.
        ys[keep] = y;
        os[keep] = o;
        keep += usize::from(range.contains(y));
    }
    year.truncate(keep);
    maxocc.truncate(keep);
}

/// Unset sentinel for the granularity knob (0 chunks is meaningless).
const CHUNKS_UNSET: usize = 0;

static SCAN_CHUNKS: AtomicUsize = AtomicUsize::new(CHUNKS_UNSET);

/// Default fine-grained chunks per worker thread: enough slack for the
/// self-scheduling claim loop to rebalance skewed blocks, small enough
/// that per-block overhead stays negligible.
const DEFAULT_SCAN_CHUNKS: usize = 4;

/// Trial-block chunks the scan creates per worker thread.  Defaults to
/// 4; `CATRISK_SCAN_CHUNKS` or [`set_scan_chunks_per_thread`] override.
/// `1` reproduces the old static one-block-per-worker split (the
/// scheduling bench's baseline).
pub fn scan_chunks_per_thread() -> usize {
    match SCAN_CHUNKS.load(Ordering::Relaxed) {
        CHUNKS_UNSET => {
            let chunks = std::env::var("CATRISK_SCAN_CHUNKS")
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(DEFAULT_SCAN_CHUNKS);
            SCAN_CHUNKS.store(chunks, Ordering::Relaxed);
            chunks
        }
        chunks => chunks,
    }
}

/// Overrides [`scan_chunks_per_thread`] programmatically (benches, the
/// granularity-invariance tests).  `None` clears the override and
/// re-reads the environment.  Granularity can never change result bits —
/// only how evenly the blocks schedule.
pub fn set_scan_chunks_per_thread(chunks: Option<usize>) {
    SCAN_CHUNKS.store(chunks.map_or(CHUNKS_UNSET, |c| c.max(1)), Ordering::Relaxed);
}

/// Number of trial blocks a scan splits its window into:
/// `threads × scan_chunks_per_thread()`, or a single block when running
/// single-threaded (no scheduling to balance, so no reason to pay the
/// per-block merge).
pub(crate) fn scan_parts() -> usize {
    let threads = rayon::current_num_threads().max(1);
    if threads <= 1 {
        1
    } else {
        threads * scan_chunks_per_thread()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random losses with awkward cases mixed in:
    /// zeros, `-0.0`, denormals, huge values, and a non-multiple-of-8
    /// length so every tail path runs.
    fn test_slices(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            match state % 11 {
                0 => 0.0,
                1 => -0.0,
                2 => 5e-324,
                3 => 1.0e18 * x,
                _ => 1.0e6 * x,
            }
        };
        (
            (0..n).map(|_| next()).collect(),
            (0..n).map(|_| next()).collect(),
        )
    }

    #[test]
    fn every_level_matches_scalar_bitwise() {
        for n in [0, 1, 2, 3, 7, 8, 9, 63, 64, 65, 1000] {
            let (year, occ) = test_slices(n, 42);
            let (mut ref_y, mut ref_o) = test_slices(n, 7);
            for level in available_levels() {
                let (mut acc_y, mut acc_o) = (ref_y.clone(), ref_o.clone());
                accumulate_fused_at(level, &mut acc_y, &mut acc_o, &year, &occ);
                accumulate_fused_at(SimdLevel::Scalar, &mut ref_y, &mut ref_o, &year, &occ);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&acc_y), bits(&ref_y), "{} year n={n}", level.name());
                assert_eq!(bits(&acc_o), bits(&ref_o), "{} occ n={n}", level.name());
            }
        }
    }

    #[test]
    fn init_matches_accumulate_into_zero_identity() {
        let (year, occ) = test_slices(129, 99);
        let (mut init_y, mut init_o) = (Vec::new(), Vec::new());
        init_fused(&mut init_y, &mut init_o, &year, &occ);
        let (mut zero_y, mut zero_o) = (vec![0.0; 129], vec![0.0; 129]);
        accumulate_fused_at(SimdLevel::Scalar, &mut zero_y, &mut zero_o, &year, &occ);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&init_y), bits(&zero_y), "-0.0 must normalise to +0.0");
        assert_eq!(bits(&init_o), bits(&zero_o));
    }

    #[test]
    fn retain_matches_branchy_reference() {
        let (year, occ) = test_slices(257, 1234);
        let range = LossRange {
            min: 1.0e5,
            max: 8.0e5,
        };
        let (mut ref_y, mut ref_o) = (Vec::new(), Vec::new());
        for (&y, &o) in year.iter().zip(&occ) {
            if range.contains(y) {
                ref_y.push(y);
                ref_o.push(o);
            }
        }
        let (mut got_y, mut got_o) = (year.clone(), occ.clone());
        retain_fused(&mut got_y, &mut got_o, range);
        assert_eq!(got_y, ref_y);
        assert_eq!(got_o, ref_o);
        assert!(got_y.len() < year.len(), "range must actually drop trials");
    }

    #[test]
    fn forced_level_overrides_detection() {
        let detected = active_level();
        force_level(Some(SimdLevel::Scalar));
        assert_eq!(active_level(), SimdLevel::Scalar);
        force_level(None);
        assert_eq!(active_level(), detected);
    }

    #[test]
    fn granularity_knob_round_trips() {
        let ambient = scan_chunks_per_thread();
        set_scan_chunks_per_thread(Some(1));
        assert_eq!(scan_chunks_per_thread(), 1);
        set_scan_chunks_per_thread(None);
        assert_eq!(scan_chunks_per_thread(), ambient);
    }
}
