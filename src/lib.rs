//! # catrisk
//!
//! A parallel aggregate risk analysis library for portfolios of catastrophic
//! event risk, reproducing *"Parallel Simulations for Analysing Portfolios of
//! Catastrophic Event Risk"* (Bahl, Baltzer, Rau-Chaplin, Varghese — SC 2012).
//!
//! This facade crate re-exports the individual subsystem crates and provides
//! a [`prelude`] with the types used by a typical analysis:
//!
//! 1. build (or load) a stochastic **event catalog** and synthesize **Event
//!    Loss Tables** with the catastrophe-model substrate ([`catmodel`]);
//! 2. pre-simulate a **Year Event Table** ([`eventgen`]);
//! 3. describe reinsurance **layers** over the ELTs ([`finterms`]);
//! 4. run the **Aggregate Risk Engine** sequentially, on all cores, or on the
//!    simulated many-core device ([`engine`], [`gpusim`]);
//! 5. derive **PML / VaR / TVaR** and price contracts ([`metrics`],
//!    [`portfolio`]);
//! 6. ingest the Year Loss Tables into a **columnar query store** and answer
//!    ad-hoc aggregate risk queries — filters, group-bys, EP curves,
//!    VaR/TVaR, PML — QuPARA-style ([`riskquery`]);
//! 7. spill result stores to a **persistent on-disk columnar format** with
//!    incremental ingest and reopen them for querying without
//!    re-simulation ([`riskstore`]).
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through and
//! `examples/adhoc_queries.rs` for the query subsystem.

#![warn(missing_docs)]

pub use catrisk_catmodel as catmodel;
pub use catrisk_engine as engine;
pub use catrisk_eventgen as eventgen;
pub use catrisk_finterms as finterms;
pub use catrisk_gpusim as gpusim;
pub use catrisk_lookup as lookup;
pub use catrisk_metrics as metrics;
pub use catrisk_portfolio as portfolio;
pub use catrisk_riskquery as riskquery;
pub use catrisk_riskstore as riskstore;
pub use catrisk_simkit as simkit;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use catrisk_simkit::rng::RngFactory;
}
