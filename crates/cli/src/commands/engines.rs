//! `catrisk engines` — compare every engine variant on one workload.

use catrisk_engine::chunked::ChunkedEngine;
use catrisk_engine::parallel::ParallelEngine;
use catrisk_engine::phases::PhaseBreakdown;
use catrisk_engine::sequential::SequentialEngine;
use catrisk_gpusim::executor::Executor;
use catrisk_gpusim::kernel::LaunchConfig;
use catrisk_gpusim::kernels::{run_gpu_analysis, total_simulated_seconds, GpuVariant};
use catrisk_simkit::timing::Stopwatch;

use super::world::{World, WorldConfig};
use super::Options;

/// Runs the engine comparison.
pub fn run(options: &Options) -> Result<(), String> {
    let config = WorldConfig {
        seed: options.get("seed", 2012u64)?,
        num_events: options.get("events", 20_000u32)?,
        locations: options.get("locations", 1_000usize)?,
        trials: options.get("trials", 20_000usize)?,
    };
    eprintln!("building workload ({} trials) ...", config.trials);
    let world = World::build(&config)?;
    let input = world.standard_input()?;
    eprintln!(
        "workload: {} trials x {:.0} events, {} ELTs, {:.1} billion lookups per full sweep",
        input.num_trials(),
        input.yet().avg_events_per_trial(),
        input.elts().len(),
        input.total_lookups() as f64 / 1.0e9
    );

    println!("{:<18} {:>12} {:>10}", "engine", "seconds", "speedup");

    let sw = Stopwatch::start();
    let reference = SequentialEngine::new().run(&input);
    let t_seq = sw.elapsed_secs();
    println!("{:<18} {:>12.3} {:>10.2}", "sequential", t_seq, 1.0);

    let sw = Stopwatch::start();
    let parallel = ParallelEngine::new().run(&input);
    let t_par = sw.elapsed_secs();
    println!(
        "{:<18} {:>12.3} {:>10.2}",
        "parallel-cpu",
        t_par,
        t_seq / t_par
    );
    assert_eq!(reference.max_abs_difference(&parallel), 0.0);

    let sw = Stopwatch::start();
    let chunked = ChunkedEngine::new(64).run(&input);
    let t_chunk = sw.elapsed_secs();
    println!(
        "{:<18} {:>12.3} {:>10.2}",
        "chunked-cpu",
        t_chunk,
        t_seq / t_chunk
    );
    assert_eq!(reference.max_abs_difference(&chunked), 0.0);

    let executor = Executor::tesla_c2075();
    let (gpu_basic, basic_launches) = run_gpu_analysis(
        &executor,
        &input,
        GpuVariant::Basic,
        LaunchConfig::with_block_size(256),
    )
    .map_err(|e| e.to_string())?;
    assert_eq!(reference.max_abs_difference(&gpu_basic), 0.0);
    let t_basic = total_simulated_seconds(&basic_launches);
    println!(
        "{:<18} {:>12.3} {:>10.2}",
        "gpu-basic (sim)",
        t_basic,
        t_seq / t_basic
    );

    let (gpu_chunked, chunked_launches) = run_gpu_analysis(
        &executor,
        &input,
        GpuVariant::Chunked { chunk_size: 4 },
        LaunchConfig::with_block_size(64),
    )
    .map_err(|e| e.to_string())?;
    assert_eq!(reference.max_abs_difference(&gpu_chunked), 0.0);
    let t_gchunk = total_simulated_seconds(&chunked_launches);
    println!(
        "{:<18} {:>12.3} {:>10.2}",
        "gpu-chunked (sim)",
        t_gchunk,
        t_seq / t_gchunk
    );

    // Phase breakdown (Fig. 6b).
    let (_, timer) = SequentialEngine::new().run_instrumented(&input);
    println!("\nphase breakdown of the sequential engine (paper Fig. 6b):");
    print!("{}", PhaseBreakdown::from_timer(&timer).to_table());
    println!("\nnote: GPU rows report the simulated Tesla C2075 time from catrisk-gpusim,");
    println!("      CPU rows report wall-clock time on this host.");
    Ok(())
}
