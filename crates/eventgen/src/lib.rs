//! # catrisk-eventgen
//!
//! Stochastic event catalogs and Year Event Table (YET) generation.
//!
//! The first input of the aggregate risk engine is a *pre-simulated* Year
//! Event Table: "a database of pre-simulated occurrences of events from a
//! catalog of stochastic events ... each trial represents a possible
//! sequence of event occurrences for any given year" (paper §II.A).  A
//! typical YET holds 10⁵–10⁶ trials with roughly 800–1500 `(event id,
//! timestamp)` pairs per trial, drawn from a global multi-peril catalog.
//!
//! The production systems the paper builds on obtain the YET from
//! proprietary vendor models; this crate provides the synthetic equivalent:
//!
//! * [`peril`] — perils and geographic regions;
//! * [`catalog`] — the stochastic event catalog: every event carries a
//!   peril, region, annual occurrence rate and hazard intensity;
//! * [`frequency`] — annual event-count models (Poisson, negative binomial
//!   and clustered);
//! * [`seasonality`] — within-year occurrence timing by peril;
//! * [`yet`] — the compact CSR-layout [`YearEventTable`] consumed by every
//!   engine implementation;
//! * [`simulate`] — the trial simulator that combines all of the above,
//!   parallelised over trials with deterministic per-trial random streams;
//! * [`io`] — compact binary serialization for large YETs plus serde for
//!   catalogs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod frequency;
pub mod io;
pub mod peril;
pub mod seasonality;
pub mod simulate;
pub mod yet;

pub use catalog::{CatalogConfig, CatalogEvent, EventCatalog};
pub use frequency::FrequencyModel;
pub use peril::{Peril, Region};
pub use simulate::{YetConfig, YetGenerator};
pub use yet::{EventOccurrence, Trial, YearEventTable, YetBuilder};

/// Identifier of an event in the stochastic catalog (dense, `0..catalog_size`).
pub type EventId = u32;

/// Errors produced by generators and serialization.
#[derive(Debug)]
pub enum GenError {
    /// Invalid generator configuration.
    InvalidConfig(String),
    /// Binary (de)serialization failure.
    Io(std::io::Error),
    /// Malformed binary payload.
    Corrupt(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            GenError::Io(e) => write!(f, "i/o error: {e}"),
            GenError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
        }
    }
}

impl std::error::Error for GenError {}

impl From<std::io::Error> for GenError {
    fn from(e: std::io::Error) -> Self {
        GenError::Io(e)
    }
}

/// Result alias for generator operations.
pub type Result<T> = std::result::Result<T, GenError>;
