//! The serving protocol's wire-level reply types, shared by every client
//! and by the server that produces them.
//!
//! These types used to live in `catrisk-riskserve`; they moved here so
//! clients (the CLI's `stats` scraper, the load generator, the fleet's
//! health prober) can parse replies without linking the whole serving
//! stack — `catrisk-riskserve` re-exports them at their old paths and
//! remains the crate that *constructs* query/error replies (the
//! server-side constructors need its `Reply`/`ServeError` types).  The
//! normative wire specification is `docs/PROTOCOL.md` at the repository
//! root.

use catrisk_telemetry::{EventRecord, MetricsSnapshot, TraceLookup, TraceRecord};
use serde::{Deserialize, Serialize};

/// Per-request timing attribution, attached to every successful reply.
///
/// `queue_micros` covers admission to batch-execution start — it includes
/// the batch window the scheduler deliberately held the request for.
/// `exec_micros` is the wall-clock of the fused batch scan the request rode
/// in (shared by every request of the batch, not divided among them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTimings {
    /// Microseconds between `submit` and the start of the batch execution.
    pub queue_micros: u64,
    /// Microseconds the batch execution took.
    pub exec_micros: u64,
    /// Number of requests coalesced into the batch this request rode in.
    pub batch_size: u32,
}

/// A point-in-time copy of the server counters (the `stats` protocol
/// command returns this as JSON).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests rejected by admission control (`Overloaded`).
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error after admission.
    pub failed: u64,
    /// Batches executed.
    pub batches: u64,
    /// Largest batch executed.
    pub largest_batch: u64,
    /// Deepest queue observed at submit time.
    pub max_queue_depth: u64,
    /// Unique batch queries answered from the generation-keyed result
    /// cache without scanning.  Post-v1 field: defaults to 0 when absent,
    /// so a newer client can parse an older server's snapshot.
    #[serde(default)]
    pub cache_hits: u64,
    /// Unique batch queries that had to scan (then populated the cache).
    /// Post-v1 field, defaults to 0.
    #[serde(default)]
    pub cache_misses: u64,
    /// Per-shard partial aggregates reused from the partial cache on a
    /// trial-sharded catalog: each hit is one shard's trial window that
    /// did **not** need rescanning for a query that missed the result
    /// cache.  Post-v1 field, defaults to 0.
    #[serde(default)]
    pub partial_hits: u64,
    /// Per-shard trial windows that had to be rescanned (then populated
    /// the partial cache).  Post-v1 field, defaults to 0.
    #[serde(default)]
    pub partial_misses: u64,
    /// Fused partial scans actually issued: the batch planner groups all
    /// cache-missing `(query, shard)` pairs by shard window and walks
    /// each window **once** for the whole group, so this counts shard
    /// walks, not pairs — `fused_partial_scans <= partial_misses`, with
    /// equality only when no two missing queries shared a window.  The
    /// `stage_scan_shard_micros` histogram records exactly one sample per
    /// fused scan, so its count equals this counter.  Post-v1 field,
    /// defaults to 0.
    #[serde(default)]
    pub fused_partial_scans: u64,
    /// Store refreshes that made newly committed segments visible.
    /// Post-v1 field, defaults to 0.
    #[serde(default)]
    pub refreshes: u64,
    /// Requests admitted with a trace id assigned.  With sampling set to
    /// "always" (`trace_sample_every = 1`) this equals `submitted`
    /// exactly — the id is allocated inside the admission critical
    /// section, next to the `submitted` bump.  Post-v1 field, defaults
    /// to 0.
    #[serde(default)]
    pub traces_started: u64,
    /// Completed traces retained by the trace store (recency ring or
    /// slowest pool).  Post-v1 field, defaults to 0.
    #[serde(default)]
    pub traces_retained: u64,
    /// Store files auto-discovered in a watched catalog directory and
    /// added to the serving set mid-run.  Post-v1 field, defaults to 0.
    #[serde(default)]
    pub discovered_stores: u64,
}

impl StatsSnapshot {
    /// Mean requests per executed batch.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            (self.completed + self.failed) as f64 / self.batches as f64
        }
    }

    /// Fraction of unique batch queries answered from the result cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Fraction of per-shard trial windows served from cached partials
    /// (trial-sharded catalogs only; 0 when the partial path never ran).
    pub fn partial_hit_rate(&self) -> f64 {
        let total = self.partial_hits + self.partial_misses;
        if total == 0 {
            0.0
        } else {
            self.partial_hits as f64 / total as f64
        }
    }
}

/// The `p`-th percentile (0–100) of an **ascending-sorted** sample set,
/// by the nearest-rank method.  Returns 0 for an empty set.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A wire-level error payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireError {
    /// Machine-readable kind: `parse`, `invalid`, `evicted`,
    /// `overloaded` or `shutting-down`.
    pub kind: String,
    /// Human-readable message.
    pub message: String,
}

/// One reply line, serialised as a single JSON object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireReply {
    /// False exactly when `error` is set.
    pub ok: bool,
    /// `result`, `pong`, `stats`, `metrics`, `recorder`, `trace`,
    /// `traces`, `bye`, `shutting-down` or `error`.
    pub kind: String,
    /// The query result, for `kind == "result"`.
    pub result: Option<catrisk_riskquery::QueryResult>,
    /// The error payload, for `kind == "error"`.
    pub error: Option<WireError>,
    /// The counters snapshot, for `kind == "stats"`.
    pub stats: Option<StatsSnapshot>,
    /// The metric snapshot, for `kind == "metrics"`.  Post-v1 field: a
    /// v1 server never sends it, so it defaults to `None` on parse.
    #[serde(default)]
    pub metrics: Option<MetricsSnapshot>,
    /// The flight-recorder dump, for `kind == "recorder"`.  Post-v1
    /// field, defaults to `None`.
    #[serde(default)]
    pub recorder: Option<Vec<EventRecord>>,
    /// The execution profile of a traced query (`kind == "result"` with
    /// the `trace` request prefix) or of a `trace <id>` lookup
    /// (`kind == "trace"`).  Post-v1 field, defaults to `None`.
    #[serde(default)]
    pub trace: Option<TraceRecord>,
    /// The slowest retained traces, for `kind == "traces"`.  Post-v1
    /// field, defaults to `None`.
    #[serde(default)]
    pub traces: Option<Vec<TraceRecord>>,
    /// Latency attribution of a `result` reply.
    pub timings: RequestTimings,
}

impl WireReply {
    /// A successful reply skeleton of the given kind with every payload
    /// empty — the base the typed constructors (and the server's
    /// query-reply conversion) fill in.
    pub fn base(kind: &str) -> Self {
        Self {
            ok: true,
            kind: kind.to_string(),
            result: None,
            error: None,
            stats: None,
            metrics: None,
            recorder: None,
            trace: None,
            traces: None,
            timings: RequestTimings::default(),
        }
    }

    /// A `pong` reply.
    pub fn pong() -> Self {
        Self::base("pong")
    }

    /// A counters-snapshot reply.
    pub fn stats(snapshot: StatsSnapshot) -> Self {
        Self {
            stats: Some(snapshot),
            ..Self::base("stats")
        }
    }

    /// A metric-snapshot reply.
    pub fn metrics(snapshot: MetricsSnapshot) -> Self {
        Self {
            metrics: Some(snapshot),
            ..Self::base("metrics")
        }
    }

    /// A flight-recorder dump reply.
    pub fn recorder(events: Vec<EventRecord>) -> Self {
        Self {
            recorder: Some(events),
            ..Self::base("recorder")
        }
    }

    /// The reply to a `trace <id>` lookup: the retained record, or a
    /// typed error distinguishing "was sampled but evicted" from "never
    /// issued".
    pub fn trace_lookup(id: u64, lookup: TraceLookup) -> Self {
        match lookup {
            TraceLookup::Retained(record) => Self {
                trace: Some(record),
                ..Self::base("trace")
            },
            TraceLookup::Evicted => Self::error(
                "evicted",
                format!("trace {id} was recorded but has been evicted from the trace store"),
            ),
            TraceLookup::Unknown => {
                Self::error("invalid", format!("trace id {id} was never issued"))
            }
        }
    }

    /// The reply to `trace slowest [n]`.
    pub fn traces(records: Vec<TraceRecord>) -> Self {
        Self {
            traces: Some(records),
            ..Self::base("traces")
        }
    }

    /// The goodbye reply to `quit`.
    pub fn bye() -> Self {
        Self::base("bye")
    }

    /// The acknowledgement of a `shutdown` request.
    pub fn shutting_down() -> Self {
        Self::base("shutting-down")
    }

    /// An error reply with an explicit kind.
    pub fn error(kind: &str, message: impl Into<String>) -> Self {
        Self {
            ok: false,
            error: Some(WireError {
                kind: kind.to_string(),
                message: message.into(),
            }),
            ..Self::base("error")
        }
    }

    /// Serialises the reply as one line of JSON (no interior newlines —
    /// JSON strings escape them).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("wire replies always serialise")
    }

    /// Parses one reply line.
    pub fn from_line(line: &str) -> Result<Self, String> {
        serde_json::from_str(line.trim()).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 99.0), 0);
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), 50);
        assert_eq!(percentile(&samples, 99.0), 99);
        assert_eq!(percentile(&samples, 100.0), 100);
        assert_eq!(percentile(&samples, 0.0), 1);
        assert_eq!(percentile(&[7], 50.0), 7);
    }

    #[test]
    fn stats_snapshot_parses_v1_wire_shape() {
        // A protocol-v1 server sends only the seven original counters; every
        // later field must default to 0 instead of failing the parse.
        let v1 = r#"{"submitted":5,"rejected":1,"completed":4,"failed":0,
                     "batches":2,"largest_batch":3,"max_queue_depth":2}"#;
        let snap: StatsSnapshot = serde_json::from_str(v1).expect("v1 stats must parse");
        assert_eq!(snap.submitted, 5);
        assert_eq!(snap.largest_batch, 3);
        assert_eq!(snap.cache_hits, 0);
        assert_eq!(snap.refreshes, 0);
        assert_eq!(snap.discovered_stores, 0);
    }

    #[test]
    fn wire_replies_round_trip() {
        let reply = WireReply::error("overloaded", "server overloaded: 64 requests queued");
        let line = reply.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(WireReply::from_line(&line).unwrap(), reply);

        let pong = WireReply::pong().to_line();
        let parsed = WireReply::from_line(&pong).unwrap();
        assert!(parsed.ok);
        assert_eq!(parsed.kind, "pong");

        let stats = WireReply::stats(StatsSnapshot::default());
        let parsed = WireReply::from_line(&stats.to_line()).unwrap();
        assert_eq!(parsed.stats, Some(StatsSnapshot::default()));

        assert!(WireReply::from_line("not json").is_err());
    }

    #[test]
    fn v1_replies_without_metrics_fields_still_parse() {
        // A protocol-v1 server's reply has no `metrics` / `recorder`
        // fields; a newer client must parse it with both defaulting to
        // null rather than failing.
        let v1 = r#"{"ok":true,"kind":"pong","result":null,"error":null,
                     "stats":null,
                     "timings":{"queue_micros":0,"exec_micros":0,"batch_size":0}}"#;
        let parsed = WireReply::from_line(v1).expect("v1 reply must parse");
        assert_eq!(parsed.kind, "pong");
        assert_eq!(parsed.metrics, None);
        assert_eq!(parsed.recorder, None);
        assert_eq!(parsed.trace, None);
        assert_eq!(parsed.traces, None);
    }
}
