//! Value at Risk and Tail Value at Risk.

use catrisk_simkit::stats::{quantile_sorted, tail_mean_sorted};

/// Value at Risk at confidence `level` (e.g. 0.99): the `level`-quantile of
/// the annual loss distribution.
pub fn var(losses: &[f64], level: f64) -> f64 {
    assert!(!losses.is_empty(), "VaR of an empty loss vector");
    assert!(
        (0.0..1.0).contains(&level) || level == 1.0,
        "confidence level must be in [0, 1]"
    );
    let mut sorted = losses.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite losses"));
    quantile_sorted(&sorted, level)
}

/// Tail Value at Risk at confidence `level`: the mean of the losses at or
/// beyond the `level`-quantile (also called expected shortfall / conditional
/// tail expectation).
pub fn tvar(losses: &[f64], level: f64) -> f64 {
    assert!(!losses.is_empty(), "TVaR of an empty loss vector");
    assert!(
        (0.0..1.0).contains(&level) || level == 1.0,
        "confidence level must be in [0, 1]"
    );
    let mut sorted = losses.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite losses"));
    tail_mean_sorted(&sorted, level)
}

/// Computes VaR and TVaR at several confidence levels in one pass over a
/// pre-sorted copy of the losses; returns `(level, var, tvar)` triples.
pub fn var_tvar_profile(losses: &[f64], levels: &[f64]) -> Vec<(f64, f64, f64)> {
    assert!(!losses.is_empty(), "profile of an empty loss vector");
    let mut sorted = losses.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite losses"));
    levels
        .iter()
        .map(|&level| {
            (
                level,
                quantile_sorted(&sorted, level),
                tail_mean_sorted(&sorted, level),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn losses() -> Vec<f64> {
        (1..=100).map(f64::from).collect()
    }

    #[test]
    fn var_is_quantile() {
        let l = losses();
        assert!((var(&l, 0.95) - 95.05).abs() < 0.1);
        assert!((var(&l, 0.5) - 50.5).abs() < 0.1);
        assert_eq!(var(&l, 1.0), 100.0);
        assert_eq!(var(&l, 0.0), 1.0);
    }

    #[test]
    fn tvar_at_least_var() {
        let l = losses();
        for level in [0.0, 0.5, 0.9, 0.95, 0.99] {
            assert!(
                tvar(&l, level) >= var(&l, level) - 1e-12,
                "TVaR must dominate VaR at level {level}"
            );
        }
        // TVaR at 0.95 of 1..=100 is the mean of 96..=100 = 98.
        assert!((tvar(&l, 0.95) - 98.0).abs() < 0.5);
    }

    #[test]
    fn profile_matches_individual_calls() {
        let l = losses();
        let profile = var_tvar_profile(&l, &[0.9, 0.99]);
        assert_eq!(profile.len(), 2);
        for (level, v, t) in profile {
            assert_eq!(v, var(&l, level));
            assert_eq!(t, tvar(&l, level));
        }
    }

    #[test]
    fn constant_losses_give_constant_metrics() {
        let l = vec![5.0; 50];
        assert_eq!(var(&l, 0.99), 5.0);
        assert_eq!(tvar(&l, 0.99), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_losses_panic() {
        var(&[], 0.9);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn bad_level_panics() {
        tvar(&[1.0], 1.5);
    }
}
