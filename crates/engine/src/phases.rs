//! Phase names and breakdown reporting (paper Fig. 6b).

use serde::{Deserialize, Serialize};

use catrisk_simkit::timing::PhaseTimer;

/// Phase: fetching the trial's events from memory.
pub const PHASE_EVENT_FETCH: &str = "event-fetch";
/// Phase: looking up event losses in the ELT tables (the dominant cost).
pub const PHASE_LOOKUP: &str = "elt-lookup";
/// Phase: applying the ELT financial terms and accumulating across ELTs.
pub const PHASE_FINANCIAL_TERMS: &str = "financial-terms";
/// Phase: applying the occurrence and aggregate layer terms.
pub const PHASE_LAYER_TERMS: &str = "layer-terms";

/// All phases in the order of the paper's Fig. 6b.
pub const ALL_PHASES: [&str; 4] = [
    PHASE_EVENT_FETCH,
    PHASE_LOOKUP,
    PHASE_FINANCIAL_TERMS,
    PHASE_LAYER_TERMS,
];

/// The share of total runtime spent in each phase of the algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// `(phase name, fraction of total time)`, in [`ALL_PHASES`] order.
    pub shares: Vec<(String, f64)>,
    /// Total instrumented time in seconds.
    pub total_seconds: f64,
}

impl PhaseBreakdown {
    /// Builds a breakdown from an accumulated phase timer.
    pub fn from_timer(timer: &PhaseTimer) -> Self {
        let total = timer.total().as_secs_f64();
        let shares = ALL_PHASES
            .iter()
            .map(|phase| {
                let share = if total > 0.0 {
                    timer.get(phase).as_secs_f64() / total
                } else {
                    0.0
                };
                (phase.to_string(), share)
            })
            .collect();
        Self {
            shares,
            total_seconds: total,
        }
    }

    /// The fraction of time spent in one phase (0 when unknown).
    pub fn share_of(&self, phase: &str) -> f64 {
        self.shares
            .iter()
            .find(|(p, _)| p == phase)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// Renders the breakdown as percentage lines (the format of Fig. 6b).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for (phase, share) in &self.shares {
            out.push_str(&format!("{phase:<16} {:6.1}%\n", share * 100.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn breakdown_from_timer() {
        let mut timer = PhaseTimer::new();
        timer.add(PHASE_LOOKUP, Duration::from_millis(780));
        timer.add(PHASE_EVENT_FETCH, Duration::from_millis(100));
        timer.add(PHASE_FINANCIAL_TERMS, Duration::from_millis(70));
        timer.add(PHASE_LAYER_TERMS, Duration::from_millis(50));
        let breakdown = PhaseBreakdown::from_timer(&timer);
        assert!((breakdown.share_of(PHASE_LOOKUP) - 0.78).abs() < 1e-9);
        assert!((breakdown.total_seconds - 1.0).abs() < 1e-9);
        let sum: f64 = breakdown.shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(breakdown.shares.len(), 4);
        let table = breakdown.to_table();
        assert!(table.contains("elt-lookup"));
        assert!(table.contains("78.0%"));
        assert_eq!(breakdown.share_of("unknown-phase"), 0.0);
    }

    #[test]
    fn empty_timer_gives_zero_shares() {
        let breakdown = PhaseBreakdown::from_timer(&PhaseTimer::new());
        assert_eq!(breakdown.total_seconds, 0.0);
        assert!(breakdown.shares.iter().all(|(_, s)| *s == 0.0));
    }
}
