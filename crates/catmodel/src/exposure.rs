//! Exposure databases: the insured properties analysed by the model.
//!
//! "Exposure databases ... describe thousands or millions of buildings to be
//! analysed, their construction types, location, value, use, and coverage"
//! (paper §I).

use serde::{Deserialize, Serialize};

use catrisk_eventgen::peril::Region;

/// Serde helpers mapping an unlimited (`+∞`) site limit to JSON `null` and
/// back, since JSON has no representation for IEEE infinities.
mod maybe_unlimited {
    use serde::{Deserialize, Deserializer, Serializer};

    pub fn serialize<S: Serializer>(value: &f64, serializer: S) -> Result<S::Ok, S::Error> {
        if value.is_finite() {
            serializer.serialize_some(value)
        } else {
            serializer.serialize_none()
        }
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(deserializer: D) -> Result<f64, D::Error> {
        let opt = Option::<f64>::deserialize(deserializer)?;
        Ok(opt.unwrap_or(f64::INFINITY))
    }
}

/// Construction class of a building, the primary driver of vulnerability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Construction {
    /// Light wood frame.
    WoodFrame,
    /// Unreinforced or reinforced masonry.
    Masonry,
    /// Cast-in-place or precast concrete.
    Concrete,
    /// Steel frame.
    Steel,
    /// Light metal / engineered industrial structures.
    LightMetal,
}

impl Construction {
    /// All construction classes.
    pub const ALL: [Construction; 5] = [
        Construction::WoodFrame,
        Construction::Masonry,
        Construction::Concrete,
        Construction::Steel,
        Construction::LightMetal,
    ];

    /// Typical share of a property portfolio in this class (sums to 1).
    pub fn portfolio_share(&self) -> f64 {
        match self {
            Construction::WoodFrame => 0.35,
            Construction::Masonry => 0.25,
            Construction::Concrete => 0.20,
            Construction::Steel => 0.12,
            Construction::LightMetal => 0.08,
        }
    }
}

/// Occupancy (use) of a building, a secondary driver of vulnerability and
/// of the insured-value distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Occupancy {
    /// Single-family and multi-family residential.
    Residential,
    /// Offices, retail, hospitality.
    Commercial,
    /// Manufacturing, warehouses, utilities.
    Industrial,
    /// Schools, hospitals, public administration.
    Public,
}

impl Occupancy {
    /// All occupancy classes.
    pub const ALL: [Occupancy; 4] = [
        Occupancy::Residential,
        Occupancy::Commercial,
        Occupancy::Industrial,
        Occupancy::Public,
    ];

    /// Typical share of a property portfolio in this class (sums to 1).
    pub fn portfolio_share(&self) -> f64 {
        match self {
            Occupancy::Residential => 0.55,
            Occupancy::Commercial => 0.25,
            Occupancy::Industrial => 0.12,
            Occupancy::Public => 0.08,
        }
    }

    /// Median total insured value of a single location of this occupancy,
    /// in the analysis base currency.
    pub fn median_tiv(&self) -> f64 {
        match self {
            Occupancy::Residential => 0.4e6,
            Occupancy::Commercial => 3.0e6,
            Occupancy::Industrial => 8.0e6,
            Occupancy::Public => 5.0e6,
        }
    }
}

/// One insured location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Location {
    /// Identifier within the exposure database.
    pub id: u32,
    /// Geographic region of the location.
    pub region: Region,
    /// Latitude-like coordinate in `[0, 1]` within the region's bounding box.
    pub x: f64,
    /// Longitude-like coordinate in `[0, 1]` within the region's bounding box.
    pub y: f64,
    /// Construction class.
    pub construction: Construction,
    /// Occupancy class.
    pub occupancy: Occupancy,
    /// Year the building was constructed (affects vulnerability).
    pub year_built: u16,
    /// Total insured value in the base currency.
    pub tiv: f64,
    /// Site deductible applied to every event's ground-up loss.
    pub site_deductible: f64,
    /// Site limit applied after the deductible (`f64::INFINITY` = none).
    #[serde(with = "maybe_unlimited")]
    pub site_limit: f64,
}

impl Location {
    /// Age of the building relative to a 2012 analysis date (the paper's
    /// publication year), clamped at zero.
    pub fn age(&self) -> u16 {
        2012_u16.saturating_sub(self.year_built)
    }
}

/// An exposure database: the set of locations covered by one cedant /
/// exposure set, from which one ELT is produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExposureDatabase {
    /// Name of the exposure set (cedant or portfolio identifier).
    pub name: String,
    locations: Vec<Location>,
}

impl ExposureDatabase {
    /// Creates a database from explicit locations.
    pub fn new(name: impl Into<String>, locations: Vec<Location>) -> Self {
        Self {
            name: name.into(),
            locations,
        }
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.locations.len()
    }

    /// True when the database has no locations.
    pub fn is_empty(&self) -> bool {
        self.locations.is_empty()
    }

    /// All locations.
    pub fn locations(&self) -> &[Location] {
        &self.locations
    }

    /// Total insured value across all locations.
    pub fn total_tiv(&self) -> f64 {
        self.locations.iter().map(|l| l.tiv).sum()
    }

    /// Locations in a given region (the hazard module only evaluates
    /// locations in the event's region).
    pub fn locations_in(&self, region: Region) -> impl Iterator<Item = &Location> + '_ {
        self.locations.iter().filter(move |l| l.region == region)
    }

    /// Number of locations per region, in `Region::ALL` order.
    pub fn region_counts(&self) -> Vec<(Region, usize)> {
        Region::ALL
            .iter()
            .map(|r| (*r, self.locations.iter().filter(|l| l.region == *r).count()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc(id: u32, region: Region, tiv: f64) -> Location {
        Location {
            id,
            region,
            x: 0.5,
            y: 0.5,
            construction: Construction::WoodFrame,
            occupancy: Occupancy::Residential,
            year_built: 1995,
            tiv,
            site_deductible: 0.0,
            site_limit: f64::INFINITY,
        }
    }

    #[test]
    fn shares_sum_to_one() {
        let c: f64 = Construction::ALL.iter().map(|c| c.portfolio_share()).sum();
        assert!((c - 1.0).abs() < 1e-12);
        let o: f64 = Occupancy::ALL.iter().map(|o| o.portfolio_share()).sum();
        assert!((o - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_tiv_positive_and_ordered() {
        assert!(Occupancy::ALL.iter().all(|o| o.median_tiv() > 0.0));
        assert!(Occupancy::Industrial.median_tiv() > Occupancy::Residential.median_tiv());
    }

    #[test]
    fn location_age() {
        assert_eq!(loc(0, Region::Europe, 1.0).age(), 17);
        let new_build = Location {
            year_built: 2020,
            ..loc(0, Region::Europe, 1.0)
        };
        assert_eq!(new_build.age(), 0);
    }

    #[test]
    fn database_aggregates() {
        let db = ExposureDatabase::new(
            "test",
            vec![
                loc(0, Region::Europe, 1.0e6),
                loc(1, Region::Europe, 2.0e6),
                loc(2, Region::Japan, 3.0e6),
            ],
        );
        assert_eq!(db.len(), 3);
        assert!(!db.is_empty());
        assert_eq!(db.total_tiv(), 6.0e6);
        assert_eq!(db.locations_in(Region::Europe).count(), 2);
        assert_eq!(db.locations_in(Region::Caribbean).count(), 0);
        let counts = db.region_counts();
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 3);
        assert_eq!(db.locations().len(), 3);
        assert_eq!(db.name, "test");
    }

    #[test]
    fn empty_database() {
        let db = ExposureDatabase::new("empty", vec![]);
        assert!(db.is_empty());
        assert_eq!(db.total_tiv(), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let db = ExposureDatabase::new("rt", vec![loc(0, Region::Oceania, 5.0)]);
        let json = serde_json::to_string(&db).unwrap();
        let back: ExposureDatabase = serde_json::from_str(&json).unwrap();
        assert_eq!(db, back);
    }
}
