//! Within-year occurrence timing.
//!
//! Each YET record carries the time-stamp of the event occurrence within the
//! contractual year, and trials are "ordered by ascending time-stamp values"
//! (paper §II.A).  The timing matters because aggregate terms depend on the
//! sequence of prior events in the trial.  Perils are strongly seasonal
//! (hurricane season, winter storms, spring tornado outbreaks), so the
//! simulator samples a day-of-year from a peril-specific monthly profile and
//! a uniform time within that day.

use serde::{Deserialize, Serialize};

use catrisk_simkit::rng::SimRng;
use catrisk_simkit::sampling::AliasTable;

use crate::peril::Peril;

/// Days in each month of the modelled (non-leap) contractual year.
pub const DAYS_IN_MONTH: [u32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Number of days in the modelled contractual year.
pub const DAYS_IN_YEAR: f64 = 365.0;

/// Monthly occurrence profile of a peril (12 non-negative weights).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeasonalProfile {
    weights: [f64; 12],
}

impl SeasonalProfile {
    /// A uniform (season-free) profile.
    pub fn uniform() -> Self {
        Self { weights: [1.0; 12] }
    }

    /// Creates a profile from explicit monthly weights.
    pub fn new(weights: [f64; 12]) -> Self {
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && weights.iter().sum::<f64>() > 0.0,
            "seasonal weights must be non-negative and not all zero"
        );
        Self { weights }
    }

    /// The northern-hemisphere-centric default profile of a peril.
    pub fn for_peril(peril: Peril) -> Self {
        // Weights are relative; absolute scale is irrelevant.
        let weights = match peril {
            // Atlantic hurricane season peaks Aug–Oct.
            Peril::Hurricane => [0.1, 0.1, 0.1, 0.2, 0.5, 1.5, 3.0, 6.0, 7.0, 4.0, 1.5, 0.3],
            // Earthquakes are not seasonal.
            Peril::Earthquake => [1.0; 12],
            // Floods peak in spring and late summer.
            Peril::Flood => [1.0, 1.2, 2.0, 2.5, 2.0, 1.5, 1.5, 2.0, 2.0, 1.5, 1.2, 1.0],
            // Tornado outbreaks peak Apr–Jun.
            Peril::Tornado => [0.5, 0.8, 2.0, 4.0, 5.0, 4.0, 2.0, 1.5, 1.0, 0.8, 0.8, 0.5],
            // Winter storms peak Dec–Feb.
            Peril::WinterStorm => [6.0, 5.0, 2.5, 0.8, 0.2, 0.1, 0.1, 0.1, 0.2, 1.0, 3.0, 5.5],
            // Wildfire season peaks late summer/autumn.
            Peril::Wildfire => [0.3, 0.3, 0.5, 0.8, 1.2, 2.0, 3.5, 4.5, 4.0, 2.5, 1.0, 0.4],
        };
        Self { weights }
    }

    /// Monthly weights.
    pub fn weights(&self) -> &[f64; 12] {
        &self.weights
    }

    /// Probability of an occurrence falling in each month (normalised).
    pub fn monthly_probabilities(&self) -> [f64; 12] {
        let total: f64 = self.weights.iter().sum();
        let mut out = [0.0; 12];
        for (o, w) in out.iter_mut().zip(&self.weights) {
            *o = w / total;
        }
        out
    }
}

/// Samples occurrence time-stamps (in fractional days since the start of the
/// contractual year) from seasonal profiles.
#[derive(Debug, Clone)]
pub struct TimestampSampler {
    tables: Vec<(Peril, AliasTable)>,
}

impl Default for TimestampSampler {
    fn default() -> Self {
        Self::new()
    }
}

impl TimestampSampler {
    /// Builds a sampler with the default profile of every peril.
    pub fn new() -> Self {
        let tables = Peril::ALL
            .iter()
            .map(|p| {
                let profile = SeasonalProfile::for_peril(*p);
                (
                    *p,
                    AliasTable::new(profile.weights()).expect("valid weights"),
                )
            })
            .collect();
        Self { tables }
    }

    /// Builds a sampler from explicit profiles (perils not listed fall back
    /// to a uniform profile).
    pub fn with_profiles(profiles: &[(Peril, SeasonalProfile)]) -> Self {
        let tables = Peril::ALL
            .iter()
            .map(|p| {
                let profile = profiles
                    .iter()
                    .find(|(q, _)| q == p)
                    .map(|(_, prof)| prof.clone())
                    .unwrap_or_else(SeasonalProfile::uniform);
                (
                    *p,
                    AliasTable::new(profile.weights()).expect("valid weights"),
                )
            })
            .collect();
        Self { tables }
    }

    /// Samples a time-stamp in `[0, 365)` days for an occurrence of `peril`.
    pub fn sample(&self, peril: Peril, rng: &mut SimRng) -> f64 {
        let table = &self
            .tables
            .iter()
            .find(|(p, _)| *p == peril)
            .expect("all perils have tables")
            .1;
        let month = table.sample(rng);
        let start: u32 = DAYS_IN_MONTH[..month].iter().sum();
        let day_in_month = rng.uniform() * f64::from(DAYS_IN_MONTH[month]);
        f64::from(start) + day_in_month
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_simkit::rng::RngFactory;

    #[test]
    fn month_lengths_sum_to_year() {
        assert_eq!(DAYS_IN_MONTH.iter().sum::<u32>() as f64, DAYS_IN_YEAR);
    }

    #[test]
    fn profiles_normalise() {
        for p in Peril::ALL {
            let probs = SeasonalProfile::for_peril(p).monthly_probabilities();
            let sum: f64 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{p}");
        }
    }

    #[test]
    fn hurricane_season_peaks_in_autumn() {
        let probs = SeasonalProfile::for_peril(Peril::Hurricane).monthly_probabilities();
        let aug_sep_oct = probs[7] + probs[8] + probs[9];
        assert!(aug_sep_oct > 0.6, "Aug–Oct share {aug_sep_oct}");
        let winter = SeasonalProfile::for_peril(Peril::WinterStorm).monthly_probabilities();
        let djf = winter[11] + winter[0] + winter[1];
        assert!(djf > 0.6, "DJF share {djf}");
    }

    #[test]
    fn sampled_timestamps_in_range_and_seasonal() {
        let sampler = TimestampSampler::new();
        let mut rng = RngFactory::new(9).stream(0);
        let mut autumn = 0u32;
        let n = 20_000;
        for _ in 0..n {
            let t = sampler.sample(Peril::Hurricane, &mut rng);
            assert!((0.0..DAYS_IN_YEAR).contains(&t));
            // Aug 1 is day 212; Oct 31 is day 303.
            if (212.0..304.0).contains(&t) {
                autumn += 1;
            }
        }
        assert!(f64::from(autumn) / f64::from(n) > 0.55);
    }

    #[test]
    fn earthquake_timestamps_roughly_uniform() {
        let sampler = TimestampSampler::new();
        let mut rng = RngFactory::new(10).stream(0);
        let mut first_half = 0u32;
        let n = 20_000;
        for _ in 0..n {
            if sampler.sample(Peril::Earthquake, &mut rng) < DAYS_IN_YEAR / 2.0 {
                first_half += 1;
            }
        }
        let share = f64::from(first_half) / f64::from(n);
        assert!((share - 0.5).abs() < 0.02, "share {share}");
    }

    #[test]
    fn with_profiles_overrides_and_falls_back() {
        // Force hurricanes entirely into January.
        let mut weights = [0.0; 12];
        weights[0] = 1.0;
        let sampler =
            TimestampSampler::with_profiles(&[(Peril::Hurricane, SeasonalProfile::new(weights))]);
        let mut rng = RngFactory::new(11).stream(0);
        for _ in 0..100 {
            let t = sampler.sample(Peril::Hurricane, &mut rng);
            assert!(t < 31.0);
        }
        // Other perils fall back to uniform and can land anywhere.
        let t = sampler.sample(Peril::Earthquake, &mut rng);
        assert!((0.0..DAYS_IN_YEAR).contains(&t));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_panics() {
        SeasonalProfile::new([-1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
    }
}
