//! Property tests for the trace span tree and histogram exemplars: the
//! packed-start child layout always nests inside its parent, child
//! durations never sum past the parent's, re-anchoring via `shifted`
//! preserves every duration, and an exemplar always lands in exactly the
//! bucket its value was recorded into.

use proptest::collection::vec;
use proptest::prelude::*;

use catrisk_telemetry::{Histogram, TraceRecord, TraceSpan};

/// Builds a parent whose children are packed back to back with
/// [`TraceSpan::next_child_start`], the way the server builds real
/// traces.
fn packed_parent(start: u64, total: u64, durations: &[u64]) -> TraceSpan {
    let mut parent = TraceSpan::new("parent", start, total);
    for (i, &d) in durations.iter().enumerate() {
        let child_start = parent.next_child_start();
        parent.push_child(TraceSpan::new(&format!("child{i}"), child_start, d));
    }
    parent
}

proptest! {
    #[test]
    fn packed_children_nest_within_the_parent(
        durations in vec(0u64..10_000, 0..20),
        slack in 0u64..1_000,
        start in 0u64..1_000_000,
    ) {
        let children_total: u64 = durations.iter().sum();
        let parent = packed_parent(start, children_total + slack, &durations);

        // Durations: children never sum past the parent.
        prop_assert_eq!(parent.child_micros(), children_total);
        prop_assert!(parent.child_micros() <= parent.micros);

        // Intervals: each child starts where the previous ended, and the
        // last child's end never leaves the parent's interval.
        let mut cursor = start;
        for child in &parent.children {
            prop_assert_eq!(child.start_micros, cursor);
            cursor += child.micros;
        }
        prop_assert!(cursor <= start + parent.micros);
        prop_assert_eq!(parent.next_child_start(), cursor);
    }

    #[test]
    fn shifted_preserves_durations_and_packing(
        durations in vec(0u64..10_000, 0..12),
        start in 0u64..100_000,
        offset in 0u64..1_000_000,
    ) {
        let total: u64 = durations.iter().sum();
        let parent = packed_parent(start, total, &durations);
        let shifted = parent.shifted(offset);

        prop_assert_eq!(shifted.start_micros, start + offset);
        prop_assert_eq!(shifted.micros, parent.micros);
        prop_assert_eq!(shifted.child_micros(), parent.child_micros());
        prop_assert_eq!(shifted.span_count(), parent.span_count());
        for (a, b) in shifted.children.iter().zip(&parent.children) {
            prop_assert_eq!(a.start_micros, b.start_micros + offset);
            prop_assert_eq!(a.micros, b.micros);
        }
    }

    #[test]
    fn exemplar_lands_in_the_value_bucket(
        value in 0u64..u64::MAX / 2,
        id in 1u64..u64::MAX,
    ) {
        let h = Histogram::new();
        h.record_with_exemplar(value, id);
        let snap = h.snapshot();
        // One value recorded: exactly one occupied bucket, whose exemplar
        // is exactly the id that stamped it.
        prop_assert_eq!(snap.buckets.len(), 1);
        let (bucket, count) = snap.buckets[0];
        prop_assert_eq!(count, 1);
        prop_assert_eq!(snap.exemplars.clone(), vec![(bucket, id)]);
        prop_assert_eq!(snap.exemplar(bucket), Some(id));
    }

    #[test]
    fn trace_records_survive_json_round_trips(
        durations in vec(0u64..10_000, 0..10),
        id in 1u64..u64::MAX,
    ) {
        let total: u64 = durations.iter().sum();
        let mut root = packed_parent(0, total, &durations);
        root = root.attr("batch_size", durations.len() as u64);
        let record = TraceRecord { id, total_micros: total, root };
        let json = serde_json::to_string(&record).unwrap();
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, record);
    }
}
