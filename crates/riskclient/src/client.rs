//! A typed client for one serving endpoint: a retrying connect, line
//! framing, and one method per protocol command.

use std::io::{BufRead, BufReader, BufWriter, Lines, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use catrisk_telemetry::{EventRecord, MetricsSnapshot, TraceRecord};

use crate::wire::{StatsSnapshot, WireReply};

/// What went wrong talking to a server.
///
/// Only [`ClientError::Transport`] means the *connection* is unusable
/// (refused, reset, timed out, EOF mid-reply) — the signal a routing
/// layer fails over on.  A reply that arrives but carries `ok=false` is
/// **not** an error at this level: the server answered, and the typed
/// error payload (overloaded, parse, ...) is the caller's to interpret.
#[derive(Debug)]
pub enum ClientError {
    /// The connection could not be established, died mid-exchange, or
    /// never produced a reply line.
    Transport(std::io::Error),
    /// A reply line arrived but was not valid reply JSON.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(err) => write!(f, "transport error: {err}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Transport(err) => Some(err),
            ClientError::Protocol(_) => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(err: std::io::Error) -> Self {
        ClientError::Transport(err)
    }
}

/// Result alias for client operations.
pub type Result<T> = std::result::Result<T, ClientError>;

/// Connection knobs shared by [`Client`] and
/// [`RoutedClient`](crate::RoutedClient).
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// How long [`Client::connect`] keeps retrying a refused connect
    /// (100 ms between attempts) before giving up — covers the race
    /// against a just-spawned server that has not bound yet.
    pub connect_timeout: Duration,
    /// Per-reply read timeout; `None` blocks forever.
    pub read_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            read_timeout: Some(Duration::from_secs(30)),
        }
    }
}

impl ClientConfig {
    /// A config with the given connect timeout and the default read
    /// timeout.
    pub fn with_connect_timeout(timeout: Duration) -> Self {
        Self {
            connect_timeout: timeout,
            ..Self::default()
        }
    }
}

/// One persistent connection to a serving endpoint.
///
/// The protocol is strictly request/reply on a single line each way, so
/// the client owns a buffered writer and a line iterator over the same
/// socket and exposes [`Client::round_trip`] plus one typed method per
/// command.
#[derive(Debug)]
pub struct Client {
    addr: String,
    writer: BufWriter<TcpStream>,
    lines: Lines<BufReader<TcpStream>>,
}

impl Client {
    /// Connects to `addr`, retrying refused connects every 100 ms until
    /// the config's connect timeout elapses (a freshly spawned server
    /// needs a beat to bind).
    pub fn connect(addr: &str, config: ClientConfig) -> Result<Client> {
        let deadline = Instant::now() + config.connect_timeout;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(stream) => break stream,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(err) => return Err(ClientError::Transport(err)),
            }
        };
        stream.set_read_timeout(config.read_timeout)?;
        let writer = BufWriter::new(stream.try_clone()?);
        let lines = BufReader::new(stream).lines();
        Ok(Client {
            addr: addr.to_string(),
            writer,
            lines,
        })
    }

    /// The address this client connected to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Sends one request line and reads the one reply line it produces.
    pub fn round_trip(&mut self, line: &str) -> Result<WireReply> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        match self.lines.next() {
            Some(Ok(reply)) => WireReply::from_line(&reply).map_err(ClientError::Protocol),
            Some(Err(err)) => Err(ClientError::Transport(err)),
            None => Err(ClientError::Transport(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("connection to {} closed before a reply", self.addr),
            ))),
        }
    }

    /// Liveness probe: sends `ping`, succeeds on any parseable reply of
    /// kind `pong`.
    pub fn ping(&mut self) -> Result<()> {
        let reply = self.round_trip("ping")?;
        if reply.kind == "pong" {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "ping answered with kind `{}`",
                reply.kind
            )))
        }
    }

    /// Submits a query line (`[trace] select ...`) and returns the
    /// reply — which may be a well-formed `ok=false` error reply
    /// (overloaded, parse); only transport failures are `Err`.
    pub fn query(&mut self, line: &str) -> Result<WireReply> {
        self.round_trip(line)
    }

    /// Fetches the server-counters snapshot.
    pub fn stats(&mut self) -> Result<StatsSnapshot> {
        self.round_trip("stats")?
            .stats
            .ok_or_else(|| ClientError::Protocol("the reply carried no stats".to_string()))
    }

    /// Fetches the full metric snapshot (counters, gauges, histograms).
    pub fn metrics(&mut self) -> Result<MetricsSnapshot> {
        self.round_trip("metrics")?
            .metrics
            .ok_or_else(|| ClientError::Protocol("the reply carried no metrics".to_string()))
    }

    /// Dumps the flight recorder.
    pub fn recorder(&mut self) -> Result<Vec<EventRecord>> {
        self.round_trip("recorder")?
            .recorder
            .ok_or_else(|| ClientError::Protocol("the reply carried no recorder dump".to_string()))
    }

    /// Dumps flight-recorder events with `seq >= since` (incremental
    /// scrape).
    pub fn recorder_since(&mut self, since: u64) -> Result<Vec<EventRecord>> {
        self.round_trip(&format!("recorder since {since}"))?
            .recorder
            .ok_or_else(|| ClientError::Protocol("the reply carried no recorder dump".to_string()))
    }

    /// Looks up one retained trace by id.  The reply distinguishes
    /// retained / evicted / never-issued, so it is returned whole.
    pub fn trace(&mut self, id: u64) -> Result<WireReply> {
        self.round_trip(&format!("trace {id}"))
    }

    /// The `n` slowest retained traces.
    pub fn slowest_traces(&mut self, n: usize) -> Result<Vec<TraceRecord>> {
        self.round_trip(&format!("trace slowest {n}"))?
            .traces
            .ok_or_else(|| ClientError::Protocol("the reply carried no traces".to_string()))
    }

    /// Sends `quit`, closing this connection server-side (the server
    /// keeps running).
    pub fn quit(&mut self) -> Result<WireReply> {
        self.round_trip("quit")
    }

    /// Sends `shutdown`: the server acknowledges, then drains and stops.
    pub fn shutdown(&mut self) -> Result<WireReply> {
        self.round_trip("shutdown")
    }
}

/// One request/reply exchange on a fresh connection — the idiom for
/// one-shot commands (a stats scrape, a shutdown) where holding a
/// connection open buys nothing.
pub fn round_trip(addr: &str, config: ClientConfig, line: &str) -> Result<WireReply> {
    Client::connect(addr, config)?.round_trip(line)
}
