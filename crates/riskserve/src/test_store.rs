//! Shared test fixtures: a random in-memory store and a mixed query batch.

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::prelude::*;
use catrisk_simkit::rng::RngFactory;

/// A store of `segments` random YLT segments over `trials` trials, with
/// all four dimensions populated.
pub fn random_store(trials: usize, segments: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed);
    let mut store = ResultStore::new(trials);
    for s in 0..segments {
        let mut rng = factory.stream(s as u64);
        let outcomes: Vec<TrialOutcome> = (0..trials)
            .map(|_| {
                let year = if rng.uniform() < 0.3 {
                    rng.uniform() * 1.0e6
                } else {
                    0.0
                };
                TrialOutcome {
                    year_loss: year,
                    max_occurrence_loss: year * rng.uniform(),
                    nonzero_events: u32::from(year > 0.0),
                }
            })
            .collect();
        let meta = SegmentMeta::new(
            LayerId((s / 4) as u32),
            Peril::ALL[s % Peril::ALL.len()],
            Region::ALL[(s / 2) % Region::ALL.len()],
            LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
        );
        store
            .ingest(&YearLossTable::new(LayerId(s as u32), outcomes), meta)
            .unwrap();
    }
    store
}

/// A small mixed batch: several scan specs, several metric sets.
pub fn sample_queries() -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .with_perils([Peril::Hurricane, Peril::Flood])
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Var { level: 0.99 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 8,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .loss_at_least(1.0e5)
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .aggregate(Aggregate::Pml {
                return_period: 100.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap(),
    ]
}
