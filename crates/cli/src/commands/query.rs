//! `catrisk query` — ad-hoc aggregate risk queries over a dimension-sliced
//! synthetic world (the QuPARA-style serving path).
//!
//! The command builds the synthetic world, slices each exposure book's ELT
//! by peril into tagged segments, runs the chosen engine once, ingests the
//! Year Loss Tables into the columnar store, and answers the query given by
//! `--select` / `--where` / `--group-by`.

use std::sync::Arc;

use catrisk_engine::chunked::ChunkedEngine;
use catrisk_engine::parallel::ParallelEngine;
use catrisk_engine::sequential::SequentialEngine;
use catrisk_engine::streaming::StreamingEngine;
use catrisk_engine::ylt::AnalysisOutput;
use catrisk_finterms::terms::LayerTerms;
use catrisk_riskquery::{
    execute, parse_group_by, parse_select, parse_where, LineOfBusiness, QueryBuilder,
    SegmentedBook, SegmentedInput,
};
use catrisk_simkit::timing::Stopwatch;

use super::world::{World, WorldConfig};
use super::Options;

/// Detailed usage of the query command, shown by `catrisk query --help`.
pub const QUERY_HELP: &str = "usage: catrisk query [options]

Builds a synthetic world, slices it into (book, peril) segments tagged with
peril / region / line of business / layer, runs the aggregate risk engine,
and answers an ad-hoc aggregate query over the resulting columnar store.

options:
  --trials N       number of YET trials (default 20000)
  --locations N    locations per exposure book (default 2000)
  --events N       catalog size (default 50000)
  --seed S         master random seed (default 2012)
  --engine E       sequential | parallel | chunked | streaming (default parallel)
  --select LIST    aggregates: mean, stddev, maxloss, attach, var(l), tvar(l),
                   pml(rp), opml(rp), aep(n), oep(n)      (default \"mean,tvar(0.99)\")
  --where EXPR     filter: space-separated dimension=value|value constraints
                   over peril, region, lob, layer, plus trial=start..end and
                   loss ranges loss>=x, loss<=x, loss=[min,max]
  --group-by LIST  comma-separated: layer, peril, region, lob
  --json           print the result as JSON instead of a table
  --profile        answer through an in-process traced server and print
                   the request's span-tree execution profile (queue,
                   refresh, cache lookup, scan with per-shard
                   attribution) to stderr alongside the result

examples:
  # TVaR and an aggregate EP curve of hurricane+flood losses, by region:
  catrisk query --trials 50000 \\
      --select \"tvar(0.99),aep(10)\" --where \"peril=HU|FL\" --group-by region

  # Occurrence PML at 250 years per line of business over the first 10k trials:
  catrisk query --select \"opml(250),mean\" --where \"trial=0..10000\" --group-by lob";

/// Runs the query command.
pub fn run(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{QUERY_HELP}");
        return Ok(());
    }
    let config = WorldConfig {
        seed: options.get("seed", 2012u64)?,
        num_events: options.get("events", 50_000u32)?,
        locations: options.get("locations", 2_000usize)?,
        trials: options.get("trials", 20_000usize)?,
    };
    let engine = options.get("engine", "parallel".to_string())?;
    let select = options.get("select", "mean,tvar(0.99)".to_string())?;
    let where_clause = options.get("where", String::new())?;
    let group_by = options.get("group-by", String::new())?;
    let as_json = options.has_flag("json");

    // Assemble the query up front so malformed input fails fast, before the
    // expensive world build.
    let query = build_query(&select, &where_clause, &group_by)?;
    if !ENGINES.contains(&engine.as_str()) {
        return Err(unknown_engine(&engine));
    }

    let segmented = build_segmented_world(&config)?;

    let sw = Stopwatch::start();
    let output = run_engine(&engine, &segmented)?;
    let store = segmented.ingest(&output).map_err(|e| e.to_string())?;
    eprintln!(
        "  {} engine produced {} YLTs, store holds {:.1} MB of loss columns  [{:.2}s]",
        engine,
        output.num_layers(),
        store.memory_bytes() as f64 / 1.0e6,
        sw.elapsed_secs()
    );

    let sw = Stopwatch::start();
    if options.has_flag("profile") {
        // The same execution path a server request takes, traced: the
        // profile is the real span taxonomy, not a re-implementation.
        let server = catrisk_riskserve::Server::new(
            Arc::new(store),
            catrisk_riskserve::ServerConfig {
                workers: 1,
                ..catrisk_riskserve::ServerConfig::default()
            },
        );
        let reply = server
            .submit_traced(query)
            .map_err(|e| e.to_string())?
            .wait()
            .map_err(|e| e.to_string())?;
        eprintln!("  query answered in {:.4}s\n", sw.elapsed_secs());
        let trace = reply
            .trace
            .as_ref()
            .expect("a traced submit yields a profile");
        eprintln!("{trace}\n");
        return print_result(&reply.result, as_json);
    }
    let result = execute(&store, &query).map_err(|e| e.to_string())?;
    eprintln!("  query answered in {:.4}s\n", sw.elapsed_secs());

    print_result(&result, as_json)
}

/// Prints a query result as a table, or as JSON under `--json` (shared by
/// `query` and `store query`).
pub(crate) fn print_result(
    result: &catrisk_riskquery::QueryResult,
    as_json: bool,
) -> Result<(), String> {
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(result).map_err(|e| e.to_string())?
        );
    } else {
        println!("{result}");
    }
    Ok(())
}

/// Parses the three query clauses into a validated
/// [`Query`](catrisk_riskquery::Query) (shared by `query` and
/// `store query`).
pub(crate) fn build_query(
    select: &str,
    where_clause: &str,
    group_by: &str,
) -> Result<catrisk_riskquery::Query, String> {
    let mut builder = QueryBuilder::new();
    for aggregate in parse_select(select).map_err(|e| e.to_string())? {
        builder = builder.aggregate(aggregate);
    }
    if !where_clause.is_empty() {
        let filter = parse_where(where_clause).map_err(|e| e.to_string())?;
        if let Some(perils) = filter.perils {
            builder = builder.with_perils(perils);
        }
        if let Some(regions) = filter.regions {
            builder = builder.in_regions(regions);
        }
        if let Some(lobs) = filter.lobs {
            builder = builder.for_lobs(lobs);
        }
        if let Some(layers) = filter.layers {
            builder = builder.in_layers(layers);
        }
        if let Some((start, end)) = filter.trials {
            builder = builder.trials(start..end);
        }
        if let Some(range) = filter.loss {
            builder = builder.loss_in(range.min, range.max);
        }
    }
    if !group_by.is_empty() {
        for dim in parse_group_by(group_by).map_err(|e| e.to_string())? {
            builder = builder.group_by(dim);
        }
    }
    builder.build().map_err(|e| e.to_string())
}

/// Builds the synthetic world and slices it into tagged `(book, peril)`
/// segments (shared by `query` and `store write`).  Lines of business are
/// assigned round-robin so the lob dimension is populated.
pub(crate) fn build_segmented_world(config: &WorldConfig) -> Result<SegmentedInput, String> {
    eprintln!(
        "building synthetic world: {} events, {} locations/book, {} trials ...",
        config.num_events, config.locations, config.trials
    );
    let sw = Stopwatch::start();
    let world = World::build(config)?;

    let books: Vec<SegmentedBook> = world
        .elts
        .iter()
        .zip(&world.books)
        .enumerate()
        .map(|(i, (elt, (_, region)))| {
            let scale = (elt.total_mean_loss() / 1_000.0).max(1.0);
            Ok::<SegmentedBook, String>(SegmentedBook {
                pairs: elt.loss_pairs(),
                financial_terms: elt.financial_terms,
                layer_terms: LayerTerms::new(0.05 * scale, 5.0 * scale, 0.0, 20.0 * scale)
                    .map_err(|e| e.to_string())?,
                region: *region,
                lob: LineOfBusiness::ALL[i % LineOfBusiness::ALL.len()],
            })
        })
        .collect::<Result<_, _>>()?;

    let segmented = SegmentedInput::build(Arc::clone(&world.yet), &world.catalog, &books)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "  {} segments over {} books  [{:.2}s]",
        segmented.metas.len(),
        books.len(),
        sw.elapsed_secs()
    );
    Ok(segmented)
}

/// Engine names accepted by `--engine`, the single source for both the
/// fail-fast check and `run_engine`'s dispatch error.
pub(crate) const ENGINES: [&str; 4] = ["sequential", "parallel", "chunked", "streaming"];

pub(crate) fn unknown_engine(name: &str) -> String {
    format!("unknown engine `{name}` (expected {})", ENGINES.join(", "))
}

pub(crate) fn run_engine(
    engine: &str,
    segmented: &SegmentedInput,
) -> Result<AnalysisOutput, String> {
    match engine {
        "sequential" => Ok(SequentialEngine::new().run(&segmented.input)),
        "parallel" => Ok(ParallelEngine::new().run(&segmented.input)),
        "chunked" => Ok(ChunkedEngine::default().run(&segmented.input)),
        "streaming" => {
            // Reassemble the streamed blocks into a full output.
            let mut outcomes: Vec<Vec<catrisk_engine::ylt::TrialOutcome>> =
                vec![Vec::new(); segmented.input.layers().len()];
            StreamingEngine::new(8_192).run_with(&segmented.input, |_, _, block| {
                for (i, ylt) in block.layers().iter().enumerate() {
                    outcomes[i].extend_from_slice(ylt.outcomes());
                }
            });
            Ok(AnalysisOutput::new(
                segmented
                    .input
                    .layers()
                    .iter()
                    .zip(outcomes)
                    .map(|(layer, outcomes)| {
                        catrisk_engine::ylt::YearLossTable::new(layer.id, outcomes)
                    })
                    .collect(),
            ))
        }
        other => Err(unknown_engine(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn query_command_runs_small() {
        let options = Options::parse(&strings(&[
            "--trials",
            "150",
            "--locations",
            "120",
            "--events",
            "2500",
            "--seed",
            "5",
            "--select",
            "mean,tvar(0.99),aep(4)",
            "--where",
            "peril=HU|FL|EQ",
            "--group-by",
            "region",
        ]))
        .unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn query_command_group_by_lob_and_json() {
        let options = Options::parse(&strings(&[
            "--trials",
            "100",
            "--locations",
            "100",
            "--events",
            "2000",
            "--seed",
            "5",
            "--select",
            "opml(50),mean",
            "--where",
            "trial=0..80",
            "--group-by",
            "lob",
            "--engine",
            "sequential",
            "--json",
        ]))
        .unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn query_command_profile_prints_a_trace() {
        let options = Options::parse(&strings(&[
            "--trials",
            "100",
            "--locations",
            "100",
            "--events",
            "2000",
            "--seed",
            "5",
            "--select",
            "mean",
            "--group-by",
            "peril",
            "--profile",
        ]))
        .unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn query_command_rejects_bad_input_without_panicking() {
        for args in [
            vec!["--select", "frobnicate"],
            vec!["--select", "var(nope)"],
            vec!["--where", "peril=Atlantis"],
            vec!["--where", "trial=9..3"],
            vec!["--group-by", "continent"],
            vec![
                "--engine",
                "quantum",
                "--trials",
                "50",
                "--locations",
                "50",
                "--events",
                "1000",
            ],
        ] {
            let options = Options::parse(&strings(&args)).unwrap();
            assert!(run(&options).is_err(), "{args:?} must fail gracefully");
        }
    }

    #[test]
    fn query_help_flag_prints() {
        let options = Options::parse(&strings(&["--help"])).unwrap();
        run(&options).unwrap();
    }
}
