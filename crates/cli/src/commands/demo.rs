//! `catrisk demo` — end-to-end synthetic pipeline.

use std::sync::Arc;

use catrisk_finterms::treaty::Treaty;
use catrisk_lookup::LookupKind;
use catrisk_metrics::report::RiskReport;
use catrisk_portfolio::contract::{Contract, ContractId};
use catrisk_portfolio::portfolio::{Portfolio, PortfolioAnalysis};
use catrisk_portfolio::pricing::{price_ylt, PricingConfig};
use catrisk_simkit::timing::Stopwatch;

use super::world::{World, WorldConfig};
use super::Options;

/// Runs the demo pipeline.
pub fn run(options: &Options) -> Result<(), String> {
    let config = WorldConfig {
        seed: options.get("seed", 2012u64)?,
        num_events: options.get("events", 50_000u32)?,
        locations: options.get("locations", 2_000usize)?,
        trials: options.get("trials", 20_000usize)?,
    };
    let as_json = options.has_flag("json");

    eprintln!(
        "building synthetic world: {} events, {} locations/book, {} trials ...",
        config.num_events, config.locations, config.trials
    );
    let sw = Stopwatch::start();
    let world = World::build(&config)?;
    eprintln!(
        "  catalog {} events, {} ELTs ({} records total), YET {} trials x {:.0} events avg  [{:.2}s]",
        world.catalog.len(),
        world.elts.len(),
        world.elts.iter().map(|e| e.len()).sum::<usize>(),
        world.yet.num_trials(),
        world.yet.avg_events_per_trial(),
        sw.elapsed_secs()
    );

    // A small book of contracts over the synthetic ELTs.
    let scale = world.elts.iter().map(|e| e.max_loss()).fold(0.0, f64::max);
    let mut portfolio = Portfolio::new("demo underwriting year");
    portfolio.add(Contract::new(
        ContractId(0),
        "gulf wind cat xl",
        Treaty::cat_xl(0.05 * scale, 0.4 * scale),
        vec![0],
    ));
    portfolio.add(Contract::new(
        ContractId(1),
        "west coast quake cat xl",
        Treaty::cat_xl(0.08 * scale, 0.5 * scale),
        vec![1],
    ));
    portfolio.add(Contract::new(
        ContractId(2),
        "europe stop loss",
        Treaty::AggregateXl {
            retention: 0.1 * scale,
            limit: 0.6 * scale,
        },
        vec![2],
    ));
    portfolio.add(Contract::new(
        ContractId(3),
        "worldwide combined",
        Treaty::Combined {
            occ_retention: 0.05 * scale,
            occ_limit: 0.3 * scale,
            agg_retention: 0.05 * scale,
            agg_limit: 0.9 * scale,
        },
        vec![0, 1, 2, 3],
    ));

    let sw = Stopwatch::start();
    let analysis = PortfolioAnalysis::build(
        portfolio,
        &world.elts,
        Arc::clone(&world.yet),
        LookupKind::Direct,
    )
    .map_err(|e| e.to_string())?;
    let result = analysis.run();
    eprintln!(
        "aggregate analysis of {} contracts completed in {:.2}s",
        result.ylts().len(),
        sw.elapsed_secs()
    );

    let pricing = PricingConfig::default();
    for (i, contract) in result.portfolio.contracts.iter().enumerate() {
        let ylt = result.contract_ylt(i);
        let quote = price_ylt(ylt, contract.layer_terms().max_annual_recovery(), &pricing);
        println!(
            "\n=== {} ({}) ===",
            contract.name,
            contract.treaty.describe()
        );
        println!("{}", result.contract_report(i).to_text());
        println!(
            "  technical premium: {:>15.2}   rate on line: {:.4}",
            quote.gross_premium, quote.rate_on_line
        );
    }

    let portfolio_report = result.portfolio_report();
    if as_json {
        println!(
            "{}",
            serde_json::to_string_pretty(&portfolio_report).map_err(|e| e.to_string())?
        );
    } else {
        println!("\n=== portfolio ===");
        println!("{}", portfolio_report.to_text());
    }
    print_convergence(&portfolio_report);
    Ok(())
}

fn print_convergence(report: &RiskReport) {
    println!(
        "portfolio expected annual loss {:.2} over {} trials",
        report.expected_loss, report.trials
    );
}
