//! The analytical timing model.
//!
//! The simulated execution time of a kernel launch is derived from the
//! recorded memory traffic and the device specification:
//!
//! * **compute time** — arithmetic operations spread across every scalar
//!   lane of the device, derated by occupancy;
//! * **global memory time** — the larger of
//!   * the bandwidth-bound time: every random access moves one full
//!     transaction (an L1 line), and the achievable fraction of peak
//!     bandwidth grows with occupancy (an underpopulated device cannot keep
//!     the memory system saturated), and
//!   * the latency-bound time: accesses × latency ÷ the number of requests
//!     the resident threads can keep in flight (their count × the kernel's
//!     per-thread memory-level parallelism, capped by the device);
//! * **shared memory time** — one access per lane per cycle per SM;
//! * **constant memory time** — cached broadcast reads;
//! * **block overhead** — a fixed scheduling cost per launched block.
//!
//! This is deliberately a first-order model, not a cycle-accurate simulator,
//! but it captures the effects the paper's GPU results turn on: random
//! global accesses dominate, occupancy determines how much of the memory
//! system can be kept busy, staging intermediates in shared memory removes
//! global traffic, and overflowing the shared budget pushes that traffic
//! back to global memory.

use serde::{Deserialize, Serialize};
use std::time::Duration;

use crate::device::DeviceSpec;
use crate::memory::MemoryCounters;
use crate::occupancy::Occupancy;

/// Breakdown of the simulated execution time of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Time spent on arithmetic.
    pub compute_seconds: f64,
    /// Time global memory traffic takes (max of bandwidth- and latency-bound).
    pub global_memory_seconds: f64,
    /// Time spent on shared-memory accesses.
    pub shared_memory_seconds: f64,
    /// Time spent on constant-memory accesses.
    pub constant_memory_seconds: f64,
    /// Fixed per-block scheduling overhead.
    pub block_overhead_seconds: f64,
    /// Total simulated time in seconds.
    pub total_seconds: f64,
}

impl TimingBreakdown {
    /// Total simulated time as a [`Duration`].
    pub fn total(&self) -> Duration {
        Duration::from_secs_f64(self.total_seconds)
    }
}

/// Computes the simulated execution time of a launch.
///
/// `memory_parallelism` is the kernel's average number of independent global
/// loads each thread can keep in flight (1.0 for a kernel whose loads are
/// serialised by read-modify-write dependences; the chunked kernel exposes
/// roughly one per staged chunk element).
pub fn simulate_time(
    device: &DeviceSpec,
    counters: &MemoryCounters,
    occupancy: &Occupancy,
    blocks: usize,
    memory_parallelism: f64,
) -> TimingBreakdown {
    let clock = device.clock_hz();
    let sms = f64::from(device.num_sms);
    let occ = occupancy.occupancy.clamp(1e-3, 1.0);

    // Compute: one op per lane per cycle across the whole device, derated by
    // occupancy (an underpopulated SM leaves lanes idle).
    let effective_lanes = f64::from(device.total_lanes()) * occ.max(0.25);
    let compute_seconds = counters.compute_ops as f64 / effective_lanes / clock;

    // Global memory, bandwidth bound: every random access moves one full
    // transaction; achievable bandwidth grows with occupancy.
    let transactions = counters.global_accesses() as f64;
    let bytes_moved = transactions * f64::from(device.transaction_bytes);
    let bandwidth_factor = 0.7 + 0.3 * occ;
    let bandwidth_seconds = bytes_moved / (device.global_bandwidth_gbps * 1.0e9 * bandwidth_factor);

    // Global memory, latency bound: the resident threads of each SM can keep
    // `threads × MLP` requests in flight, capped by the device.
    let in_flight_per_sm = (f64::from(occupancy.threads_per_sm) * memory_parallelism.max(1.0))
        .min(f64::from(device.max_outstanding_requests))
        .max(1.0);
    let latency_seconds = counters.global_reads as f64 * device.global_latency_cycles
        / clock
        / (in_flight_per_sm * sms);

    let global_memory_seconds = bandwidth_seconds.max(latency_seconds);

    // Shared memory: each SM services one access per lane per cycle.
    let shared_rate = f64::from(device.lanes_per_sm) * sms * clock;
    let shared_memory_seconds = counters.shared_accesses as f64 / shared_rate;

    // Constant memory: broadcast per warp, effectively one cycle per access
    // per SM once cached.
    let constant_memory_seconds =
        counters.constant_accesses as f64 / (f64::from(device.warp_size) * sms * clock);

    // Fixed per-block scheduling overhead, spread across SMs.
    let block_overhead_seconds = blocks as f64 * device.block_overhead_cycles / clock / sms;

    let total_seconds = compute_seconds
        + global_memory_seconds
        + shared_memory_seconds
        + constant_memory_seconds
        + block_overhead_seconds;

    TimingBreakdown {
        compute_seconds,
        global_memory_seconds,
        shared_memory_seconds,
        constant_memory_seconds,
        block_overhead_seconds,
        total_seconds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::occupancy::occupancy;

    fn device() -> DeviceSpec {
        DeviceSpec::tesla_c2075()
    }

    fn counters_with(global_reads: u64, shared: u64, compute: u64) -> MemoryCounters {
        let mut c = MemoryCounters::new();
        c.global_reads = global_reads;
        c.global_read_bytes = 8 * global_reads;
        c.shared_accesses = shared;
        c.shared_bytes = 8 * shared;
        c.compute_ops = compute;
        c
    }

    #[test]
    fn higher_occupancy_is_faster() {
        let d = device();
        let c = counters_with(100_000_000, 0, 0);
        let low = occupancy(&d, 128, 0); // 67% occupancy
        let high = occupancy(&d, 256, 0); // 100% occupancy
        let t_low = simulate_time(&d, &c, &low, 1000, 1.0);
        let t_high = simulate_time(&d, &c, &high, 500, 1.0);
        assert!(
            t_high.global_memory_seconds < t_low.global_memory_seconds,
            "{} vs {}",
            t_high.global_memory_seconds,
            t_low.global_memory_seconds
        );
        assert!(t_high.total_seconds < t_low.total_seconds);
    }

    #[test]
    fn memory_parallelism_helps_latency_bound_kernels() {
        let d = device();
        // Low occupancy launch: latency bound unless MLP compensates.
        let occ = occupancy(&d, 64, 16 * 1024);
        let c = counters_with(50_000_000, 0, 0);
        let serial = simulate_time(&d, &c, &occ, 1000, 1.0);
        let pipelined = simulate_time(&d, &c, &occ, 1000, 8.0);
        assert!(pipelined.global_memory_seconds <= serial.global_memory_seconds);
    }

    #[test]
    fn shared_memory_much_cheaper_than_global() {
        let d = device();
        let occ = occupancy(&d, 256, 0);
        let global_heavy = counters_with(10_000_000, 0, 0);
        let shared_heavy = counters_with(0, 10_000_000, 0);
        let tg = simulate_time(&d, &global_heavy, &occ, 1000, 1.0);
        let ts = simulate_time(&d, &shared_heavy, &occ, 1000, 1.0);
        assert!(
            tg.total_seconds > 5.0 * ts.total_seconds,
            "global {} vs shared {}",
            tg.total_seconds,
            ts.total_seconds
        );
    }

    #[test]
    fn time_scales_with_traffic() {
        let d = device();
        let occ = occupancy(&d, 256, 0);
        let small = simulate_time(&d, &counters_with(1_000_000, 0, 1_000_000), &occ, 100, 1.0);
        let large = simulate_time(
            &d,
            &counters_with(10_000_000, 0, 10_000_000),
            &occ,
            100,
            1.0,
        );
        let ratio = large.total_seconds / small.total_seconds;
        assert!((5.0..15.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let d = device();
        let occ = occupancy(&d, 192, 1024);
        let mut c = counters_with(1_000, 5_000, 20_000);
        c.constant_accesses = 17;
        c.global_writes = 500;
        c.global_write_bytes = 4_000;
        let t = simulate_time(&d, &c, &occ, 10, 2.0);
        let sum = t.compute_seconds
            + t.global_memory_seconds
            + t.shared_memory_seconds
            + t.constant_memory_seconds
            + t.block_overhead_seconds;
        assert!((sum - t.total_seconds).abs() < 1e-15);
        assert!(t.total().as_secs_f64() > 0.0);
    }

    #[test]
    fn paper_scale_magnitude_is_tens_of_seconds() {
        // The paper's standard workload performs ~15 billion ELT lookups per
        // layer plus intermediate traffic; the basic kernel should land in
        // the tens of seconds on the simulated C2075 (paper: 38.47 s).
        let d = device();
        let occ = occupancy(&d, 256, 0);
        let mut c = MemoryCounters::new();
        c.global_reads = 37_000_000_000;
        c.global_read_bytes = 8 * c.global_reads;
        c.global_writes = 21_000_000_000;
        c.global_write_bytes = 8 * c.global_writes;
        c.compute_ops = 100_000_000_000;
        let t = simulate_time(&d, &c, &occ, 3907, 1.0);
        assert!(
            (20.0..90.0).contains(&t.total_seconds),
            "simulated paper-scale time {} s",
            t.total_seconds
        );
    }
}
