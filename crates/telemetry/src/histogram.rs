//! Log-bucketed latency histograms with lock-free recording.
//!
//! The bucketing is HDR-style: each power-of-two range `[2^h, 2^(h+1))` is
//! split into `2^SUB_BITS` equal sub-buckets, so the width of the bucket
//! holding a value `v` is at most `v / 2^SUB_BITS`.  With [`SUB_BITS`]` = 5`
//! that bounds the relative quantile error at `1/32` (3.125%); values below
//! `2^(SUB_BITS + 1) = 64` are recorded exactly.  The whole `u64` range maps
//! into [`NUM_BUCKETS`]` = 1920` fixed buckets, so recording is a handful of
//! relaxed atomic adds — no allocation, no locks, no sorting — and two
//! histograms merge by bucket-wise addition.
//!
//! See `docs/OBSERVABILITY.md` for the bucketing math spelled out.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Number of sub-bucket bits: every power-of-two range is split into
/// `2^SUB_BITS` equal-width buckets.
pub const SUB_BITS: u32 = 5;

const SUB: u64 = 1 << SUB_BITS;

/// Total number of buckets covering the full `u64` range.
pub const NUM_BUCKETS: usize = (64 - SUB_BITS as usize + 1) << SUB_BITS;

/// Index of the bucket holding `value`.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB {
        value as usize
    } else {
        let h = 63 - value.leading_zeros();
        let sub = ((value >> (h - SUB_BITS)) & (SUB - 1)) as usize;
        (((h - SUB_BITS + 1) as usize) << SUB_BITS) + sub
    }
}

/// Inclusive `(low, high)` value range of the bucket at `index`.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < NUM_BUCKETS, "bucket index {index} out of range");
    if index < SUB as usize {
        (index as u64, index as u64)
    } else {
        let h = (index >> SUB_BITS) as u32 - 1 + SUB_BITS;
        let sub = index as u64 & (SUB - 1);
        let low = (SUB + sub) << (h - SUB_BITS);
        let width = 1u64 << (h - SUB_BITS);
        (low, low + (width - 1))
    }
}

/// A fixed-size, mergeable, lock-free latency histogram.
///
/// `record` is wait-free (four relaxed atomic RMWs) and safe to call from
/// any number of threads; no count is ever lost.  Reading happens through
/// [`Histogram::snapshot`], which copies the buckets into a plain
/// [`HistogramSnapshot`].  A snapshot taken while writers are active may be
/// momentarily inconsistent between `count` and the bucket sum (each is
/// individually atomic); quiesce writers when exact consistency matters.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    /// Last trace id recorded into each bucket (0 = none) — the exemplar
    /// link from "this bucket is hot" to one concrete trace.
    exemplars: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram (allocates the full fixed bucket array).
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(NUM_BUCKETS);
        buckets.resize_with(NUM_BUCKETS, AtomicU64::default);
        let mut exemplars = Vec::with_capacity(NUM_BUCKETS);
        exemplars.resize_with(NUM_BUCKETS, AtomicU64::default);
        Self {
            buckets,
            exemplars,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records one observation and stamps `trace_id` as the bucket's
    /// exemplar (one relaxed atomic store on top of [`Histogram::record`]).
    /// A `trace_id` of 0 means "untraced" and leaves the exemplar alone.
    pub fn record_with_exemplar(&self, value: u64, trace_id: u64) {
        self.record(value);
        if trace_id != 0 {
            self.exemplars[bucket_index(value)].store(trace_id, Ordering::Relaxed);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain, serializable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
            exemplars: self
                .exemplars
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    let id = e.load(Ordering::Relaxed);
                    (id > 0).then_some((i as u32, id))
                })
                .collect(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

/// A point-in-time copy of a [`Histogram`]: sparse `(bucket index, count)`
/// pairs plus count/sum/min/max.  This is what crosses the wire in the
/// `metrics` reply, what loadgen computes server-side percentiles from, and
/// the unit of merging.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Sparse non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Sparse bucket exemplars as `(index, trace id)`, ascending by index:
    /// the last traced request that landed in that bucket.  **Post-v1
    /// field**: absent on the wire from older servers, defaults to empty.
    #[serde(default)]
    pub exemplars: Vec<(u32, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean of the observed values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges `other` into `self` bucket-wise.  Merging is associative and
    /// commutative and loses no counts.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ca)), Some(&&(ib, cb))) => {
                    if ia == ib {
                        merged.push((ia, ca + cb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, ca));
                        a.next();
                    } else {
                        merged.push((ib, cb));
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    merged.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    merged.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        // Exemplars keep `self`'s id where both sides stamped the bucket
        // (either is a valid representative; preferring self keeps merging
        // idempotent), otherwise whichever side has one.
        let mut exemplars: Vec<(u32, u64)> =
            Vec::with_capacity(self.exemplars.len() + other.exemplars.len());
        let (mut a, mut b) = (
            self.exemplars.iter().peekable(),
            other.exemplars.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, ea)), Some(&&(ib, eb))) => {
                    if ia == ib {
                        exemplars.push((ia, ea));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        exemplars.push((ia, ea));
                        a.next();
                    } else {
                        exemplars.push((ib, eb));
                        b.next();
                    }
                }
                (Some(&&e), None) => {
                    exemplars.push(e);
                    a.next();
                }
                (None, Some(&&e)) => {
                    exemplars.push(e);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.exemplars = exemplars;
        self.sum += other.sum;
        self.min = match (self.count, other.count) {
            (0, _) => other.min,
            (_, 0) => self.min,
            _ => self.min.min(other.min),
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
    }

    /// The `p`-th percentile (0–100) by the nearest-rank method, reported as
    /// the upper bound of the bucket holding the rank.
    ///
    /// Guarantee: if `exact` is the nearest-rank percentile of the raw
    /// samples, then `exact <= estimate <= exact + exact / 32` — the
    /// estimate never undershoots and overshoots by at most 3.125%
    /// (`1 / 2^SUB_BITS`).  Values below 64 are reported exactly.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return bucket_bounds(index as usize).1.min(self.max);
            }
        }
        self.max
    }

    /// The exemplar trace id stamped on the bucket at `index`, if any.
    pub fn exemplar(&self, index: u32) -> Option<u64> {
        self.exemplars
            .binary_search_by_key(&index, |&(i, _)| i)
            .ok()
            .map(|pos| self.exemplars[pos].1)
    }

    /// Iterates every exemplar trace id in the snapshot.
    pub fn exemplar_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.exemplars.iter().map(|&(_, id)| id)
    }

    /// Iterates `(upper bound, cumulative count)` over the non-empty
    /// buckets, ascending — the shape Prometheus histogram exposition wants.
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().scan(0u64, |acc, &(index, count)| {
            *acc += count;
            Some((bucket_bounds(index as usize).1, *acc))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && v <= hi,
                "value {v} outside bucket {idx} [{lo}, {hi}]"
            );
        }
        for shift in 0..64u32 {
            for delta in [-1i64, 0, 1] {
                let v = (1u128 << shift) as i128 + delta as i128;
                if v < 0 || v > u64::MAX as i128 {
                    continue;
                }
                let v = v as u64;
                let idx = bucket_index(v);
                let (lo, hi) = bucket_bounds(idx);
                assert!(lo <= v && v <= hi);
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn buckets_are_contiguous() {
        let mut expected_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "gap before bucket {idx}");
            assert!(hi >= lo);
            if hi == u64::MAX {
                assert_eq!(idx, NUM_BUCKETS - 1);
                return;
            }
            expected_lo = hi + 1;
        }
        panic!("last bucket does not reach u64::MAX");
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 64);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 63);
        for p in [1.0f64, 25.0, 50.0, 99.0] {
            let exact = ((p / 100.0) * 64.0).ceil().max(1.0) as u64 - 1;
            assert_eq!(snap.percentile(p), exact, "p{p}");
        }
    }

    #[test]
    fn percentile_caps_at_observed_max() {
        let h = Histogram::new();
        h.record(1_000_000);
        let snap = h.snapshot();
        // A single sample: every percentile is exactly it, not its bucket's
        // upper bound.
        assert_eq!(snap.percentile(50.0), 1_000_000);
        assert_eq!(snap.percentile(100.0), 1_000_000);
    }

    #[test]
    fn merge_concatenates_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [3u64, 70, 70, 5000] {
            a.record(v);
        }
        for v in [70u64, 9_999_999] {
            b.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 6);
        assert_eq!(m.sum, 3 + 70 + 70 + 5000 + 70 + 9_999_999);
        assert_eq!(m.min, 3);
        assert_eq!(m.max, 9_999_999);
        assert_eq!(m.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 6);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
        assert_eq!(snap.percentile(99.0), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn exemplars_stamp_the_bucket_and_survive_snapshots() {
        let h = Histogram::new();
        h.record(500); // untraced sample in some other bucket
        h.record_with_exemplar(1_000_000, 42);
        h.record_with_exemplar(1_000_001, 43); // same bucket: last wins
        h.record_with_exemplar(7, 0); // id 0 = untraced, no stamp
        let snap = h.snapshot();
        assert_eq!(snap.count, 4);
        let bucket = bucket_index(1_000_000) as u32;
        assert_eq!(snap.exemplar(bucket), Some(43));
        assert_eq!(snap.exemplar(bucket_index(500) as u32), None);
        assert_eq!(snap.exemplar(bucket_index(7) as u32), None);
        assert_eq!(snap.exemplar_ids().collect::<Vec<_>>(), vec![43]);
    }

    #[test]
    fn merge_prefers_self_exemplars_and_keeps_counts_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record_with_exemplar(100, 1);
        b.record_with_exemplar(100, 2); // same bucket, different server
        b.record_with_exemplar(9_999, 3);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.exemplar(bucket_index(100) as u32), Some(1));
        assert_eq!(m.exemplar(bucket_index(9_999) as u32), Some(3));
        // Bucket counts are unaffected by exemplar bookkeeping.
        assert_eq!(m.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 3);
    }

    #[test]
    fn v1_snapshots_without_exemplars_still_parse() {
        let json = r#"{"buckets":[[3,1]],"count":1,"sum":3,"min":3,"max":3}"#;
        let snap: HistogramSnapshot = serde_json::from_str(json).expect("v1 parse");
        assert_eq!(snap.count, 1);
        assert!(snap.exemplars.is_empty());
    }
}
