//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy generating vectors whose length is drawn from `size` and whose
/// elements are drawn from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec`s of `element` values with a length in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::from_name("vec");
        let strat = vec(0u32..5, 2..7);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn nested_vec_of_tuples() {
        let mut rng = TestRng::from_name("nested");
        let strat = vec(vec((0u32..3, 0.0..1.0f32), 0..4), 1..3);
        let v = strat.generate(&mut rng);
        assert!(!v.is_empty());
    }
}
