//! Real-time pricing: the paper's motivating interactive scenario (§IV).
//!
//! An underwriter on the phone wants to compare alternative retentions and
//! limits for a Cat XL programme.  Each alternative re-runs the 50 K-trial
//! aggregate analysis against the prepared exposure data and prices the
//! result; the wall-clock latency of every quote is printed.
//!
//! ```text
//! cargo run --release --example realtime_quote
//! ```

use std::sync::Arc;

use catrisk::catmodel::generator::ExposureConfig;
use catrisk::catmodel::runner::{CatModel, CatModelConfig};
use catrisk::engine::input::AnalysisInputBuilder;
use catrisk::eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk::eventgen::peril::Region;
use catrisk::eventgen::simulate::{YetConfig, YetGenerator};
use catrisk::finterms::terms::LayerTerms;
use catrisk::finterms::treaty::Treaty;
use catrisk::portfolio::pricing::PricingConfig;
use catrisk::portfolio::realtime::RealTimeQuoter;
use catrisk::prelude::RngFactory;

fn main() {
    let factory = RngFactory::new(99);

    // Prepare the world once (this is the "pre-processing stage"; it would be
    // done before the phone call).
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 25_000,
            annual_event_budget: 1_000.0,
            rate_tail_index: 1.2,
        },
        &factory,
    )
    .expect("catalog");
    let model = CatModel::new(CatModelConfig::default()).expect("model");
    let exposures = [
        ExposureConfig::regional("florida", Region::NorthAmericaEast, 2_000),
        ExposureConfig::regional("caribbean", Region::Caribbean, 800),
    ];
    let elts: Vec<_> = exposures
        .iter()
        .map(|cfg| {
            model.run(
                &catalog,
                &cfg.clone().generate(&factory).expect("exposure"),
                &factory,
            )
        })
        .collect();
    let yet = YetGenerator::new(&catalog, YetConfig::with_trials(50_000))
        .expect("generator")
        .generate(&factory);

    let mut builder = AnalysisInputBuilder::new();
    builder.set_yet_shared(Arc::new(yet));
    for elt in &elts {
        builder.add_elt(&elt.loss_pairs(), elt.financial_terms);
    }
    builder.add_layer_over(&[0], LayerTerms::unlimited()); // placeholder layer
    let input = builder.build().expect("input");

    let quoter =
        RealTimeQuoter::new(&input, Some(50_000), PricingConfig::default()).expect("quoter");
    println!(
        "quoting against {} trials; exposure books: florida + caribbean\n",
        quoter.trials()
    );

    let scale = elts.iter().map(|e| e.max_loss()).fold(0.0, f64::max);
    let alternatives = [
        Treaty::cat_xl(0.05 * scale, 0.30 * scale),
        Treaty::cat_xl(0.10 * scale, 0.30 * scale),
        Treaty::cat_xl(0.10 * scale, 0.50 * scale),
        Treaty::Combined {
            occ_retention: 0.10 * scale,
            occ_limit: 0.30 * scale,
            agg_retention: 0.05 * scale,
            agg_limit: 0.60 * scale,
        },
        Treaty::QuotaShare {
            cession: 0.25,
            event_limit: 0.40 * scale,
        },
    ];

    println!(
        "{:<55} {:>13} {:>13} {:>8} {:>9}",
        "structure", "expected loss", "tech premium", "RoL", "seconds"
    );
    for treaty in alternatives {
        let quoted = quoter.quote(treaty, &[0, 1]).expect("quote");
        println!(
            "{:<55} {:>13.0} {:>13.0} {:>8.4} {:>9.3}",
            treaty.describe(),
            quoted.quote.expected_loss,
            quoted.quote.gross_premium,
            quoted.quote.rate_on_line,
            quoted.elapsed.as_secs_f64()
        );
    }
    println!(
        "\neach row re-ran the full aggregate analysis; the paper's target is ~1s at 50k trials."
    );
}
