//! # catrisk-simkit
//!
//! Simulation substrate shared by every other `catrisk` crate.
//!
//! The aggregate risk analysis pipeline of the paper (Bahl, Baltzer,
//! Rau-Chaplin, Varghese, SC 2012) sits on top of a large amount of
//! "boring" stochastic machinery: reproducible random number streams,
//! samplers for the frequency and severity distributions used by the
//! catastrophe model and the Year Event Table generator, running
//! statistics for the analytics layer, and instrumentation used to
//! reproduce the phase-breakdown figure (Fig. 6b).
//!
//! This crate provides that machinery with no external dependencies
//! beyond [`rand`] (for the `RngCore`/`SeedableRng` traits) and
//! [`rayon`] (for the deterministic parallel-map helper).
//!
//! ## Modules
//!
//! * [`rng`] — splittable, counter-indexed random streams so that the
//!   *i*-th trial always sees the same randomness regardless of the
//!   number of worker threads.
//! * [`distributions`] — samplers implemented from scratch: uniform,
//!   exponential, normal, log-normal, gamma, beta, Pareto, Poisson,
//!   negative binomial, Bernoulli and empirical/discrete distributions.
//! * [`stats`] — Welford accumulators, quantiles, ECDFs and histograms.
//! * [`sampling`] — alias-method sampling, reservoir sampling and
//!   stratified index partitioning.
//! * [`parallel`] — chunk partitioning and deterministic parallel map.
//! * [`timing`] — stopwatches and named phase timers.
//!
//! ## Quick example
//!
//! ```
//! use catrisk_simkit::rng::RngFactory;
//! use catrisk_simkit::distributions::{Distribution, Poisson};
//! use catrisk_simkit::stats::RunningStats;
//!
//! let factory = RngFactory::new(42);
//! let mut stats = RunningStats::new();
//! for trial in 0..1000u64 {
//!     let mut rng = factory.stream(trial);
//!     let n = Poisson::new(8.0).unwrap().sample(&mut rng);
//!     stats.push(n as f64);
//! }
//! assert!((stats.mean() - 8.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod distributions;
pub mod parallel;
pub mod rng;
pub mod sampling;
pub mod stats;
pub mod timing;

pub use distributions::Distribution;
pub use rng::{RngFactory, SimRng};
pub use stats::{quantile, RunningStats};
pub use timing::{PhaseTimer, Stopwatch};

/// Crate-wide error type for invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamError {
    /// Human readable description of the parameter violation.
    pub message: String,
}

impl ParamError {
    /// Create a new parameter error from anything printable.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid parameter: {}", self.message)
    }
}

impl std::error::Error for ParamError {}

/// Convenience result alias used by constructors that validate parameters.
pub type Result<T> = std::result::Result<T, ParamError>;
