//! Ad-hoc aggregate risk queries over a columnar YLT store.
//!
//! Walks the QuPARA-style serving path end to end:
//!
//! 1. build a dimension-sliced analysis (one engine layer per
//!    `(book, peril)` segment, tagged with peril / region / line of
//!    business / layer);
//! 2. run the Aggregate Risk Engine once;
//! 3. ingest the Year Loss Tables into the columnar [`ResultStore`];
//! 4. answer four distinct ad-hoc query shapes — filter-only totals, a
//!    group-by, an EP curve, tail metrics — and then the same queries again
//!    as one batched session, which shares scans between them.
//!
//! Run with `cargo run --release --example adhoc_queries`.

use std::sync::Arc;

use catrisk::engine::parallel::ParallelEngine;
use catrisk::eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk::eventgen::peril::{Peril, Region};
use catrisk::eventgen::simulate::{YetConfig, YetGenerator};
use catrisk::finterms::terms::{FinancialTerms, LayerTerms};
use catrisk::prelude::RngFactory;
use catrisk::riskquery::prelude::*;
use catrisk::riskquery::{SegmentedBook, SegmentedInput};

fn synthetic_book(
    catalog: &EventCatalog,
    seed: u64,
    region: Region,
    lob: LineOfBusiness,
) -> SegmentedBook {
    let factory = RngFactory::new(seed).derive("adhoc-book");
    let mut rng = factory.stream(seed);
    let pairs = (0..2_500)
        .map(|_| {
            (
                rng.below(catalog.len() as u64) as u32,
                5_000.0 + rng.uniform() * 2.0e6,
            )
        })
        .collect();
    SegmentedBook {
        pairs,
        financial_terms: FinancialTerms::new(1_000.0, 1.5e6, 0.9, 1.0).expect("valid terms"),
        layer_terms: LayerTerms::per_occurrence(5.0e4, 8.0e5).expect("valid terms"),
        region,
        lob,
    }
}

fn main() {
    // 1. A synthetic world sliced into tagged segments.
    let factory = RngFactory::new(2012);
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 20_000,
            annual_event_budget: 600.0,
            rate_tail_index: 1.2,
        },
        &factory,
    )
    .expect("catalog");
    let yet = Arc::new(
        YetGenerator::new(&catalog, YetConfig::with_trials(10_000))
            .expect("generator")
            .generate(&factory),
    );
    let books = vec![
        synthetic_book(
            &catalog,
            1,
            Region::NorthAmericaEast,
            LineOfBusiness::Property,
        ),
        synthetic_book(&catalog, 2, Region::Europe, LineOfBusiness::Casualty),
        synthetic_book(&catalog, 3, Region::Japan, LineOfBusiness::Marine),
        synthetic_book(&catalog, 4, Region::Oceania, LineOfBusiness::Energy),
    ];
    let segmented = SegmentedInput::build(yet, &catalog, &books).expect("segmented input");

    // 2.–3. One engine run, ingested into the columnar store.
    let output = ParallelEngine::new().run(&segmented.input);
    let store = segmented.ingest(&output).expect("ingest");
    println!(
        "store: {} segments x {} trials ({:.1} MB of loss columns)\n",
        store.num_segments(),
        store.num_trials(),
        store.memory_bytes() as f64 / 1.0e6
    );

    // 4a. Filter-only: the total book of hurricane+flood business.
    let wind_and_water = QueryBuilder::new()
        .with_perils([Peril::Hurricane, Peril::Flood])
        .aggregate(Aggregate::Mean)
        .aggregate(Aggregate::AttachProb)
        .aggregate(Aggregate::MaxLoss)
        .build()
        .expect("valid query");
    println!("== hurricane + flood, portfolio total ==");
    println!("{}", execute(&store, &wind_and_water).expect("query"));

    // 4b. Group-by: expected loss and tail by region.
    let by_region = QueryBuilder::new()
        .group_by(Dimension::Region)
        .aggregate(Aggregate::Mean)
        .aggregate(Aggregate::Tvar { level: 0.99 })
        .build()
        .expect("valid query");
    println!("== by region ==");
    println!("{}", execute(&store, &by_region).expect("query"));

    // 4c. EP curves: aggregate exceedance per line of business.
    let aep_by_lob = QueryBuilder::new()
        .group_by(Dimension::Lob)
        .aggregate(Aggregate::EpCurve {
            basis: Basis::Aep,
            points: 8,
        })
        .build()
        .expect("valid query");
    println!("== AEP curve by line of business ==");
    println!("{}", execute(&store, &aep_by_lob).expect("query"));

    // 4d. Tail metrics over a trial window (convergence-style question).
    let tail_window = QueryBuilder::new()
        .trials(0..5_000)
        .aggregate(Aggregate::Var { level: 0.995 })
        .aggregate(Aggregate::Tvar { level: 0.995 })
        .aggregate(Aggregate::Pml {
            return_period: 250.0,
            basis: Basis::Oep,
        })
        .build()
        .expect("valid query");
    println!("== tail metrics, first 5000 trials ==");
    println!("{}", execute(&store, &tail_window).expect("query"));

    // 5. The same four queries as one batched session: scan specs are
    //    deduplicated and the remaining scans fused into a single pass.
    let batch = vec![wind_and_water, by_region, aep_by_lob, tail_window];
    let session = QuerySession::new(&store);
    let results = session.run(&batch).expect("batch");
    println!(
        "batched session answered {} queries; first result has {} rows — identical to the \
         per-query answers above",
        results.len(),
        results[0].rows.len()
    );
}
