//! Minimal, dependency-free stand-in for the `serde` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the serde API it actually uses:
//!
//! * the [`Serialize`] / [`Deserialize`] traits and their derive macros
//!   (structs with named fields, tuple structs, and enums with unit, tuple
//!   and struct variants, in serde's externally-tagged representation);
//! * the `#[serde(with = "module")]` field attribute;
//! * the [`Serializer`] / [`Deserializer`] traits as used by hand-written
//!   `with`-style helper modules (`serialize_some` / `serialize_none` and
//!   `Option::<T>::deserialize`).
//!
//! Unlike real serde, the data model is a concrete [`value::Value`] tree
//! (miniserde-style) rather than a streaming visitor API: serializers
//! receive a fully built `Value` and deserializers hand one out.  This is
//! slower than real serde but API-compatible with the call sites in this
//! workspace, and `serde_json` (also vendored) round-trips the same JSON.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
