//! Shared decode of a store file's committed state — the one
//! implementation behind [`StoreReader::open`](crate::StoreReader::open),
//! [`StoreReader::refresh`](crate::StoreReader::refresh) and
//! [`StoreWriter::open_append`](crate::StoreWriter::open_append), so the
//! header-slot arbitration and footer validation cannot drift between the
//! read and write paths.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};

use crate::footer::Footer;
use crate::format::{pages_per_column, read_up_to, Header, HEADER_LEN};
use crate::{Result, StoreError};

/// The fully validated committed state of a store file at one instant:
/// the winning header slot plus the footer it points at (if anything has
/// been committed yet).
#[derive(Debug)]
pub(crate) struct CommittedState {
    /// The winning (newest valid) header slot.
    pub header: Header,
    /// The committed footer, `None` for a created-but-never-committed
    /// store.
    pub footer: Option<Footer>,
    /// End offset of the committed region: one past the footer, or
    /// [`HEADER_LEN`] when nothing has been committed.
    pub committed_end: u64,
    /// File length observed while reading.
    pub file_len: u64,
    /// `header.num_trials` as a checked `usize`.
    pub num_trials: usize,
}

/// Reads and validates the committed prefix of an open store file:
/// dual-slot header arbitration, footer bounds, footer checksums.
pub(crate) fn read_committed_state(file: &mut File) -> Result<CommittedState> {
    let file_len = file.metadata()?.len();
    file.seek(SeekFrom::Start(0))?;
    let mut header_bytes = [0u8; HEADER_LEN as usize];
    let got = read_up_to(file, &mut header_bytes)?;
    let header = Header::decode(&header_bytes[..got])?;
    let num_trials = usize::try_from(header.num_trials)
        .map_err(|_| StoreError::Corrupt("absurd trial count in header".to_string()))?;

    if header.footer_offset == 0 {
        // Valid, just empty: created but never committed.
        return Ok(CommittedState {
            header,
            footer: None,
            committed_end: HEADER_LEN,
            file_len,
            num_trials,
        });
    }

    let committed_end = header
        .footer_offset
        .checked_add(header.footer_len)
        .filter(|&end| end <= file_len)
        .ok_or_else(|| StoreError::Truncated {
            what: format!(
                "footer at {}..{} but the file holds {file_len} bytes",
                header.footer_offset,
                header.footer_offset.saturating_add(header.footer_len)
            ),
        })?;
    file.seek(SeekFrom::Start(header.footer_offset))?;
    let mut footer_bytes = vec![0u8; header.footer_len as usize];
    file.read_exact(&mut footer_bytes)?;
    let pages = pages_per_column(num_trials, header.page_trials);
    let footer = Footer::decode(&footer_bytes, header.commit_seq, pages)?;
    Ok(CommittedState {
        header,
        footer: Some(footer),
        committed_end,
        file_len,
        num_trials,
    })
}
