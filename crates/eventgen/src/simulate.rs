//! The Year Event Table simulator.
//!
//! For every trial (one alternative realisation of the contractual year) the
//! simulator draws, per peril, an annual event count from the peril's
//! frequency model, samples that many catalog events proportionally to their
//! annual rates, attaches seasonal time-stamps and sorts the trial by time.
//! Trials are generated in parallel with one deterministic random stream per
//! trial, so the same configuration and seed always produce the same YET
//! regardless of thread count.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use catrisk_simkit::rng::RngFactory;
use catrisk_simkit::sampling::AliasTable;

use crate::catalog::EventCatalog;
use crate::frequency::FrequencyModel;
use crate::peril::Peril;
use crate::seasonality::TimestampSampler;
use crate::yet::{EventOccurrence, YearEventTable, YetBuilder};
use crate::{EventId, GenError, Result};

/// Configuration of the YET simulator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YetConfig {
    /// Number of trials to simulate (the paper uses 10⁵–10⁶).
    pub num_trials: usize,
    /// Frequency model applied to every peril unless overridden.
    pub frequency: FrequencyModel,
    /// Per-peril overrides of the frequency model.
    pub peril_frequency: Vec<(Peril, FrequencyModel)>,
    /// Multiplier applied to every event rate, used to scale the expected
    /// events-per-trial without regenerating the catalog (the paper's
    /// Fig. 2d varies 800–1200 events per trial this way).
    pub rate_multiplier: f64,
}

impl Default for YetConfig {
    fn default() -> Self {
        Self {
            num_trials: 10_000,
            frequency: FrequencyModel::Poisson,
            peril_frequency: Vec::new(),
            rate_multiplier: 1.0,
        }
    }
}

impl YetConfig {
    /// Configuration with just a trial count and defaults elsewhere.
    pub fn with_trials(num_trials: usize) -> Self {
        Self {
            num_trials,
            ..Default::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.num_trials == 0 {
            return Err(GenError::InvalidConfig(
                "num_trials must be positive".into(),
            ));
        }
        if !(self.rate_multiplier.is_finite() && self.rate_multiplier > 0.0) {
            return Err(GenError::InvalidConfig(
                "rate_multiplier must be positive".into(),
            ));
        }
        self.frequency.validate()?;
        for (_, m) in &self.peril_frequency {
            m.validate()?;
        }
        Ok(())
    }

    /// The frequency model effective for a peril.
    pub fn frequency_for(&self, peril: Peril) -> FrequencyModel {
        self.peril_frequency
            .iter()
            .find(|(p, _)| *p == peril)
            .map(|(_, m)| *m)
            .unwrap_or(self.frequency)
    }
}

/// Pre-processed per-peril sampling tables.
struct PerilSampler {
    peril: Peril,
    /// Expected annual occurrence count of the peril (already scaled).
    annual_rate: f64,
    /// Event ids of the peril.
    events: Vec<EventId>,
    /// Alias table over the peril's events weighted by annual rate.
    alias: AliasTable,
}

/// Generates Year Event Tables from an event catalog.
pub struct YetGenerator {
    samplers: Vec<PerilSampler>,
    timestamps: TimestampSampler,
    catalog_size: u32,
    config: YetConfig,
}

impl YetGenerator {
    /// Prepares a generator for the given catalog and configuration.
    pub fn new(catalog: &EventCatalog, config: YetConfig) -> Result<Self> {
        config.validate()?;
        if catalog.is_empty() {
            return Err(GenError::InvalidConfig("catalog must not be empty".into()));
        }
        let mut samplers = Vec::new();
        for peril in catalog.perils() {
            let pairs = catalog.peril_events(peril);
            let total: f64 = pairs.iter().map(|(_, r)| r).sum();
            if total <= 0.0 {
                continue;
            }
            let events: Vec<EventId> = pairs.iter().map(|(e, _)| *e).collect();
            let weights: Vec<f64> = pairs.iter().map(|(_, r)| *r).collect();
            samplers.push(PerilSampler {
                peril,
                annual_rate: total * config.rate_multiplier,
                events,
                alias: AliasTable::new(&weights).map_err(|e| GenError::InvalidConfig(e.message))?,
            });
        }
        if samplers.is_empty() {
            return Err(GenError::InvalidConfig(
                "catalog has no events with positive rates".into(),
            ));
        }
        Ok(Self {
            samplers,
            timestamps: TimestampSampler::new(),
            catalog_size: catalog.len() as u32,
            config,
        })
    }

    /// Expected number of events per trial under this configuration.
    pub fn expected_events_per_trial(&self) -> f64 {
        self.samplers.iter().map(|s| s.annual_rate).sum()
    }

    /// Simulates one trial with the given random stream index.
    fn simulate_trial(&self, factory: &RngFactory, trial_index: u64) -> Vec<EventOccurrence> {
        let mut rng = factory.stream(trial_index);
        let mut occurrences =
            Vec::with_capacity(self.expected_events_per_trial().ceil() as usize + 8);
        for sampler in &self.samplers {
            let model = self.config.frequency_for(sampler.peril);
            let count = model.sample_count(sampler.annual_rate, &mut rng);
            for _ in 0..count {
                let event = sampler.events[sampler.alias.sample(&mut rng)];
                let time = self.timestamps.sample(sampler.peril, &mut rng) as f32;
                occurrences.push(EventOccurrence { event, time });
            }
        }
        occurrences.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite timestamps"));
        occurrences
    }

    /// Generates the full YET in parallel (one random stream per trial).
    pub fn generate(&self, factory: &RngFactory) -> YearEventTable {
        let factory = factory.derive("yet");
        let trials: Vec<Vec<EventOccurrence>> = (0..self.config.num_trials)
            .into_par_iter()
            .map(|i| self.simulate_trial(&factory, i as u64))
            .collect();
        let mut builder = YetBuilder::new(
            self.catalog_size,
            self.config.num_trials,
            self.expected_events_per_trial().ceil() as usize,
        );
        for trial in &trials {
            builder.push_sorted_trial(trial);
        }
        builder.build()
    }

    /// Generates the YET on a single thread (used by tests to verify that
    /// parallel generation is deterministic).
    pub fn generate_sequential(&self, factory: &RngFactory) -> YearEventTable {
        let factory = factory.derive("yet");
        let mut builder = YetBuilder::new(
            self.catalog_size,
            self.config.num_trials,
            self.expected_events_per_trial().ceil() as usize,
        );
        for i in 0..self.config.num_trials {
            let trial = self.simulate_trial(&factory, i as u64);
            builder.push_sorted_trial(&trial);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;

    fn catalog() -> EventCatalog {
        EventCatalog::generate(
            &CatalogConfig {
                num_events: 2_000,
                annual_event_budget: 100.0,
                rate_tail_index: 1.2,
            },
            &RngFactory::new(7),
        )
        .unwrap()
    }

    #[test]
    fn generated_yet_matches_configuration() {
        let cat = catalog();
        let config = YetConfig::with_trials(500);
        let generator = YetGenerator::new(&cat, config).unwrap();
        assert!((generator.expected_events_per_trial() - 100.0).abs() < 1e-6);
        let yet = generator.generate(&RngFactory::new(11));
        yet.validate().unwrap();
        assert_eq!(yet.num_trials(), 500);
        assert_eq!(yet.catalog_size(), 2_000);
        // Events per trial should be near the catalog's annual budget.
        let avg = yet.avg_events_per_trial();
        assert!((avg - 100.0).abs() < 5.0, "avg events/trial {avg}");
    }

    #[test]
    fn parallel_and_sequential_generation_identical() {
        let cat = catalog();
        let generator = YetGenerator::new(&cat, YetConfig::with_trials(200)).unwrap();
        let factory = RngFactory::new(3);
        let a = generator.generate(&factory);
        let b = generator.generate_sequential(&factory);
        assert_eq!(a, b);
    }

    #[test]
    fn rate_multiplier_scales_events_per_trial() {
        let cat = catalog();
        let mut config = YetConfig::with_trials(300);
        config.rate_multiplier = 2.0;
        let generator = YetGenerator::new(&cat, config).unwrap();
        let yet = generator.generate(&RngFactory::new(5));
        let avg = yet.avg_events_per_trial();
        assert!((avg - 200.0).abs() < 8.0, "avg events/trial {avg}");
    }

    #[test]
    fn overdispersed_frequency_increases_variance() {
        let cat = catalog();
        let factory = RngFactory::new(13);

        let poisson = YetGenerator::new(&cat, YetConfig::with_trials(2_000)).unwrap();
        let yet_p = poisson.generate(&factory);
        let var_p = trial_count_variance(&yet_p);

        let mut config = YetConfig::with_trials(2_000);
        config.frequency = FrequencyModel::NegativeBinomial { dispersion: 3.0 };
        let nb = YetGenerator::new(&cat, config).unwrap();
        let yet_nb = nb.generate(&factory);
        let var_nb = trial_count_variance(&yet_nb);

        assert!(
            var_nb > 1.5 * var_p,
            "negative binomial variance {var_nb} should exceed Poisson variance {var_p}"
        );
    }

    fn trial_count_variance(yet: &YearEventTable) -> f64 {
        let mut stats = catrisk_simkit::stats::RunningStats::new();
        for t in yet.trials() {
            stats.push(t.len() as f64);
        }
        stats.variance()
    }

    #[test]
    fn per_peril_frequency_override() {
        let cat = catalog();
        let mut config = YetConfig::with_trials(10);
        config.peril_frequency = vec![(
            Peril::Hurricane,
            FrequencyModel::Clustered { cluster_mean: 2.0 },
        )];
        assert_eq!(
            config.frequency_for(Peril::Hurricane),
            FrequencyModel::Clustered { cluster_mean: 2.0 }
        );
        assert_eq!(config.frequency_for(Peril::Flood), FrequencyModel::Poisson);
        let generator = YetGenerator::new(&cat, config).unwrap();
        generator.generate(&RngFactory::new(1)).validate().unwrap();
    }

    #[test]
    fn config_validation() {
        assert!(YetConfig {
            num_trials: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(YetConfig {
            rate_multiplier: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(YetConfig {
            frequency: FrequencyModel::NegativeBinomial { dispersion: 0.2 },
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(YetConfig {
            peril_frequency: vec![(
                Peril::Flood,
                FrequencyModel::Clustered { cluster_mean: -1.0 }
            )],
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(YetConfig::default().validate().is_ok());
    }

    #[test]
    fn empty_catalog_rejected() {
        let cat = EventCatalog::from_events(vec![]).unwrap();
        assert!(YetGenerator::new(&cat, YetConfig::with_trials(10)).is_err());
    }

    #[test]
    fn different_seeds_give_different_tables() {
        let cat = catalog();
        let generator = YetGenerator::new(&cat, YetConfig::with_trials(50)).unwrap();
        let a = generator.generate(&RngFactory::new(1));
        let b = generator.generate(&RngFactory::new(2));
        assert_ne!(a, b);
    }
}
