//! Combined risk reports for a layer or portfolio.

use serde::{Deserialize, Serialize};

use catrisk_engine::ylt::YearLossTable;

use crate::ep::ExceedanceCurve;
use crate::pml::{standard_pml_table, PmlPoint};
use crate::var::var_tvar_profile;

/// Confidence levels reported by default.
pub const REPORT_LEVELS: [f64; 4] = [0.90, 0.95, 0.99, 0.996];

/// A complete risk report for one Year Loss Table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RiskReport {
    /// Name of the layer or portfolio reported on.
    pub name: String,
    /// Number of trials underlying the report.
    pub trials: usize,
    /// Expected (mean) annual loss.
    pub expected_loss: f64,
    /// Standard deviation of the annual loss.
    pub std_dev: f64,
    /// Probability of a non-zero annual loss.
    pub attachment_probability: f64,
    /// `(level, VaR, TVaR)` at the standard confidence levels (AEP basis).
    pub var_tvar: Vec<(f64, f64, f64)>,
    /// AEP (aggregate) PML at the standard return periods.
    pub aep_pml: Vec<PmlPoint>,
    /// OEP (occurrence) PML at the standard return periods.
    pub oep_pml: Vec<PmlPoint>,
}

impl RiskReport {
    /// Builds a report from a layer's Year Loss Table.
    pub fn from_ylt(name: impl Into<String>, ylt: &YearLossTable) -> Self {
        let losses = ylt.losses();
        let occ_losses = ylt.max_occurrence_losses();
        Self::from_losses(name, &losses, Some(&occ_losses))
    }

    /// Builds a report from raw per-trial losses (portfolio roll-ups).
    pub fn from_losses(
        name: impl Into<String>,
        losses: &[f64],
        occurrence_losses: Option<&[f64]>,
    ) -> Self {
        assert!(!losses.is_empty(), "cannot report on zero trials");
        let aep = ExceedanceCurve::new(losses.to_vec());
        let oep = occurrence_losses
            .filter(|l| !l.is_empty())
            .map(|l| ExceedanceCurve::new(l.to_vec()));
        let mean = aep.mean();
        let variance = losses.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / losses.len() as f64;
        let nonzero = losses.iter().filter(|&&l| l > 0.0).count() as f64 / losses.len() as f64;
        Self {
            name: name.into(),
            trials: losses.len(),
            expected_loss: mean,
            std_dev: variance.sqrt(),
            attachment_probability: nonzero,
            var_tvar: var_tvar_profile(losses, &REPORT_LEVELS),
            aep_pml: standard_pml_table(&aep),
            oep_pml: oep.map(|c| standard_pml_table(&c)).unwrap_or_default(),
        }
    }

    /// The AEP PML at a given return period (None when not reported).
    pub fn aep_pml_at(&self, return_period: f64) -> Option<f64> {
        self.aep_pml
            .iter()
            .find(|p| (p.return_period - return_period).abs() < 1e-9)
            .map(|p| p.loss)
    }

    /// The TVaR at a given confidence level (None when not reported).
    pub fn tvar_at(&self, level: f64) -> Option<f64> {
        self.var_tvar
            .iter()
            .find(|(l, _, _)| (l - level).abs() < 1e-9)
            .map(|(_, _, t)| *t)
    }

    /// Renders the report as a plain-text table.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Risk report: {} ({} trials)\n",
            self.name, self.trials
        ));
        out.push_str(&format!(
            "  expected annual loss : {:>15.2}\n",
            self.expected_loss
        ));
        out.push_str(&format!(
            "  standard deviation   : {:>15.2}\n",
            self.std_dev
        ));
        out.push_str(&format!(
            "  attachment prob.     : {:>15.4}\n",
            self.attachment_probability
        ));
        out.push_str("  level      VaR              TVaR\n");
        for (level, v, t) in &self.var_tvar {
            out.push_str(&format!(
                "  {:<9} {v:>15.2} {t:>16.2}\n",
                format!("{:.1}%", level * 100.0)
            ));
        }
        out.push_str("  return period   AEP PML          OEP PML\n");
        for (i, p) in self.aep_pml.iter().enumerate() {
            let oep = self.oep_pml.get(i).map(|o| o.loss).unwrap_or(f64::NAN);
            out.push_str(&format!(
                "  {:>10}yr {:>15.2} {oep:>16.2}\n",
                p.return_period, p.loss
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_engine::ylt::TrialOutcome;
    use catrisk_finterms::layer::LayerId;

    fn ylt() -> YearLossTable {
        let outcomes: Vec<TrialOutcome> = (0..1000)
            .map(|i| {
                let loss = if i % 4 == 0 { 0.0 } else { f64::from(i) };
                TrialOutcome {
                    year_loss: loss,
                    max_occurrence_loss: loss * 0.6,
                    nonzero_events: u32::from(loss > 0.0),
                }
            })
            .collect();
        YearLossTable::new(LayerId(0), outcomes)
    }

    #[test]
    fn report_from_ylt_consistent() {
        let ylt = ylt();
        let report = RiskReport::from_ylt("test-layer", &ylt);
        assert_eq!(report.trials, 1000);
        assert!((report.expected_loss - ylt.mean_loss()).abs() < 1e-9);
        assert!((report.std_dev - ylt.loss_std_dev()).abs() < 1e-9);
        assert!((report.attachment_probability - 0.75).abs() < 1e-9);
        assert_eq!(report.var_tvar.len(), REPORT_LEVELS.len());
        assert_eq!(report.aep_pml.len(), 7);
        assert_eq!(report.oep_pml.len(), 7);
        // OEP losses were 60% of AEP losses in this synthetic YLT.
        for (a, o) in report.aep_pml.iter().zip(&report.oep_pml) {
            assert!(o.loss <= a.loss);
        }
        // TVaR dominates VaR everywhere.
        for (_, v, t) in &report.var_tvar {
            assert!(t >= v);
        }
    }

    #[test]
    fn accessors_and_text_rendering() {
        let report = RiskReport::from_ylt("layer-x", &ylt());
        assert!(report.aep_pml_at(100.0).unwrap() > 0.0);
        assert!(report.aep_pml_at(123.0).is_none());
        assert!(report.tvar_at(0.99).unwrap() >= report.tvar_at(0.95).unwrap());
        assert!(report.tvar_at(0.42).is_none());
        let text = report.to_text();
        assert!(text.contains("layer-x"));
        assert!(text.contains("expected annual loss"));
        assert!(text.contains("250yr") || text.contains("250"));
    }

    #[test]
    fn report_from_portfolio_losses_without_oep() {
        let losses: Vec<f64> = (0..500).map(f64::from).collect();
        let report = RiskReport::from_losses("portfolio", &losses, None);
        assert!(report.oep_pml.is_empty());
        assert_eq!(report.trials, 500);
        assert!(report.expected_loss > 0.0);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn empty_losses_panic() {
        RiskReport::from_losses("x", &[], None);
    }

    #[test]
    fn serde_round_trip() {
        let report = RiskReport::from_ylt("rt", &ylt());
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(serde_json::from_str::<RiskReport>(&json).unwrap(), report);
    }
}
