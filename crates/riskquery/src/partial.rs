//! Reusable per-shard partial aggregates: the unit a trial-sharded
//! serving layer caches.
//!
//! Trial-axis sharding splits one query's scan into per-shard windows
//! whose [`PartialAggregate`]s stitch back together with the exact
//! adjacent-window monoid.  That makes the *per-shard partial* the
//! natural unit of cache reuse — QuPARA's multi-GPU follow-up makes the
//! same observation for its per-partition aggregates: when one shard
//! refreshes, only its window needs rescanning, and every other shard's
//! cached partial re-combines unchanged.  This module packages a partial
//! with just enough self-description ([`TrialPartial`]) to survive being
//! cached across batches and re-combined later:
//!
//! * group **keys** (decoded dimension values, not plan-local group
//!   indices — indices are an artifact of one plan's first-appearance
//!   order and may differ between the plan that produced a cached
//!   partial and the plan consuming it);
//! * per-group **segment counts** (reported in result rows);
//! * the global **trial window** the partial covers.
//!
//! [`combine_trial_partials`] re-aligns parts by key, concatenates their
//! windows in order, and finalises through the same metric kernels
//! [`execute`](crate::exec::execute) uses — so a result assembled from
//! cached partials is bit-identical to a fresh scan of the whole window.

use crate::exec::{self, PartialAggregate, SortedCache};
use crate::plan::QueryPlan;
use crate::query::Query;
use crate::result::{DimValue, QueryResult, ResultRow};
use crate::store::SegmentSource;
use crate::{QueryError, Result};

/// One shard's contribution to a query: the partial aggregate of the
/// shard's trial window, keyed by decoded group keys so it can be cached
/// and re-combined across batches.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialPartial {
    /// Decoded group keys, in the producing plan's group order.
    pub keys: Vec<Vec<DimValue>>,
    /// Segments contributing to each group (same across shards: every
    /// trial shard holds every segment).
    pub segment_counts: Vec<usize>,
    /// The global trial window `[start, end)` this partial covers.
    pub window: (usize, usize),
    /// The accumulated loss vectors per group over the window.
    pub aggregate: PartialAggregate,
}

impl TrialPartial {
    /// Number of trials this partial covers.
    pub fn num_trials(&self) -> usize {
        self.window.1 - self.window.0
    }

    /// Approximate heap bytes of the partial's loss vectors (cache
    /// accounting).
    pub fn memory_bytes(&self) -> usize {
        self.aggregate
            .year
            .iter()
            .chain(&self.aggregate.maxocc)
            .map(|column| column.len() * std::mem::size_of::<f64>())
            .sum()
    }
}

/// Scans one shard window of a planned query: the plan's scan restricted
/// to the global trial window `[start, end)`, packaged with the plan's
/// group keys and segment counts.
///
/// The window must lie inside the plan's trial window; a caller shards
/// the plan window by clipping it against each shard's window (an empty
/// clip yields a valid zero-trial partial, so shards outside the query's
/// trial filter still combine exactly).
pub fn scan_trial_partial<S: SegmentSource + ?Sized>(
    store: &S,
    plan: &QueryPlan,
    start: usize,
    end: usize,
) -> TrialPartial {
    let mut segment_counts = vec![0usize; plan.num_groups()];
    for &group in &plan.groups {
        segment_counts[group] += 1;
    }
    TrialPartial {
        keys: plan.keys.clone(),
        segment_counts,
        window: (start, end),
        aggregate: exec::scan_window(store, plan, start, end),
    }
}

/// Stitches per-shard partials (in window order) into the final
/// [`QueryResult`], bit-identical to scanning the whole window at once.
///
/// Parts must agree on their group keys and segment counts (trial shards
/// present identical segment layouts, so any disagreement means the
/// parts describe different snapshots — the caller falls back to a fresh
/// scan) and their windows must be adjacent: each part starts where the
/// previous ended.
pub fn combine_trial_partials(query: &Query, parts: Vec<TrialPartial>) -> Result<QueryResult> {
    let mut iter = parts.into_iter();
    let Some(first) = iter.next() else {
        return Err(QueryError::Store(
            "no trial partials to combine".to_string(),
        ));
    };
    let keys = first.keys;
    let segment_counts = first.segment_counts;
    let (window_start, mut window_end) = first.window;
    let mut aggregate = first.aggregate;
    for part in iter {
        if part.keys != keys || part.segment_counts != segment_counts {
            return Err(QueryError::Store(
                "trial partials disagree on group keys; they describe different snapshots"
                    .to_string(),
            ));
        }
        if part.window.0 != window_end {
            return Err(QueryError::Store(format!(
                "trial partial windows are not adjacent: {}..{} then {}..{}",
                window_start, window_end, part.window.0, part.window.1
            )));
        }
        window_end = part.window.1;
        aggregate = aggregate.combine_adjacent(part.aggregate);
    }

    // Canonical row order, exactly as `exec::assemble` derives it from a
    // plan: ascending by decoded key.
    let mut order: Vec<usize> = (0..keys.len()).collect();
    order.sort_by(|&a, &b| DimValue::compare_keys(&keys[a], &keys[b]));
    let rows: Vec<ResultRow> = order
        .into_iter()
        .map(|group| {
            let mut cache = SortedCache::default();
            ResultRow {
                key: keys[group].clone(),
                segments: segment_counts[group],
                values: exec::finalize_group(&query.aggregates, &aggregate, group, &mut cache),
            }
        })
        .collect();
    Ok(QueryResult {
        group_by: query.group_by.clone(),
        aggregates: query.aggregates.clone(),
        trials: window_end - window_start,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::query::{Aggregate, Basis, QueryBuilder};
    use crate::store::ResultStore;
    use crate::Dimension;
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
    use catrisk_eventgen::peril::{Peril, Region};
    use catrisk_finterms::layer::LayerId;

    use crate::dims::{LineOfBusiness, SegmentMeta};

    fn store() -> ResultStore {
        let mut store = ResultStore::new(6);
        let segs = [
            (0u32, Peril::Hurricane, [1.0, 0.0, 4.0, 2.0, 7.0, 0.0]),
            (1, Peril::Flood, [2.0, 5.0, 0.0, 1.0, 0.0, 3.0]),
            (2, Peril::Hurricane, [0.0, 1.0, 1.0, 0.0, 2.0, 9.0]),
        ];
        for (layer, peril, losses) in segs {
            let outcomes = losses
                .iter()
                .map(|&l| TrialOutcome {
                    year_loss: l,
                    max_occurrence_loss: l * 0.5,
                    nonzero_events: 0,
                })
                .collect();
            store
                .ingest(
                    &YearLossTable::new(LayerId(layer), outcomes),
                    SegmentMeta::new(
                        LayerId(layer),
                        peril,
                        Region::Europe,
                        LineOfBusiness::Property,
                    ),
                )
                .unwrap();
        }
        store
    }

    fn queries() -> Vec<Query> {
        vec![
            QueryBuilder::new()
                .group_by(Dimension::Peril)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::Tvar { level: 0.9 })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .trials(1..5)
                .aggregate(Aggregate::EpCurve {
                    basis: Basis::Oep,
                    points: 3,
                })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .loss_at_least(2.0)
                .group_by(Dimension::Layer)
                .aggregate(Aggregate::MaxLoss)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn stitched_partials_reproduce_execute_bitwise() {
        let store = store();
        for query in queries() {
            let plan = QueryPlan::new(&store, &query).unwrap();
            // Split the plan window into up to three chunks, including a
            // possibly-empty middle chunk.
            let (lo, hi) = (plan.trial_start, plan.trial_end);
            let a = lo + (hi - lo) / 3;
            let b = lo + 2 * (hi - lo) / 3;
            let parts = vec![
                scan_trial_partial(&store, &plan, lo, a),
                scan_trial_partial(&store, &plan, a, b),
                scan_trial_partial(&store, &plan, b, hi),
            ];
            assert!(parts[0].memory_bytes() <= parts[0].aggregate.year.len() * (hi - lo) * 16);
            let stitched = combine_trial_partials(&query, parts).unwrap();
            assert_eq!(
                stitched,
                execute(&store, &query).unwrap(),
                "stitched partials must be bit-identical to a whole-window scan"
            );
        }
    }

    #[test]
    fn empty_window_partials_are_identity() {
        let store = store();
        let query = QueryBuilder::new()
            .trials(0..3)
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).unwrap();
        // A shard whose window lies entirely outside the query's trial
        // filter contributes a zero-trial partial.
        let parts = vec![
            scan_trial_partial(&store, &plan, 0, 3),
            scan_trial_partial(&store, &plan, 3, 3),
        ];
        let stitched = combine_trial_partials(&query, parts).unwrap();
        assert_eq!(stitched, execute(&store, &query).unwrap());
    }

    #[test]
    fn misaligned_partials_are_rejected() {
        let store = store();
        let query = queries().remove(0);
        let plan = QueryPlan::new(&store, &query).unwrap();
        let a = scan_trial_partial(&store, &plan, 0, 2);
        let c = scan_trial_partial(&store, &plan, 4, 6);
        // A gap between windows is rejected.
        assert!(matches!(
            combine_trial_partials(&query, vec![a.clone(), c]),
            Err(QueryError::Store(_))
        ));
        // So are parts whose group keys disagree.
        let other_query = QueryBuilder::new()
            .group_by(Dimension::Layer)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let other_plan = QueryPlan::new(&store, &other_query).unwrap();
        let miskeyed = scan_trial_partial(&store, &other_plan, 2, 6);
        assert!(matches!(
            combine_trial_partials(&query, vec![a, miskeyed]),
            Err(QueryError::Store(_))
        ));
        // And an empty part list.
        assert!(combine_trial_partials(&query, vec![]).is_err());
    }
}
