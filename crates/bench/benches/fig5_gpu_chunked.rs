//! Fig. 5 — the optimised (chunked) GPU kernel: simulated execution time vs
//! chunk size (5a) and vs threads per block at chunk size 4 (5b).
//!
//! As with Fig. 4, the reported time is the simulated Tesla C2075 time from
//! the `catrisk-gpusim` cost model via `iter_custom`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_gpusim::executor::Executor;
use catrisk_gpusim::kernel::LaunchConfig;
use catrisk_gpusim::kernels::{run_gpu_analysis, total_simulated_seconds, GpuVariant};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        num_events: 50_000,
        trials: 1_000,
        events_per_trial: 1_000.0,
        num_elts: 15,
        elt_records: 5_000,
        num_layers: 1,
        elts_per_layer: 15,
        ..WorkloadSpec::bench_scale()
    }
}

fn simulated(
    executor: &Executor,
    input: &catrisk_engine::input::AnalysisInput,
    chunk: usize,
    tpb: u32,
    iters: u64,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let (_, launches) = run_gpu_analysis(
            executor,
            input,
            GpuVariant::Chunked { chunk_size: chunk },
            LaunchConfig::with_block_size(tpb),
        )
        .expect("launch");
        total += Duration::from_secs_f64(total_simulated_seconds(&launches));
    }
    total
}

fn fig5a_chunk_size(c: &mut Criterion) {
    let input = build_input(&workload());
    let executor = Executor::tesla_c2075();
    let mut group = c.benchmark_group("fig5a_gpu_chunk_size");
    group.sample_size(10);
    for chunk in [1usize, 2, 4, 6, 8, 12, 16, 24, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, &chunk| {
            b.iter_custom(|iters| simulated(&executor, &input, chunk, 64, iters))
        });
    }
    group.finish();
}

fn fig5b_threads_per_block(c: &mut Criterion) {
    let input = build_input(&workload());
    let executor = Executor::tesla_c2075();
    let mut group = c.benchmark_group("fig5b_gpu_chunked_threads_per_block");
    group.sample_size(10);
    for tpb in [32u32, 64, 96, 128, 160, 192] {
        group.bench_with_input(BenchmarkId::from_parameter(tpb), &tpb, |b, &tpb| {
            b.iter_custom(|iters| simulated(&executor, &input, 4, tpb, iters))
        });
    }
    group.finish();
}

criterion_group! {
    name = fig5;
    // The simulated-GPU measurements are deterministic (zero variance), which
    // criterion's plotting backend cannot density-estimate; disable plots.
    config = Criterion::default().without_plots();
    targets = fig5a_chunk_size, fig5b_threads_per_block
}
criterion_main!(fig5);
