//! `catrisk serve` — a micro-batched TCP query server over a catalog of
//! persistent stores — and `catrisk loadgen` — an open-loop load
//! generator against it.
//!
//! `serve` opens one or more `catrisk-riskstore` files as a
//! [`StoreCatalog`], routes every query across the shards (exact
//! cross-shard merge, bit-identical to one concatenated store), refreshes
//! shards live as ingest writers commit, answers repeated queries from a
//! generation-keyed result cache, and speaks the line protocol of
//! `catrisk-riskserve` until a client sends `shutdown`.  `loadgen` drives
//! a mixed query workload at a running server from many concurrent
//! connections and prints throughput and latency percentiles — with
//! `--refresh-writer` it also appends and commits segments to one shard
//! mid-run, exercising the serve-while-ingesting path under load.

use std::time::Duration;

use catrisk_riskserve::{loadgen, LoadgenOptions, Server, ServerConfig, StoreCatalog, TcpFrontEnd};

use super::Options;

/// Detailed usage of the serve command, shown by `catrisk serve --help`.
pub const SERVE_HELP: &str = "usage: catrisk serve [options]

Serves ad-hoc aggregate queries over a catalog of persistent store files,
coalescing concurrent requests into micro-batches (one fused scan per
batch), refreshing shards as ingest writers commit, and caching per-query
results keyed on each shard's committed generation.  The sharding axis is
detected from the stores' trial offsets: offset-0 shards union along the
segment axis; shards written with distinct --trial-offset windows (see
`catrisk store write/split`) stitch along the trial axis, where the
server additionally caches per-shard partial aggregates so a refresh of
one shard rescans only that shard's trial window.  Speaks a line
protocol: one query text per line in, one JSON reply per line out (the
normative spec is docs/PROTOCOL.md):

  select mean, tvar(0.99) where peril=HU|FL group by region
  ping | stats | quit | shutdown

The server runs until a client sends `shutdown` (see `catrisk loadgen
--shutdown`).

options:
  --store PATH     a shard file to serve; repeat for a multi-store catalog
                   (segment axis: one shared trial count; trial axis:
                   windows must tile [0, total) with no gap or overlap)
  --in PATH        alias for a single --store (kept for compatibility)
  --addr A         listen address (default 127.0.0.1:7433, port 0 = ephemeral)
  --max-batch N    close a batch window at N requests (default 64)
  --window-us U    batch window in microseconds (default 200)
  --queue-depth N  reject submits past N queued requests (default 1024)
  --workers N      batch worker threads (default 2)
  --cache N        result-cache capacity in unique queries (default 1024,
                   0 disables caching)
  --partial-cache N  per-shard partial-aggregate cache capacity in
                   (query, shard) entries, trial-axis catalogs only
                   (default 4096, 0 disables partial caching)
  --refresh-ms MS  minimum milliseconds between shard-header refresh
                   probes (default 0 = probe every batch; raise on slow
                   or networked filesystems to bound per-batch syscalls
                   at the cost of commits surfacing up to MS later)
  --metrics-threshold-us U  batches slower than U microseconds emit a
                   `slow-batch` flight-recorder event (default 0 = off)
  --recorder-capacity N  flight-recorder ring capacity in events
                   (default 256, 0 disables the recorder); dump it live
                   with `catrisk stats --recorder` or the `recorder`
                   protocol command
  --trace-sample N trace every Nth admitted request (1 = every request,
                   default 0 = only requests that ask via the wire
                   `trace` prefix); traced requests build a span-tree
                   execution profile and stamp histogram exemplars
  --trace-capacity N  completed traces retained for `trace <id>` lookups
                   and `catrisk stats --slowest` (default 256, plus a
                   fixed pool of the slowest; 0 disables retention)";

/// Detailed usage of the loadgen command, shown by `catrisk loadgen --help`.
pub const LOADGEN_HELP: &str = "usage: catrisk loadgen [options]

Drives load at a running `catrisk serve` instance from many concurrent
connections and prints throughput, latency percentiles and the server's
cache/refresh counters.  Fails (exit 1) if any request errors or every
reply is empty, so it doubles as a smoke check.

options:
  --addr A         server address (default 127.0.0.1:7433)
  --clients N      concurrent connections (default 32)
  --requests N     total requests across all clients (default 3200)
  --rps R          open-loop target rate, requests/second across all
                   clients; 0 = closed loop (default 0)
  --query LINE     use this query line instead of the built-in mix
  --connect-timeout S  seconds to retry the initial connect (default 30)
  --refresh-writer PATH  append+commit segments to this served shard file
                   while the clients run (serve-while-ingesting); fails if
                   the commits never become visible to queries.  Repeat
                   for a trial-sharded catalog: each round appends the
                   same new layer to every listed window, which is when
                   the union can serve it
  --refresh-commits N    ingest rounds the writer makes (default 4)
  --refresh-every-ms MS  pause between ingest rounds (default 250)
  --expect-cache-hits    fail unless the server reports a nonzero
                   result-cache hit count after the run
  --expect-partial-hits  fail unless the server reports a nonzero
                   per-shard partial-cache hit count after the run
                   (trial-sharded catalogs only)
  --require-stats  fail (exit 1) when the post-run server stats/metrics
                   scrape cannot be fetched, instead of just warning —
                   set this in CI so a silently absent server-side
                   report cannot pass
  --trace-every N  send every Nth request per client with the `trace`
                   prefix (default 0 = never): the report then prints the
                   slowest traced request's execution profile
  --shutdown       send `shutdown` after the run, stopping the server

The report includes the server's own per-stage latency histograms
(queue wait, scan, batch execution) scraped via the `metrics` protocol
command — see docs/OBSERVABILITY.md for the stage taxonomy.";

/// Runs the serve command: binds the front-end and blocks until shutdown.
pub fn run_serve(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{SERVE_HELP}");
        return Ok(());
    }
    let front = bind_front_end(options)?;
    front
        .wait()
        .map_err(|e| format!("server terminated abnormally: {e}"))?;
    eprintln!("  server drained and stopped cleanly");
    Ok(())
}

/// Opens the catalog, starts the batching server and binds the TCP
/// listener (split from [`run_serve`] so tests can drive an
/// ephemeral-port instance).
pub(crate) fn bind_front_end(options: &Options) -> Result<TcpFrontEnd<StoreCatalog>, String> {
    let mut stores = options.get_all("store");
    let input = options.get("in", String::new())?;
    if !input.is_empty() {
        stores.push(input);
    }
    if stores.is_empty() {
        return Err(
            "serve needs at least one --store PATH (create one with `catrisk store write`)"
                .to_string(),
        );
    }
    let addr = options.get("addr", "127.0.0.1:7433".to_string())?;
    let config = ServerConfig {
        max_batch: options.get("max-batch", 64usize)?,
        batch_window: Duration::from_micros(options.get("window-us", 200u64)?),
        queue_depth: options.get("queue-depth", 1024usize)?,
        workers: options.get("workers", 2usize)?,
        cache_capacity: options.get("cache", 1024usize)?,
        partial_cache_capacity: options.get("partial-cache", 4096usize)?,
        metrics_threshold_us: options.get("metrics-threshold-us", 0u64)?,
        recorder_capacity: options.get("recorder-capacity", 256usize)?,
        trace_sample_every: options.get("trace-sample", 0u64)?,
        trace_capacity: options.get("trace-capacity", 256usize)?,
    };

    let catalog = StoreCatalog::open(&stores).map_err(|e| e.to_string())?;
    catalog.set_refresh_interval(Duration::from_millis(options.get("refresh-ms", 0u64)?));
    if catalog.shard_segments().iter().sum::<usize>() == 0 {
        return Err(format!(
            "catalog holds no committed segments across {} shard(s)",
            catalog.num_shards()
        ));
    }
    eprintln!(
        "  serving a {}-shard {}-axis catalog ({:.1} MB resident):",
        catalog.num_shards(),
        catalog.axis(),
        catalog.memory_bytes() as f64 / 1.0e6
    );
    for line in catalog.describe().lines() {
        eprintln!("    {line}");
    }
    let server = Server::new(catalog, config);
    let front =
        TcpFrontEnd::bind(server, &addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    // The bound address goes to stdout so scripts can capture it (it
    // differs from --addr when port 0 was requested).
    println!("{}", front.local_addr());
    eprintln!(
        "  listening on {} (max-batch {}, window {}us, queue depth {}, {} workers, cache {})",
        front.local_addr(),
        config.max_batch,
        config.batch_window.as_micros(),
        config.queue_depth,
        config.workers,
        config.cache_capacity
    );
    Ok(front)
}

/// Runs the loadgen command.
pub fn run_loadgen(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{LOADGEN_HELP}");
        return Ok(());
    }
    let loadgen_options = loadgen_options(options)?;
    let report = loadgen::run(&loadgen_options)?;
    println!("{report}");
    if report.ok == 0 {
        return Err("no successful replies".to_string());
    }
    if report.rows == 0 {
        return Err("replies held no result rows".to_string());
    }
    if report.errors > 0 {
        return Err(format!("{} requests failed", report.errors));
    }
    if let Some(ingest) = &report.ingest {
        if !ingest.visible {
            return Err(
                "segments committed during the run never became visible to queries".to_string(),
            );
        }
    }
    if options.has_flag("expect-cache-hits") {
        match &report.server_stats {
            Some(stats) if stats.cache_hits > 0 => {}
            Some(stats) => {
                return Err(format!(
                    "--expect-cache-hits: the server reported zero cache hits ({} misses)",
                    stats.cache_misses
                ));
            }
            None => return Err("--expect-cache-hits: could not fetch server stats".to_string()),
        }
    }
    if options.has_flag("expect-partial-hits") {
        match &report.server_stats {
            Some(stats) if stats.partial_hits > 0 => {}
            Some(stats) => {
                return Err(format!(
                    "--expect-partial-hits: the server reported zero partial-cache hits \
                     ({} shard-window rescans)",
                    stats.partial_misses
                ));
            }
            None => return Err("--expect-partial-hits: could not fetch server stats".to_string()),
        }
    }
    Ok(())
}

pub(crate) fn loadgen_options(options: &Options) -> Result<LoadgenOptions, String> {
    let mut loadgen_options = LoadgenOptions {
        addr: options.get("addr", "127.0.0.1:7433".to_string())?,
        clients: options.get("clients", 32usize)?,
        requests: options.get("requests", 3200usize)?,
        rps: options.get("rps", 0.0f64)?,
        connect_timeout_secs: options.get("connect-timeout", 30u64)?,
        shutdown: options.has_flag("shutdown"),
        refresh_writers: options.get_all("refresh-writer"),
        refresh_commits: options.get("refresh-commits", 4usize)?,
        refresh_every_ms: options.get("refresh-every-ms", 250u64)?,
        require_stats: options.has_flag("require-stats"),
        trace_every: options.get("trace-every", 0u64)?,
        ..LoadgenOptions::default()
    };
    let query = options.get("query", String::new())?;
    if !query.is_empty() {
        loadgen_options.queries = vec![query];
    }
    Ok(loadgen_options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_riskserve::WireReply;
    use std::io::{BufRead, BufReader, Write};

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn temp_store(name: &str) -> String {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-cli-serve-{}-{}.clm",
            std::process::id(),
            name
        ));
        path.to_string_lossy().into_owned()
    }

    fn write_small_store(out: &str, seed: &str) {
        super::super::store::run(&strings(&[
            "write",
            "--out",
            out,
            "--trials",
            "150",
            "--locations",
            "100",
            "--events",
            "2000",
            "--seed",
            seed,
            "--engine",
            "parallel",
        ]))
        .unwrap();
    }

    #[test]
    fn serve_and_loadgen_round_trip() {
        let out = temp_store("roundtrip");
        write_small_store(&out, "5");

        // Ephemeral port: bind the front-end the way `serve` does.
        let serve_options = Options::parse(&strings(&[
            "--in",
            &out,
            "--addr",
            "127.0.0.1:0",
            "--trace-sample",
            "1",
        ]))
        .unwrap();
        let front = bind_front_end(&serve_options).unwrap();
        let addr = front.local_addr().to_string();

        // Drive it the way `loadgen` does, including the shutdown line and
        // the cache-hit assertion (the mix repeats, so hits must occur).
        let loadgen_args = strings(&[
            "--addr",
            &addr,
            "--clients",
            "8",
            "--requests",
            "64",
            "--expect-cache-hits",
            "--require-stats",
            "--trace-every",
            "4",
            "--shutdown",
        ]);
        run_loadgen(&Options::parse(&loadgen_args).unwrap()).unwrap();
        front.wait().unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn serve_catalog_refreshes_while_loadgen_ingests() {
        let shard_a = temp_store("catalog-a");
        let shard_b = temp_store("catalog-b");
        write_small_store(&shard_a, "5");
        write_small_store(&shard_b, "7");

        let serve_options = Options::parse(&strings(&[
            "--store",
            &shard_a,
            "--store",
            &shard_b,
            "--addr",
            "127.0.0.1:0",
        ]))
        .unwrap();
        let front = bind_front_end(&serve_options).unwrap();
        assert_eq!(front.server().provider().num_shards(), 2);
        let addr = front.local_addr().to_string();

        // Mid-run, the loadgen ingest writer appends + commits to shard B;
        // run_loadgen fails unless those segments become visible.
        let loadgen_args = strings(&[
            "--addr",
            &addr,
            "--clients",
            "4",
            "--requests",
            "48",
            "--refresh-writer",
            &shard_b,
            "--refresh-commits",
            "2",
            "--refresh-every-ms",
            "20",
            "--expect-cache-hits",
            "--shutdown",
        ]);
        run_loadgen(&Options::parse(&loadgen_args).unwrap()).unwrap();
        front.wait().unwrap();
        let _ = std::fs::remove_file(&shard_a);
        let _ = std::fs::remove_file(&shard_b);
    }

    #[test]
    fn serve_trial_sharded_catalog_reuses_partials_under_ingest() {
        use catrisk_riskserve::ShardAxis;

        // One store, split into two trial windows the server stitches.
        let whole = temp_store("trial");
        write_small_store(&whole, "5");
        let prefix = whole.strip_suffix(".clm").unwrap().to_string();
        super::super::store::run(&strings(&["split", "--in", &whole, "--shards", "2"])).unwrap();
        let parts: Vec<String> = (0..2).map(|k| format!("{prefix}-part{k}.clm")).collect();

        let serve_options = Options::parse(&strings(&[
            "--store",
            &parts[0],
            "--store",
            &parts[1],
            "--addr",
            "127.0.0.1:0",
        ]))
        .unwrap();
        let front = bind_front_end(&serve_options).unwrap();
        assert_eq!(front.server().provider().axis(), ShardAxis::Trial);
        let addr = front.local_addr().to_string();

        // The ingest round appends the same layer to both windows,
        // staggered — the gap is where the untouched window's cached
        // partials must keep answering (asserted via the stats the
        // loadgen fetches).
        let loadgen_args = strings(&[
            "--addr",
            &addr,
            "--clients",
            "4",
            "--requests",
            "120",
            "--rps",
            "300",
            "--refresh-writer",
            &parts[0],
            "--refresh-writer",
            &parts[1],
            "--refresh-commits",
            "1",
            "--refresh-every-ms",
            "120",
            "--expect-cache-hits",
            "--expect-partial-hits",
            "--require-stats",
            "--shutdown",
        ]);
        run_loadgen(&Options::parse(&loadgen_args).unwrap()).unwrap();
        front.wait().unwrap();
        let _ = std::fs::remove_file(&whole);
        for part in &parts {
            let _ = std::fs::remove_file(part);
        }
    }

    #[test]
    fn serve_speaks_the_line_protocol() {
        let out = temp_store("protocol");
        write_small_store(&out, "5");
        let serve_options =
            Options::parse(&strings(&["--store", &out, "--addr", "127.0.0.1:0"])).unwrap();
        let front = bind_front_end(&serve_options).unwrap();

        let stream = std::net::TcpStream::connect(front.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut lines = BufReader::new(stream).lines();
        writeln!(
            writer,
            "select mean, tvar(0.9) where peril=HU|FL group by region"
        )
        .unwrap();
        let reply = WireReply::from_line(&lines.next().unwrap().unwrap()).unwrap();
        assert!(reply.ok, "{reply:?}");
        assert!(!reply.result.unwrap().rows.is_empty());
        writeln!(writer, "shutdown").unwrap();
        let ack = WireReply::from_line(&lines.next().unwrap().unwrap()).unwrap();
        assert_eq!(ack.kind, "shutting-down");
        front.wait().unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn serve_errors_are_graceful() {
        assert!(
            run_serve(&Options::parse(&strings(&[])).unwrap()).is_err(),
            "--store is required"
        );
        assert!(
            run_serve(&Options::parse(&strings(&["--in", "/nonexistent/x.clm"])).unwrap()).is_err()
        );
        // An all-empty (never committed) catalog is rejected up front.
        let out = temp_store("empty");
        drop(catrisk_riskstore::StoreWriter::create(&out, 8).unwrap());
        assert!(run_serve(&Options::parse(&strings(&["--store", &out])).unwrap()).is_err());
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn loadgen_errors_are_graceful() {
        // Nothing listening on a reserved port: typed error, not a panic.
        let options = Options::parse(&strings(&[
            "--addr",
            "127.0.0.1:1",
            "--connect-timeout",
            "0",
            "--requests",
            "4",
        ]))
        .unwrap();
        assert!(run_loadgen(&options).is_err());
    }

    #[test]
    fn help_flags_print() {
        run_serve(&Options::parse(&strings(&["--help"])).unwrap()).unwrap();
        run_loadgen(&Options::parse(&strings(&["--help"])).unwrap()).unwrap();
    }
}
