//! Derive macros for the vendored serde shim.
//!
//! Parses the deriving item directly from the proc-macro token stream (no
//! `syn`/`quote`, which are unavailable offline) and emits value-based
//! `Serialize` / `Deserialize` impls against `serde::value::Value`.
//!
//! Supported shapes: structs with named fields, tuple structs, unit structs,
//! and enums whose variants are unit, tuple or struct-like — all in serde's
//! externally-tagged representation.  The field attributes understood are
//! `#[serde(with = "module")]` and `#[serde(default)]` (a missing key
//! deserializes to `Default::default()` instead of erroring, which is how
//! the wire protocol stays forward-compatible).  Generic types are not
//! supported.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    with: Option<String>,
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// What a field's `#[serde(...)]` attributes asked for.
#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
}

/// Extracts `with = "module"` and the bare `default` flag from the tokens
/// of a `#[serde(...)]` attribute bracket group, if present.
fn serde_attrs_of_attr(attr: &Group, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = attr.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let inner = match tokens.get(1) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return,
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut i = 0;
    while i < inner.len() {
        if let TokenTree::Ident(id) = &inner[i] {
            match id.to_string().as_str() {
                "with" => {
                    if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                        (inner.get(i + 1), inner.get(i + 2))
                    {
                        if eq.as_char() == '=' && attrs.with.is_none() {
                            let text = lit.to_string();
                            attrs.with = Some(text.trim_matches('"').to_string());
                        }
                    }
                }
                "default" => {
                    // Only the bare form: `default = "path"` would need a
                    // function call and is not supported by the shim.
                    match inner.get(i + 1) {
                        Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                            "serde shim derive: only the bare `#[serde(default)]` is supported"
                        ),
                        _ => attrs.default = true,
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Skips a run of outer attributes starting at `i`, returning the index
/// after them and the accumulated `#[serde(...)]` field attributes.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, FieldAttrs) {
    let mut attrs = FieldAttrs::default();
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    serde_attrs_of_attr(g, &mut attrs);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    (i, attrs)
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advances past one type (or expression) until a top-level comma, tracking
/// angle-bracket depth so commas inside generics do not terminate early.
fn skip_until_comma(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i64 = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Parses the fields of a brace-delimited named-field group.
fn parse_named_fields(group: &Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, attrs) = skip_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        i = skip_vis(&tokens, i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected field name, found `{other}`"),
        };
        i += 1; // field name
        i += 1; // ':'
        i = skip_until_comma(&tokens, i);
        fields.push(Field {
            name,
            with: attrs.with,
            default: attrs.default,
        });
    }
    fields
}

/// Counts the fields of a parenthesised tuple group.
fn count_tuple_fields(group: &Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        count += 1;
        i = skip_until_comma(&tokens, i);
    }
    count
}

fn parse_variants(group: &Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _) = skip_attrs(&tokens, i);
        i = next;
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, found `{other}`"),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        i = skip_until_comma(&tokens, i);
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut is_enum = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive: generic types are not supported (type `{name}`)");
        }
    }
    if is_enum {
        let group = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
            other => panic!("serde shim derive: expected enum body, found {other:?}"),
        };
        Item::Enum {
            name,
            variants: parse_variants(group),
        }
    } else {
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g))
            }
            _ => Shape::Unit,
        };
        Item::Struct { name, shape }
    }
}

// ---------------------------------------------------------------------------
// Code generation: Serialize
// ---------------------------------------------------------------------------

const ERR: &str = "<D::Error as ::serde::de::Error>::custom";

/// Expression building a `Value` from an expression of a field's type,
/// honouring `#[serde(with = "...")]`.
fn field_to_value(expr: &str, with: &Option<String>) -> String {
    match with {
        Some(module) => format!(
            "match {module}::serialize({expr}, ::serde::value::ValueSerializer) \
             {{ Ok(__v) => __v, Err(__e) => match __e {{}} }}"
        ),
        None => format!("::serde::value::to_value({expr})"),
    }
}

fn named_fields_to_map(fields: &[Field], access: impl Fn(&Field) -> String) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{}\".to_string(), {})",
                f.name,
                field_to_value(&access(f), &f.with)
            )
        })
        .collect();
    format!("::serde::value::Value::Map(vec![{}])", entries.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let value = match shape {
                Shape::Named(fields) => {
                    named_fields_to_map(fields, |f| format!("&self.{}", f.name))
                }
                Shape::Tuple(1) => "::serde::value::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::value::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::value::Value::Seq(vec![{}])", items.join(", "))
                }
                Shape::Unit => "::serde::value::Value::Null".to_string(),
            };
            (name, value)
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vname} => ::serde::value::Value::Str(\"{vname}\".to_string())"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vname}(__f0) => ::serde::value::Value::Map(vec![\
                             (\"{vname}\".to_string(), ::serde::value::to_value(__f0))])"
                        ),
                        Shape::Tuple(n) => {
                            let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::value::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vname}({}) => ::serde::value::Value::Map(vec![\
                                 (\"{vname}\".to_string(), ::serde::value::Value::Seq(vec![{}]))])",
                                binders.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binders: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let map = named_fields_to_map(fields, |f| f.name.clone());
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::value::Value::Map(vec![\
                                 (\"{vname}\".to_string(), {map})])",
                                binders.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(",\n")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S) \
                 -> ::std::result::Result<S::Ok, S::Error> {{\n\
                 let __value = {body};\n\
                 serializer.serialize_value(__value)\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Code generation: Deserialize
// ---------------------------------------------------------------------------

/// Expression converting a bound `Value` named `__v` into a field's type,
/// honouring `#[serde(with = "...")]`.
fn field_from_value(with: &Option<String>) -> String {
    match with {
        Some(module) => format!(
            "{module}::deserialize(::serde::value::ValueDeserializer::new(__v)).map_err({ERR})?"
        ),
        None => format!("::serde::value::from_value(__v).map_err({ERR})?"),
    }
}

/// Statements constructing `{name}` (a struct or enum-variant path with
/// named fields) from an ordered map bound to `__fields`.
fn named_struct_from_map(path: &str, fields: &[Field]) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.default {
                format!(
                    "{}: {{ match ::serde::value::take_entry_opt(&mut __fields, \"{}\") {{ \
                     ::std::option::Option::Some(__v) => {{ {} }}, \
                     ::std::option::Option::None => ::std::default::Default::default(), \
                     }} }}",
                    f.name,
                    f.name,
                    field_from_value(&f.with)
                )
            } else {
                format!(
                    "{}: {{ let __v = ::serde::value::take_entry(&mut __fields, \"{}\")\
                     .map_err({ERR})?; {} }}",
                    f.name,
                    f.name,
                    field_from_value(&f.with)
                )
            }
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

/// Statements constructing `{path}` (a tuple struct or tuple enum-variant
/// path) of arity `n` from a sequence bound to `__items`.
fn tuple_from_seq(path: &str, n: usize) -> String {
    let inits: Vec<String> = (0..n)
        .map(|_| {
            format!(
                "{{ let __v = __items.next().expect(\"length checked\"); \
                 ::serde::value::from_value(__v).map_err({ERR})? }}"
            )
        })
        .collect();
    format!(
        "{{ let mut __items = __items.into_iter(); {path}({}) }}",
        inits.join(", ")
    )
}

fn expect_map(context: &str) -> String {
    format!(
        "let mut __fields = match __value {{\n\
             ::serde::value::Value::Map(__m) => __m,\n\
             __other => return Err({ERR}(format!(\
                 \"expected a map for {context}, found {{}}\", __other.kind()))),\n\
         }};"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => format!(
                    "{}\nOk({})",
                    expect_map(name),
                    named_struct_from_map(name, fields)
                ),
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::value::from_value(__value).map_err({ERR})?))")
                }
                Shape::Tuple(n) => format!(
                    "let __items = match __value {{\n\
                         ::serde::value::Value::Seq(__s) if __s.len() == {n} => __s,\n\
                         __other => return Err({ERR}(format!(\
                             \"expected a sequence of length {n} for {name}, found {{}}\",\
                             __other.kind()))),\n\
                     }};\n\
                     Ok({})",
                    tuple_from_seq(name, *n)
                ),
                Shape::Unit => format!("let _ = __value; Ok({name})"),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| format!("\"{0}\" => Ok({name}::{0})", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vname = &v.name;
                    let build = match &v.shape {
                        Shape::Tuple(1) => format!(
                            "Ok({name}::{vname}(\
                             ::serde::value::from_value(__payload).map_err({ERR})?))"
                        ),
                        Shape::Tuple(n) => format!(
                            "{{ let __items = match __payload {{\n\
                                 ::serde::value::Value::Seq(__s) if __s.len() == {n} => __s,\n\
                                 __other => return Err({ERR}(format!(\
                                     \"expected a sequence of length {n} for variant {vname}, \
                                      found {{}}\", __other.kind()))),\n\
                             }};\n\
                             Ok({}) }}",
                            tuple_from_seq(&format!("{name}::{vname}"), *n)
                        ),
                        Shape::Named(fields) => format!(
                            "{{ let __value = __payload; {}\nOk({}) }}",
                            expect_map(&format!("variant {vname}")),
                            named_struct_from_map(&format!("{name}::{vname}"), fields)
                        ),
                        Shape::Unit => unreachable!(),
                    };
                    format!("\"{vname}\" => {build}")
                })
                .collect();
            let body = format!(
                "match __value {{\n\
                     ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit}\n\
                         __other => Err({ERR}(format!(\
                             \"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::value::Value::Map(mut __m) if __m.len() == 1 => {{\n\
                         let (__tag, __payload) = __m.remove(0);\n\
                         match __tag.as_str() {{\n\
                             {data}\n\
                             __other => Err({ERR}(format!(\
                                 \"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err({ERR}(format!(\
                         \"expected a variant of {name}, found {{}}\", __other.kind()))),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    unit_arms.join(",\n") + ","
                },
                data = if data_arms.is_empty() {
                    String::new()
                } else {
                    data_arms.join(",\n") + ","
                },
            );
            (name, body)
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D) \
                 -> ::std::result::Result<Self, D::Error> {{\n\
                 let __value = deserializer.take_value()?;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Derives the shim's `Serialize` for structs and enums.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Serialize impl")
}

/// Derives the shim's `Deserialize` for structs and enums.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive: generated invalid Deserialize impl")
}
