//! Memory spaces and traffic counters.

use serde::{Deserialize, Serialize};

/// The memory spaces of the simulated device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemorySpace {
    /// Large, high-latency off-chip memory shared by all SMs.
    Global,
    /// Small, low-latency on-chip memory shared by the threads of one block.
    Shared,
    /// Small read-only cached memory broadcast to all threads.
    Constant,
}

/// Counts of memory operations recorded during a kernel execution.
///
/// Counters distinguish reads from writes for global memory (writes are not
/// latency-bound but still consume bandwidth), and count accesses plus bytes
/// for every space.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryCounters {
    /// Number of global-memory read accesses.
    pub global_reads: u64,
    /// Number of global-memory write accesses.
    pub global_writes: u64,
    /// Bytes read from global memory.
    pub global_read_bytes: u64,
    /// Bytes written to global memory.
    pub global_write_bytes: u64,
    /// Number of shared-memory accesses (reads and writes).
    pub shared_accesses: u64,
    /// Bytes moved through shared memory.
    pub shared_bytes: u64,
    /// Number of constant-memory accesses.
    pub constant_accesses: u64,
    /// Shared-memory accesses that had to spill to global memory because the
    /// requested shared allocation exceeded the hardware budget.
    pub spilled_accesses: u64,
    /// Arithmetic operations executed.
    pub compute_ops: u64,
}

impl MemoryCounters {
    /// An empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a global read of `bytes` bytes.
    #[inline]
    pub fn global_read(&mut self, bytes: u64) {
        self.global_reads += 1;
        self.global_read_bytes += bytes;
    }

    /// Records a global write of `bytes` bytes.
    #[inline]
    pub fn global_write(&mut self, bytes: u64) {
        self.global_writes += 1;
        self.global_write_bytes += bytes;
    }

    /// Records a shared-memory access of `bytes` bytes.
    #[inline]
    pub fn shared_access(&mut self, bytes: u64) {
        self.shared_accesses += 1;
        self.shared_bytes += bytes;
    }

    /// Records a constant-memory access.
    #[inline]
    pub fn constant_access(&mut self) {
        self.constant_accesses += 1;
    }

    /// Records `ops` arithmetic operations.
    #[inline]
    pub fn compute(&mut self, ops: u64) {
        self.compute_ops += ops;
    }

    /// Total global accesses (reads + writes).
    pub fn global_accesses(&self) -> u64 {
        self.global_reads + self.global_writes
    }

    /// Total bytes moved through global memory.
    pub fn global_bytes(&self) -> u64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &MemoryCounters) {
        self.global_reads += other.global_reads;
        self.global_writes += other.global_writes;
        self.global_read_bytes += other.global_read_bytes;
        self.global_write_bytes += other.global_write_bytes;
        self.shared_accesses += other.shared_accesses;
        self.shared_bytes += other.shared_bytes;
        self.constant_accesses += other.constant_accesses;
        self.spilled_accesses += other.spilled_accesses;
        self.compute_ops += other.compute_ops;
    }

    /// Converts a fraction of the shared-memory traffic into spilled
    /// (global) traffic; used when a launch requests more shared memory than
    /// the device provides.
    pub fn spill_shared(&mut self, fraction: f64) {
        let fraction = fraction.clamp(0.0, 1.0);
        let spilled = (self.shared_accesses as f64 * fraction).round() as u64;
        let spilled_bytes = (self.shared_bytes as f64 * fraction).round() as u64;
        self.spilled_accesses += spilled;
        self.shared_accesses -= spilled.min(self.shared_accesses);
        self.shared_bytes -= spilled_bytes.min(self.shared_bytes);
        // Spilled accesses hit global memory: half reads, half writes is a
        // reasonable stand-in for load/store pairs on the staging buffers.
        self.global_reads += spilled / 2;
        self.global_writes += spilled - spilled / 2;
        self.global_read_bytes += spilled_bytes / 2;
        self.global_write_bytes += spilled_bytes - spilled_bytes / 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = MemoryCounters::new();
        c.global_read(8);
        c.global_read(8);
        c.global_write(4);
        c.shared_access(8);
        c.constant_access();
        c.compute(10);
        assert_eq!(c.global_reads, 2);
        assert_eq!(c.global_writes, 1);
        assert_eq!(c.global_accesses(), 3);
        assert_eq!(c.global_bytes(), 20);
        assert_eq!(c.shared_accesses, 1);
        assert_eq!(c.constant_accesses, 1);
        assert_eq!(c.compute_ops, 10);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = MemoryCounters::new();
        a.global_read(8);
        a.shared_access(16);
        let mut b = MemoryCounters::new();
        b.global_write(8);
        b.compute(5);
        b.constant_access();
        a.merge(&b);
        assert_eq!(a.global_accesses(), 2);
        assert_eq!(a.global_bytes(), 16);
        assert_eq!(a.shared_bytes, 16);
        assert_eq!(a.compute_ops, 5);
        assert_eq!(a.constant_accesses, 1);
    }

    #[test]
    fn spill_moves_traffic_to_global() {
        let mut c = MemoryCounters::new();
        for _ in 0..100 {
            c.shared_access(8);
        }
        c.spill_shared(0.25);
        assert_eq!(c.spilled_accesses, 25);
        assert_eq!(c.shared_accesses, 75);
        assert_eq!(c.global_accesses(), 25);
        assert_eq!(c.global_bytes(), 200);
        // Full spill.
        let mut c2 = MemoryCounters::new();
        for _ in 0..10 {
            c2.shared_access(8);
        }
        c2.spill_shared(2.0);
        assert_eq!(c2.shared_accesses, 0);
        assert_eq!(c2.spilled_accesses, 10);
        // No spill.
        let mut c3 = MemoryCounters::new();
        c3.shared_access(8);
        c3.spill_shared(0.0);
        assert_eq!(c3.spilled_accesses, 0);
        assert_eq!(c3.shared_accesses, 1);
    }
}
