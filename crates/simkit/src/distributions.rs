//! Probability distributions implemented from first principles.
//!
//! The catastrophe-model substrate and the Year Event Table generator need
//! a small set of classical distributions:
//!
//! * **frequency** — how many events of a given kind occur in a contractual
//!   year: [`Poisson`], [`NegativeBinomial`], [`Bernoulli`];
//! * **severity** — how large a loss is given that an event occurred:
//!   [`LogNormal`], [`Pareto`], [`Gamma`], [`Beta`] (damage ratios),
//!   [`Exponential`];
//! * **auxiliary** — [`Uniform`], [`Normal`], [`Discrete`] and
//!   [`Empirical`] distributions used by the generators.
//!
//! All samplers draw from a [`SimRng`] and implement the [`Distribution`]
//! trait so callers can be generic over the severity model.

use crate::rng::SimRng;
use crate::{ParamError, Result};

/// A distribution from which values of type `T` can be sampled.
pub trait Distribution<T> {
    /// Draws one sample using the provided generator.
    fn sample(&self, rng: &mut SimRng) -> T;

    /// Draws `n` samples into a vector.
    fn sample_n(&self, rng: &mut SimRng, n: usize) -> Vec<T>
    where
        T: Sized,
    {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Continuous distributions
// ---------------------------------------------------------------------------

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite()) || lo >= hi {
            return Err(ParamError::new(format!(
                "Uniform requires lo < hi, got [{lo}, {hi})"
            )));
        }
        Ok(Self { lo, hi })
    }

    /// Lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }
}

impl Distribution<f64> for Uniform {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.lo + (self.hi - self.lo) * rng.uniform()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError::new(format!(
                "Exponential rate must be > 0, got {lambda}"
            )));
        }
        Ok(Self { lambda })
    }

    /// Rate parameter λ.
    pub fn rate(&self) -> f64 {
        self.lambda
    }

    /// Mean of the distribution (1/λ).
    pub fn mean(&self) -> f64 {
        1.0 / self.lambda
    }
}

impl Distribution<f64> for Exponential {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        -rng.uniform_open().ln() / self.lambda
    }
}

/// Standard normal distribution scaled to mean `mu`, standard deviation `sigma`.
///
/// Sampling uses the Marsaglia polar method, which requires no trigonometric
/// functions and rejects ~21% of candidate pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard deviation.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !sigma.is_finite() || sigma < 0.0 || !mu.is_finite() {
            return Err(ParamError::new(format!(
                "Normal requires sigma >= 0, got mu={mu} sigma={sigma}"
            )));
        }
        Ok(Self { mu, sigma })
    }

    /// Mean μ.
    pub fn mean(&self) -> f64 {
        self.mu
    }

    /// Standard deviation σ.
    pub fn std_dev(&self) -> f64 {
        self.sigma
    }

    /// Draws a standard normal variate.
    pub fn standard(rng: &mut SimRng) -> f64 {
        loop {
            let u = 2.0 * rng.uniform() - 1.0;
            let v = 2.0 * rng.uniform() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.mu + self.sigma * Normal::standard(rng)
    }
}

/// Log-normal distribution parameterised by the mean and standard deviation
/// of the underlying normal (`mu`, `sigma`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with log-space parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Self {
            normal: Normal::new(mu, sigma)?,
        })
    }

    /// Creates a log-normal distribution matching a target arithmetic mean
    /// and coefficient of variation (std/mean), which is how loss severities
    /// are usually specified in catastrophe modelling.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Result<Self> {
        if !(mean.is_finite() && mean > 0.0 && cv.is_finite() && cv >= 0.0) {
            return Err(ParamError::new(format!(
                "LogNormal::from_mean_cv requires mean > 0, cv >= 0, got mean={mean} cv={cv}"
            )));
        }
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        Self::new(mu, sigma2.sqrt())
    }

    /// Arithmetic mean `exp(mu + sigma^2/2)`.
    pub fn mean(&self) -> f64 {
        (self.normal.mean() + 0.5 * self.normal.std_dev().powi(2)).exp()
    }
}

impl Distribution<f64> for LogNormal {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.normal.sample(rng).exp()
    }
}

/// Gamma distribution with shape `k` and scale `theta`.
///
/// Uses the Marsaglia–Tsang squeeze method for `k >= 1` and the Ahrens–Dieter
/// boost `Gamma(k) = Gamma(k+1) * U^(1/k)` for `k < 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and scale.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !(shape.is_finite() && shape > 0.0 && scale.is_finite() && scale > 0.0) {
            return Err(ParamError::new(format!(
                "Gamma requires shape > 0 and scale > 0, got {shape}, {scale}"
            )));
        }
        Ok(Self { shape, scale })
    }

    /// Shape parameter k.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter θ.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean kθ.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    fn sample_standard(shape: f64, rng: &mut SimRng) -> f64 {
        if shape < 1.0 {
            let u = rng.uniform_open();
            return Self::sample_standard(shape + 1.0, rng) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = Normal::standard(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.uniform_open();
            if u < 1.0 - 0.0331 * x.powi(4) {
                return d * v;
            }
            if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v;
            }
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        Self::sample_standard(self.shape, rng) * self.scale
    }
}

/// Beta distribution on `[0, 1]`, used for damage ratios in the
/// vulnerability module.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// Creates a beta distribution with the given shape parameters.
    pub fn new(alpha: f64, beta: f64) -> Result<Self> {
        if !(alpha.is_finite() && alpha > 0.0 && beta.is_finite() && beta > 0.0) {
            return Err(ParamError::new(format!(
                "Beta requires alpha > 0 and beta > 0, got {alpha}, {beta}"
            )));
        }
        Ok(Self { alpha, beta })
    }

    /// Creates a beta distribution matching a target mean and standard
    /// deviation, the parameterisation used for secondary uncertainty of
    /// damage ratios.  The requested standard deviation is clamped to the
    /// maximum feasible value for the mean.
    pub fn from_mean_sd(mean: f64, sd: f64) -> Result<Self> {
        if !(0.0 < mean && mean < 1.0) {
            return Err(ParamError::new(format!(
                "Beta::from_mean_sd requires 0 < mean < 1, got {mean}"
            )));
        }
        let max_var = mean * (1.0 - mean);
        let var = (sd * sd).min(max_var * 0.99).max(1e-12);
        let nu = mean * (1.0 - mean) / var - 1.0;
        Self::new(mean * nu, (1.0 - mean) * nu)
    }

    /// Mean α / (α + β).
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }
}

impl Distribution<f64> for Beta {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        // Ratio of gammas: X ~ Gamma(alpha), Y ~ Gamma(beta) => X/(X+Y) ~ Beta.
        let x = Gamma::sample_standard(self.alpha, rng);
        let y = Gamma::sample_standard(self.beta, rng);
        if x + y == 0.0 {
            0.5
        } else {
            x / (x + y)
        }
    }
}

/// Pareto (type I) distribution with scale `x_m` and shape `alpha`.
///
/// The canonical heavy-tailed severity model for large catastrophe losses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    scale: f64,
    shape: f64,
}

impl Pareto {
    /// Creates a Pareto distribution with the given scale (minimum) and shape.
    pub fn new(scale: f64, shape: f64) -> Result<Self> {
        if !(scale.is_finite() && scale > 0.0 && shape.is_finite() && shape > 0.0) {
            return Err(ParamError::new(format!(
                "Pareto requires scale > 0 and shape > 0, got {scale}, {shape}"
            )));
        }
        Ok(Self { scale, shape })
    }

    /// Scale (minimum value) x_m.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Tail index α.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Mean, infinite when `shape <= 1`.
    pub fn mean(&self) -> f64 {
        if self.shape <= 1.0 {
            f64::INFINITY
        } else {
            self.shape * self.scale / (self.shape - 1.0)
        }
    }
}

impl Distribution<f64> for Pareto {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale / rng.uniform_open().powf(1.0 / self.shape)
    }
}

// ---------------------------------------------------------------------------
// Discrete distributions
// ---------------------------------------------------------------------------

/// Bernoulli distribution returning `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution with success probability `p`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ParamError::new(format!(
                "Bernoulli requires 0 <= p <= 1, got {p}"
            )));
        }
        Ok(Self { p })
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample(&self, rng: &mut SimRng) -> bool {
        rng.uniform() < self.p
    }
}

/// Poisson distribution with mean `lambda`.
///
/// Small means use Knuth multiplication; large means use the PTRS
/// transformed-rejection sampler (Hörmann 1993), which is O(1) per draw.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Switch point between the Knuth and PTRS samplers.
    const PTRS_THRESHOLD: f64 = 10.0;

    /// Creates a Poisson distribution with the given mean.
    pub fn new(lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda >= 0.0) {
            return Err(ParamError::new(format!(
                "Poisson requires lambda >= 0, got {lambda}"
            )));
        }
        Ok(Self { lambda })
    }

    /// Mean λ.
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    fn sample_knuth(&self, rng: &mut SimRng) -> u64 {
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.uniform_open();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    fn sample_ptrs(&self, rng: &mut SimRng) -> u64 {
        // Hörmann's PTRS (transformed rejection) algorithm.
        let lam = self.lambda;
        let log_lam = lam.ln();
        let b = 0.931 + 2.53 * lam.sqrt();
        let a = -0.059 + 0.02483 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        loop {
            let u = rng.uniform() - 0.5;
            let v = rng.uniform_open();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + lam + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let lhs = v.ln() + inv_alpha.ln() - (a / (us * us) + b).ln();
            let rhs = k * log_lam - lam - ln_factorial(k as u64);
            if lhs <= rhs {
                return k as u64;
            }
        }
    }
}

impl Distribution<u64> for Poisson {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.lambda == 0.0 {
            0
        } else if self.lambda < Self::PTRS_THRESHOLD {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
}

/// Negative binomial distribution with `r` failures and success probability `p`,
/// sampled as a Gamma–Poisson mixture.  Used to model over-dispersed
/// (clustered) annual event frequencies such as hurricane seasons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NegativeBinomial {
    r: f64,
    p: f64,
}

impl NegativeBinomial {
    /// Creates a negative binomial distribution with dispersion `r` and
    /// success probability `p`.
    pub fn new(r: f64, p: f64) -> Result<Self> {
        if !(r.is_finite() && r > 0.0 && p > 0.0 && p < 1.0) {
            return Err(ParamError::new(format!(
                "NegativeBinomial requires r > 0 and 0 < p < 1, got r={r}, p={p}"
            )));
        }
        Ok(Self { r, p })
    }

    /// Creates a negative binomial matching a target mean and variance
    /// (requires `variance > mean`, otherwise prefer [`Poisson`]).
    pub fn from_mean_variance(mean: f64, variance: f64) -> Result<Self> {
        if !(mean > 0.0 && variance > mean) {
            return Err(ParamError::new(format!(
                "NegativeBinomial requires variance > mean > 0, got mean={mean}, var={variance}"
            )));
        }
        let p = mean / variance;
        let r = mean * p / (1.0 - p);
        Self::new(r, p)
    }

    /// Mean r(1-p)/p.
    pub fn mean(&self) -> f64 {
        self.r * (1.0 - self.p) / self.p
    }

    /// Variance r(1-p)/p².
    pub fn variance(&self) -> f64 {
        self.mean() / self.p
    }
}

impl Distribution<u64> for NegativeBinomial {
    fn sample(&self, rng: &mut SimRng) -> u64 {
        // Gamma-Poisson mixture: lambda ~ Gamma(r, (1-p)/p), N | lambda ~ Poisson(lambda).
        let scale = (1.0 - self.p) / self.p;
        let lambda = Gamma::new(self.r, scale).expect("validated").sample(rng);
        Poisson::new(lambda).expect("lambda >= 0").sample(rng)
    }
}

/// Discrete distribution over `0..weights.len()` with the given relative weights.
///
/// Sampling is O(n) per draw; for hot paths use
/// [`crate::sampling::AliasTable`] which is O(1).
#[derive(Debug, Clone, PartialEq)]
pub struct Discrete {
    cumulative: Vec<f64>,
}

impl Discrete {
    /// Creates a discrete distribution from non-negative weights.
    pub fn new(weights: &[f64]) -> Result<Self> {
        if weights.is_empty() {
            return Err(ParamError::new("Discrete requires at least one weight"));
        }
        if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return Err(ParamError::new(
                "Discrete weights must be finite and non-negative",
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(ParamError::new("Discrete weights must not all be zero"));
        }
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        Ok(Self { cumulative })
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when the distribution has no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

impl Distribution<usize> for Discrete {
    fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.uniform();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

/// Empirical distribution that resamples uniformly from observed values.
#[derive(Debug, Clone, PartialEq)]
pub struct Empirical {
    values: Vec<f64>,
}

impl Empirical {
    /// Creates an empirical distribution from a non-empty sample.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(ParamError::new("Empirical requires at least one value"));
        }
        Ok(Self { values })
    }

    /// Underlying sample values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl Distribution<f64> for Empirical {
    fn sample(&self, rng: &mut SimRng) -> f64 {
        self.values[rng.below(self.values.len() as u64) as usize]
    }
}

/// Natural log of `n!` via Stirling's series for large `n`, exact for small `n`.
fn ln_factorial(n: u64) -> f64 {
    const TABLE: [f64; 16] = [
        0.0,
        0.0,
        std::f64::consts::LN_2,
        1.791_759_469_228_055,
        3.178_053_830_347_946,
        4.787_491_742_782_046,
        6.579_251_212_010_101,
        8.525_161_361_065_415,
        10.604_602_902_745_25,
        12.801_827_480_081_469,
        15.104_412_573_075_516,
        17.502_307_845_873_887,
        19.987_214_495_661_885,
        22.552_163_853_123_42,
        25.191_221_182_738_68,
        27.899_271_383_840_89,
    ];
    if (n as usize) < TABLE.len() {
        return TABLE[n as usize];
    }
    let x = (n + 1) as f64;
    // Stirling's approximation with correction terms.
    (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
        - 1.0 / (360.0 * x.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngFactory;
    use crate::stats::RunningStats;

    fn stats_of<D: Distribution<f64>>(d: &D, n: usize, seed: u64) -> RunningStats {
        let mut rng = RngFactory::new(seed).stream(0);
        let mut s = RunningStats::new();
        for _ in 0..n {
            s.push(d.sample(&mut rng));
        }
        s
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0).unwrap();
        let s = stats_of(&d, 50_000, 1);
        assert!(s.min() >= 2.0 && s.max() < 6.0);
        assert!((s.mean() - 4.0).abs() < 0.05);
        assert!(Uniform::new(3.0, 3.0).is_err());
        assert!(Uniform::new(f64::NAN, 3.0).is_err());
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(0.25).unwrap();
        let s = stats_of(&d, 100_000, 2);
        assert!((s.mean() - 4.0).abs() < 0.1, "mean {}", s.mean());
        assert!(Exponential::new(0.0).is_err());
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 3.0).unwrap();
        let s = stats_of(&d, 200_000, 3);
        assert!((s.mean() - 10.0).abs() < 0.05);
        assert!((s.std_dev() - 3.0).abs() < 0.05);
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn lognormal_from_mean_cv() {
        let d = LogNormal::from_mean_cv(1000.0, 1.5).unwrap();
        let s = stats_of(&d, 400_000, 4);
        assert!(
            (s.mean() - 1000.0).abs() / 1000.0 < 0.05,
            "mean {}",
            s.mean()
        );
        assert!((d.mean() - 1000.0).abs() < 1e-6);
        assert!(LogNormal::from_mean_cv(-1.0, 0.5).is_err());
    }

    #[test]
    fn gamma_mean_shape_above_one() {
        let d = Gamma::new(3.0, 2.0).unwrap();
        let s = stats_of(&d, 200_000, 5);
        assert!((s.mean() - 6.0).abs() < 0.1);
    }

    #[test]
    fn gamma_mean_shape_below_one() {
        let d = Gamma::new(0.5, 2.0).unwrap();
        let s = stats_of(&d, 200_000, 6);
        assert!((s.mean() - 1.0).abs() < 0.05);
        assert!(Gamma::new(0.0, 1.0).is_err());
    }

    #[test]
    fn beta_mean_and_support() {
        let d = Beta::new(2.0, 5.0).unwrap();
        let s = stats_of(&d, 100_000, 7);
        assert!(s.min() >= 0.0 && s.max() <= 1.0);
        assert!((s.mean() - 2.0 / 7.0).abs() < 0.01);
    }

    #[test]
    fn beta_from_mean_sd() {
        let d = Beta::from_mean_sd(0.3, 0.1).unwrap();
        let s = stats_of(&d, 100_000, 8);
        assert!((s.mean() - 0.3).abs() < 0.01);
        assert!((s.std_dev() - 0.1).abs() < 0.01);
        // Infeasible sd is clamped rather than rejected.
        assert!(Beta::from_mean_sd(0.5, 10.0).is_ok());
        assert!(Beta::from_mean_sd(1.5, 0.1).is_err());
    }

    #[test]
    fn pareto_tail() {
        let d = Pareto::new(100.0, 2.5).unwrap();
        let s = stats_of(&d, 300_000, 9);
        assert!(s.min() >= 100.0);
        assert!((s.mean() - d.mean()).abs() / d.mean() < 0.05);
        assert!(Pareto::new(1.0, 1.0).unwrap().mean().is_infinite());
    }

    #[test]
    fn bernoulli_frequency() {
        let d = Bernoulli::new(0.2).unwrap();
        let mut rng = RngFactory::new(10).stream(0);
        let hits = (0..100_000).filter(|_| d.sample(&mut rng)).count();
        assert!((hits as f64 / 100_000.0 - 0.2).abs() < 0.01);
        assert!(Bernoulli::new(1.2).is_err());
    }

    #[test]
    fn poisson_small_lambda() {
        let d = Poisson::new(2.5).unwrap();
        let mut rng = RngFactory::new(11).stream(0);
        let mut s = RunningStats::new();
        for _ in 0..100_000 {
            s.push(d.sample(&mut rng) as f64);
        }
        assert!((s.mean() - 2.5).abs() < 0.05);
        assert!((s.variance() - 2.5).abs() < 0.1);
    }

    #[test]
    fn poisson_large_lambda_uses_ptrs() {
        let d = Poisson::new(900.0).unwrap();
        let mut rng = RngFactory::new(12).stream(0);
        let mut s = RunningStats::new();
        for _ in 0..50_000 {
            s.push(d.sample(&mut rng) as f64);
        }
        assert!((s.mean() - 900.0).abs() < 2.0, "mean {}", s.mean());
        assert!((s.variance() - 900.0).abs() < 40.0, "var {}", s.variance());
    }

    #[test]
    fn poisson_zero_lambda() {
        let d = Poisson::new(0.0).unwrap();
        let mut rng = RngFactory::new(13).stream(0);
        assert_eq!(d.sample(&mut rng), 0);
    }

    #[test]
    fn negative_binomial_moments() {
        let d = NegativeBinomial::from_mean_variance(6.0, 18.0).unwrap();
        let mut rng = RngFactory::new(14).stream(0);
        let mut s = RunningStats::new();
        for _ in 0..200_000 {
            s.push(d.sample(&mut rng) as f64);
        }
        assert!((s.mean() - 6.0).abs() < 0.1, "mean {}", s.mean());
        assert!((s.variance() - 18.0).abs() < 1.0, "var {}", s.variance());
        assert!(NegativeBinomial::from_mean_variance(5.0, 4.0).is_err());
    }

    #[test]
    fn discrete_respects_weights() {
        let d = Discrete::new(&[1.0, 0.0, 3.0]).unwrap();
        let mut rng = RngFactory::new(15).stream(0);
        let mut counts = [0u32; 3];
        for _ in 0..80_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = f64::from(counts[2]) / f64::from(counts[0]);
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
        assert!(Discrete::new(&[]).is_err());
        assert!(Discrete::new(&[0.0, 0.0]).is_err());
        assert!(Discrete::new(&[-1.0, 2.0]).is_err());
    }

    #[test]
    fn empirical_resamples_values() {
        let d = Empirical::new(vec![1.0, 2.0, 3.0]).unwrap();
        let mut rng = RngFactory::new(16).stream(0);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            assert!(v == 1.0 || v == 2.0 || v == 3.0);
        }
        assert!(Empirical::new(vec![]).is_err());
    }

    #[test]
    fn ln_factorial_matches_direct_computation() {
        for n in 0..20u64 {
            let direct: f64 = (1..=n).map(|k| (k as f64).ln()).sum();
            assert!((ln_factorial(n) - direct).abs() < 1e-9, "n={n}");
        }
        let direct: f64 = (1..=100u64).map(|k| (k as f64).ln()).sum();
        assert!((ln_factorial(100) - direct).abs() < 1e-6);
    }

    #[test]
    fn sample_n_returns_requested_count() {
        let d = Uniform::new(0.0, 1.0).unwrap();
        let mut rng = RngFactory::new(17).stream(0);
        assert_eq!(d.sample_n(&mut rng, 37).len(), 37);
    }
}
