//! Exceedance-probability (EP) curves.
//!
//! An EP curve gives, for each loss threshold, the annual probability that
//! the loss exceeds the threshold.  Built from year losses it is the AEP
//! (aggregate) curve; built from each trial's largest occurrence loss it is
//! the OEP (occurrence) curve.  PML at a return period `R` is the loss whose
//! exceedance probability is `1/R`.

use serde::{Deserialize, Serialize};

/// An empirical exceedance-probability curve over simulated losses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExceedanceCurve {
    /// Losses sorted in ascending order.
    sorted_losses: Vec<f64>,
}

impl ExceedanceCurve {
    /// Builds a curve from per-trial losses (any order).
    pub fn new(mut losses: Vec<f64>) -> Self {
        assert!(
            !losses.is_empty(),
            "an exceedance curve needs at least one trial"
        );
        assert!(
            losses.iter().all(|l| l.is_finite() && *l >= -0.0),
            "losses must be finite and non-negative"
        );
        losses.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Self::from_sorted(losses)
    }

    /// Builds a curve from losses already sorted ascending, skipping the
    /// sort (used by callers that maintain their own sorted copies, e.g.
    /// the query engine's order-statistic cache).
    ///
    /// # Panics
    /// If the losses are empty or not sorted ascending (checked in debug
    /// builds only).
    pub fn from_sorted(losses: Vec<f64>) -> Self {
        assert!(
            !losses.is_empty(),
            "an exceedance curve needs at least one trial"
        );
        debug_assert!(
            losses.windows(2).all(|w| w[0] <= w[1]),
            "losses must be sorted ascending"
        );
        Self {
            sorted_losses: losses,
        }
    }

    /// Number of trials underlying the curve.
    pub fn num_trials(&self) -> usize {
        self.sorted_losses.len()
    }

    /// The sorted losses.
    pub fn sorted_losses(&self) -> &[f64] {
        &self.sorted_losses
    }

    /// Mean loss.
    pub fn mean(&self) -> f64 {
        self.sorted_losses.iter().sum::<f64>() / self.sorted_losses.len() as f64
    }

    /// Probability that the annual loss exceeds `threshold`.
    pub fn exceedance_probability(&self, threshold: f64) -> f64 {
        let above = self.sorted_losses.partition_point(|&l| l <= threshold);
        (self.sorted_losses.len() - above) as f64 / self.sorted_losses.len() as f64
    }

    /// The loss at exceedance probability `p` (0 < p <= 1), i.e. the
    /// `(1 − p)`-quantile of the loss distribution.
    pub fn loss_at_probability(&self, p: f64) -> f64 {
        assert!(
            p > 0.0 && p <= 1.0,
            "exceedance probability must be in (0, 1], got {p}"
        );
        catrisk_simkit::stats::quantile_sorted(&self.sorted_losses, 1.0 - p)
    }

    /// The loss at a return period of `years` (the PML at that return
    /// period): the loss exceeded with probability `1/years`.
    pub fn loss_at_return_period(&self, years: f64) -> f64 {
        assert!(
            years >= 1.0,
            "return period must be at least 1 year, got {years}"
        );
        self.loss_at_probability(1.0 / years)
    }

    /// The empirical return period of a loss threshold (∞ when the threshold
    /// was never exceeded).
    pub fn return_period_of(&self, threshold: f64) -> f64 {
        let p = self.exceedance_probability(threshold);
        if p == 0.0 {
            f64::INFINITY
        } else {
            1.0 / p
        }
    }

    /// Samples the curve at `n` evenly spaced exceedance probabilities,
    /// returning `(probability, loss)` pairs from most to least likely —
    /// the series plotted as an EP curve.
    pub fn curve_points(&self, n: usize) -> Vec<(f64, f64)> {
        assert!(n >= 2, "need at least two points");
        (0..n)
            .map(|i| {
                // Probabilities from 1.0 down to 1/num_trials.
                let lo = 1.0 / self.sorted_losses.len() as f64;
                let p = 1.0 - (1.0 - lo) * (i as f64 / (n - 1) as f64);
                (p, self.loss_at_probability(p))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ExceedanceCurve {
        // 10 trials with losses 0..=9 (in shuffled order).
        ExceedanceCurve::new(vec![3.0, 9.0, 1.0, 7.0, 0.0, 5.0, 2.0, 8.0, 6.0, 4.0])
    }

    #[test]
    fn exceedance_probability_counts_strictly_greater() {
        let c = curve();
        assert_eq!(c.num_trials(), 10);
        assert_eq!(c.exceedance_probability(-1.0), 1.0);
        assert_eq!(c.exceedance_probability(0.0), 0.9);
        assert_eq!(c.exceedance_probability(4.5), 0.5);
        assert_eq!(c.exceedance_probability(9.0), 0.0);
        assert_eq!(c.exceedance_probability(100.0), 0.0);
        assert!((c.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn loss_at_probability_is_upper_quantile() {
        let c = curve();
        // p = 0.5 -> median-ish (type-7 quantile of 0.5 over 0..9 = 4.5).
        assert!((c.loss_at_probability(0.5) - 4.5).abs() < 1e-12);
        // Very likely exceedance -> small loss.
        assert_eq!(c.loss_at_probability(1.0), 0.0);
        // Rare exceedance -> large loss.
        assert!(c.loss_at_probability(0.1) >= 8.0);
    }

    #[test]
    fn return_period_round_trip() {
        let c = curve();
        let loss_100 = c.loss_at_return_period(10.0);
        assert!(loss_100 >= 8.0);
        assert!(c.return_period_of(8.9) >= 10.0 - 1e-9);
        assert_eq!(c.return_period_of(9.0), f64::INFINITY);
        assert!((c.return_period_of(4.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn curve_points_are_monotone() {
        let c = curve();
        let pts = c.curve_points(20);
        assert_eq!(pts.len(), 20);
        for w in pts.windows(2) {
            assert!(w[0].0 >= w[1].0, "probabilities descend");
            assert!(w[0].1 <= w[1].1 + 1e-12, "losses ascend");
        }
    }

    #[test]
    fn pml_monotone_in_return_period() {
        let c = curve();
        let mut prev = 0.0;
        for rp in [1.0, 2.0, 5.0, 10.0] {
            let pml = c.loss_at_return_period(rp);
            assert!(pml + 1e-12 >= prev, "PML must grow with return period");
            prev = pml;
        }
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn empty_losses_panic() {
        ExceedanceCurve::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_losses_panic() {
        ExceedanceCurve::new(vec![1.0, f64::NAN]);
    }

    #[test]
    #[should_panic(expected = "return period")]
    fn bad_return_period_panics() {
        curve().loss_at_return_period(0.5);
    }

    #[test]
    fn serde_round_trip() {
        let c = curve();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<ExceedanceCurve>(&json).unwrap(), c);
    }
}
