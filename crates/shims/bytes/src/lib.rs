//! Minimal stand-in for the `bytes` crate: `Bytes`/`BytesMut` over
//! `Vec<u8>`, and the `Buf`/`BufMut` method subsets used by the binary YET
//! format (little-endian scalar reads/writes over an advancing `&[u8]`).

/// Immutable byte buffer (a thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies the contents into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer with the given capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut(Vec::with_capacity(capacity))
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Write half: little-endian scalar appends.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read half: little-endian scalar reads that advance the cursor.
///
/// Like the real crate, reads past the end panic; callers bound-check with
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Copies bytes into `dst`, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(7);
        buf.put_f32_le(2.5);
        buf.put_u64_le(u64::MAX - 3);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 16);
        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.get_u32_le(), 7);
        assert_eq!(cursor.get_f32_le(), 2.5);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 3);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32_le();
    }
}
