//! Wall-clock instrumentation: stopwatches and named phase timers.
//!
//! The paper's Fig. 6b breaks the engine's runtime into four phases
//! (event fetch, ELT lookup, financial terms, layer terms).  [`PhaseTimer`]
//! accumulates named durations so the instrumented engine variant can report
//! exactly that breakdown, and is mergeable so per-thread timers can be
//! combined after a parallel run.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Starts a new stopwatch.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed time since the stopwatch was started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in seconds as `f64`.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Restarts the stopwatch and returns the time elapsed before the restart.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let elapsed = now - self.start;
        self.start = now;
        elapsed
    }
}

/// Accumulates named durations, e.g. per algorithm phase.
///
/// The accumulated totals are exposed as a map of phase name to duration and
/// as fractional shares of the total (the format of the paper's Fig. 6b).
#[derive(Debug, Default, Clone)]
pub struct PhaseTimer {
    totals: BTreeMap<&'static str, Duration>,
}

impl PhaseTimer {
    /// Creates an empty phase timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a duration to a named phase.
    pub fn add(&mut self, phase: &'static str, d: Duration) {
        *self.totals.entry(phase).or_default() += d;
    }

    /// Times a closure and charges the elapsed time to `phase`.
    pub fn time<T>(&mut self, phase: &'static str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.add(phase, sw.elapsed());
        out
    }

    /// Merges another timer's totals into this one.
    pub fn merge(&mut self, other: &PhaseTimer) {
        for (phase, d) in &other.totals {
            *self.totals.entry(phase).or_default() += *d;
        }
    }

    /// Total accumulated time across all phases.
    pub fn total(&self) -> Duration {
        self.totals.values().sum()
    }

    /// Duration accumulated for one phase (zero if never recorded).
    pub fn get(&self, phase: &str) -> Duration {
        self.totals.get(phase).copied().unwrap_or_default()
    }

    /// All phases and their accumulated durations, sorted by phase name.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, Duration)> + '_ {
        self.totals.iter().map(|(p, d)| (*p, *d))
    }

    /// Fraction of total time spent in each phase (empty when nothing was
    /// recorded).  Fractions sum to 1.
    pub fn shares(&self) -> Vec<(&'static str, f64)> {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            return vec![];
        }
        self.totals
            .iter()
            .map(|(p, d)| (*p, d.as_secs_f64() / total))
            .collect()
    }
}

/// A thread-safe phase timer that can be shared across rayon workers.
#[derive(Debug, Default, Clone)]
pub struct SharedPhaseTimer {
    inner: Arc<Mutex<PhaseTimer>>,
}

impl SharedPhaseTimer {
    /// Creates an empty shared timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges a thread-local timer into the shared accumulator.
    pub fn merge(&self, local: &PhaseTimer) {
        self.inner.lock().merge(local);
    }

    /// Adds a duration to a named phase directly.
    pub fn add(&self, phase: &'static str, d: Duration) {
        self.inner.lock().add(phase, d);
    }

    /// Snapshot of the accumulated totals.
    pub fn snapshot(&self) -> PhaseTimer {
        self.inner.lock().clone()
    }
}

/// Measures throughput: items processed per second over a window.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputMeter {
    started: Instant,
    items: u64,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

impl ThroughputMeter {
    /// Creates a meter starting now with zero items.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            items: 0,
        }
    }

    /// Records `n` processed items.
    pub fn record(&mut self, n: u64) {
        self.items += n;
    }

    /// Total items recorded.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Items per second since creation (0 if no time has passed).
    pub fn rate(&self) -> f64 {
        let secs = self.started.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.items as f64 / secs
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn stopwatch_measures_time() {
        let mut sw = Stopwatch::start();
        sleep(Duration::from_millis(10));
        assert!(sw.elapsed() >= Duration::from_millis(8));
        assert!(sw.elapsed_secs() > 0.0);
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(8));
        assert!(sw.elapsed() < lap);
    }

    #[test]
    fn phase_timer_accumulates_and_shares() {
        let mut t = PhaseTimer::new();
        t.add("lookup", Duration::from_millis(300));
        t.add("terms", Duration::from_millis(100));
        t.add("lookup", Duration::from_millis(100));
        assert_eq!(t.get("lookup"), Duration::from_millis(400));
        assert_eq!(t.get("terms"), Duration::from_millis(100));
        assert_eq!(t.get("missing"), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(500));
        let shares = t.shares();
        let lookup_share = shares.iter().find(|(p, _)| *p == "lookup").unwrap().1;
        assert!((lookup_share - 0.8).abs() < 1e-9);
        let sum: f64 = shares.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(t.phases().count(), 2);
    }

    #[test]
    fn phase_timer_time_closure() {
        let mut t = PhaseTimer::new();
        let v = t.time("work", || {
            sleep(Duration::from_millis(5));
            7
        });
        assert_eq!(v, 7);
        assert!(t.get("work") >= Duration::from_millis(4));
    }

    #[test]
    fn phase_timer_empty_shares() {
        let t = PhaseTimer::new();
        assert!(t.shares().is_empty());
        assert_eq!(t.total(), Duration::ZERO);
    }

    #[test]
    fn phase_timer_merge() {
        let mut a = PhaseTimer::new();
        a.add("x", Duration::from_millis(10));
        let mut b = PhaseTimer::new();
        b.add("x", Duration::from_millis(5));
        b.add("y", Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.get("x"), Duration::from_millis(15));
        assert_eq!(a.get("y"), Duration::from_millis(1));
    }

    #[test]
    fn shared_phase_timer_across_threads() {
        let shared = SharedPhaseTimer::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let shared = shared.clone();
                s.spawn(move || {
                    let mut local = PhaseTimer::new();
                    local.add("lookup", Duration::from_millis(10));
                    shared.merge(&local);
                    shared.add("extra", Duration::from_millis(1));
                });
            }
        });
        let snap = shared.snapshot();
        assert_eq!(snap.get("lookup"), Duration::from_millis(40));
        assert_eq!(snap.get("extra"), Duration::from_millis(4));
    }

    #[test]
    fn throughput_meter_counts() {
        let mut m = ThroughputMeter::new();
        m.record(100);
        m.record(50);
        assert_eq!(m.items(), 150);
        sleep(Duration::from_millis(5));
        assert!(m.rate() > 0.0);
    }
}
