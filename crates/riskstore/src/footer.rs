//! Footer encoding and decoding: dictionary pages, per-segment code
//! vectors, and the checksummed segment directory (the per-block
//! watermarks).

use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::LineOfBusiness;

use crate::format::{crc32, Decoder, Encoder, FOOTER_MAGIC};
use crate::{Result, StoreError};

/// Directory entry of one committed segment: where its loss columns live
/// and the checksum of every trial-block page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Absolute file offset of the segment's year-loss column (the
    /// occurrence column follows it immediately).
    pub data_offset: u64,
    /// CRC32 of each year-loss page, in page order.
    pub year_page_crcs: Vec<u32>,
    /// CRC32 of each occurrence-loss page, in page order.
    pub occ_page_crcs: Vec<u32>,
}

/// The decoded footer: everything a reader needs beyond the header.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Footer {
    /// Commit counter; must echo the header's.
    pub commit_seq: u64,
    /// Dictionary entries (raw `u32` dimension values) in code order, one
    /// list per dimension.
    pub dict_values: [Vec<u32>; 4],
    /// Per-segment dictionary codes, one vector per dimension.
    pub codes: [Vec<u32>; 4],
    /// Per-segment directory in segment order.
    pub segments: Vec<SegmentEntry>,
}

impl Footer {
    /// Encodes the footer, including its trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_bytes(&FOOTER_MAGIC);
        enc.put_u64(self.commit_seq);
        enc.put_u64(self.segments.len() as u64);
        for values in &self.dict_values {
            let mut page = Encoder::new();
            page.put_u32(values.len() as u32);
            for &value in values {
                page.put_u32(value);
            }
            let crc = crc32(page.bytes());
            enc.put_bytes(page.bytes());
            enc.put_u32(crc);
        }
        for codes in &self.codes {
            let mut page = Encoder::new();
            for &code in codes {
                page.put_u32(code);
            }
            let crc = crc32(page.bytes());
            enc.put_bytes(page.bytes());
            enc.put_u32(crc);
        }
        for segment in &self.segments {
            enc.put_u64(segment.data_offset);
            for &crc in segment.year_page_crcs.iter().chain(&segment.occ_page_crcs) {
                enc.put_u32(crc);
            }
        }
        let crc = crc32(enc.bytes());
        enc.put_u32(crc);
        enc.into_bytes()
    }

    /// Decodes and fully validates a footer region.
    ///
    /// `expected_commit_seq` is the header's commit counter — a mismatch
    /// means the header points at a footer from a different commit, i.e.
    /// the file is corrupt.  `pages_per_column` is derived from the
    /// header's trial counts and fixes the directory entry size.
    pub fn decode(
        bytes: &[u8],
        expected_commit_seq: u64,
        pages_per_column: usize,
    ) -> Result<Footer> {
        if bytes.len() < 4 {
            return Err(StoreError::Truncated {
                what: format!("footer: region holds only {} bytes", bytes.len()),
            });
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(body) != stored {
            return Err(StoreError::ChecksumMismatch {
                what: "footer".to_string(),
            });
        }

        let mut dec = Decoder::new(body, "footer");
        let magic: [u8; 8] = dec.take(8)?.try_into().unwrap();
        if magic != FOOTER_MAGIC {
            return Err(StoreError::Corrupt(format!(
                "footer magic mismatch: found {magic:02x?}"
            )));
        }
        let commit_seq = dec.get_u64()?;
        if commit_seq != expected_commit_seq {
            return Err(StoreError::Corrupt(format!(
                "footer commit {commit_seq} does not match header commit {expected_commit_seq}"
            )));
        }
        let num_segments = usize::try_from(dec.get_u64()?)
            .map_err(|_| StoreError::Corrupt("footer: absurd segment count".to_string()))?;
        // Counts come from the file; bound every one against the bytes the
        // region can actually hold *before* allocating, so a hostile or
        // absurd (but CRC-consistent) footer yields a typed error rather
        // than a capacity panic or an enormous allocation.  Each segment
        // owns at least 16 bytes of code columns.
        if num_segments > body.len() / 16 {
            return Err(StoreError::Corrupt(format!(
                "footer: {} segments cannot fit in a {}-byte footer",
                num_segments,
                body.len()
            )));
        }

        let mut dict_values: [Vec<u32>; 4] = Default::default();
        for (dim, slot) in dict_values.iter_mut().enumerate() {
            let start = dec.position();
            let count = dec.get_u32()? as usize;
            if count > (body.len() - dec.position()) / 4 {
                return Err(StoreError::Corrupt(format!(
                    "footer: dictionary page {dim} claims {count} entries, more than the \
                     region holds"
                )));
            }
            let mut values = Vec::with_capacity(count);
            for _ in 0..count {
                values.push(dec.get_u32()?);
            }
            let page_bytes = &dec.consumed()[start..];
            let stored = dec.get_u32()?;
            if crc32(page_bytes) != stored {
                return Err(StoreError::ChecksumMismatch {
                    what: format!("dictionary page {dim}"),
                });
            }
            *slot = values;
        }

        let mut codes: [Vec<u32>; 4] = Default::default();
        for (dim, slot) in codes.iter_mut().enumerate() {
            let start = dec.position();
            let mut column = Vec::with_capacity(num_segments);
            for _ in 0..num_segments {
                column.push(dec.get_u32()?);
            }
            let page_bytes = &dec.consumed()[start..];
            let stored = dec.get_u32()?;
            if crc32(page_bytes) != stored {
                return Err(StoreError::ChecksumMismatch {
                    what: format!("code column {dim}"),
                });
            }
            for &code in &column {
                if code as usize >= dict_values[dim].len() {
                    return Err(StoreError::Corrupt(format!(
                        "code column {dim}: code {code} exceeds dictionary of {}",
                        dict_values[dim].len()
                    )));
                }
            }
            *slot = column;
        }

        // The directory's size is fixed by (num_segments, pages_per_column);
        // verify it fits before the per-entry `with_capacity` allocations.
        let entry_bytes = pages_per_column
            .checked_mul(8)
            .and_then(|crcs| crcs.checked_add(8));
        let directory_bytes = entry_bytes.and_then(|e| e.checked_mul(num_segments));
        match directory_bytes {
            Some(required) if required <= body.len() - dec.position() => {}
            _ => {
                return Err(StoreError::Truncated {
                    what: format!(
                        "footer directory: {num_segments} segments x {pages_per_column} pages \
                         per column exceed the region's {} remaining bytes",
                        body.len() - dec.position()
                    ),
                });
            }
        }

        let mut segments = Vec::with_capacity(num_segments);
        for _ in 0..num_segments {
            let data_offset = dec.get_u64()?;
            let mut year_page_crcs = Vec::with_capacity(pages_per_column);
            for _ in 0..pages_per_column {
                year_page_crcs.push(dec.get_u32()?);
            }
            let mut occ_page_crcs = Vec::with_capacity(pages_per_column);
            for _ in 0..pages_per_column {
                occ_page_crcs.push(dec.get_u32()?);
            }
            segments.push(SegmentEntry {
                data_offset,
                year_page_crcs,
                occ_page_crcs,
            });
        }
        if dec.position() != body.len() {
            return Err(StoreError::Corrupt(format!(
                "footer: {} trailing bytes after the segment directory",
                body.len() - dec.position()
            )));
        }

        Ok(Footer {
            commit_seq,
            dict_values,
            codes,
            segments,
        })
    }
}

// ---------------------------------------------------------------------------
// Dimension value codec
// ---------------------------------------------------------------------------

/// Encodes a layer id as its raw `u32`.
pub fn encode_layer(layer: LayerId) -> u32 {
    layer.0
}

/// Encodes a peril as its (stable, documented) enum discriminant.
pub fn encode_peril(peril: Peril) -> u32 {
    peril as u32
}

/// Encodes a region as its enum discriminant.
pub fn encode_region(region: Region) -> u32 {
    region as u32
}

/// Encodes a line of business as its enum discriminant.
pub fn encode_lob(lob: LineOfBusiness) -> u32 {
    lob as u32
}

/// Decodes a layer id (any `u32` is valid).
pub fn decode_layer(raw: u32) -> Result<LayerId> {
    Ok(LayerId(raw))
}

/// Decodes a peril discriminant written by [`encode_peril`].
pub fn decode_peril(raw: u32) -> Result<Peril> {
    Peril::ALL
        .into_iter()
        .find(|&p| p as u32 == raw)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown peril code {raw} in dictionary")))
}

/// Decodes a region discriminant written by [`encode_region`].
pub fn decode_region(raw: u32) -> Result<Region> {
    Region::ALL
        .into_iter()
        .find(|&r| r as u32 == raw)
        .ok_or_else(|| StoreError::Corrupt(format!("unknown region code {raw} in dictionary")))
}

/// Decodes a line-of-business discriminant written by [`encode_lob`].
pub fn decode_lob(raw: u32) -> Result<LineOfBusiness> {
    LineOfBusiness::ALL
        .into_iter()
        .find(|&l| l as u32 == raw)
        .ok_or_else(|| {
            StoreError::Corrupt(format!("unknown line-of-business code {raw} in dictionary"))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Footer {
        Footer {
            commit_seq: 3,
            dict_values: [
                vec![0, 1],
                vec![encode_peril(Peril::Hurricane), encode_peril(Peril::Flood)],
                vec![encode_region(Region::Europe)],
                vec![encode_lob(LineOfBusiness::Property)],
            ],
            codes: [vec![0, 1, 1], vec![0, 0, 1], vec![0, 0, 0], vec![0, 0, 0]],
            segments: (0..3)
                .map(|i| SegmentEntry {
                    data_offset: 64 + i * 160,
                    year_page_crcs: vec![1, 2],
                    occ_page_crcs: vec![3, 4],
                })
                .collect(),
        }
    }

    #[test]
    fn footer_round_trips() {
        let footer = sample();
        let bytes = footer.encode();
        assert_eq!(Footer::decode(&bytes, 3, 2).unwrap(), footer);
    }

    #[test]
    fn footer_rejects_corruption() {
        let footer = sample();
        let bytes = footer.encode();

        let mut flipped = bytes.clone();
        flipped[20] ^= 0x40;
        assert!(matches!(
            Footer::decode(&flipped, 3, 2),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        assert!(matches!(
            Footer::decode(&bytes, 4, 2),
            Err(StoreError::Corrupt(_))
        ));

        assert!(matches!(
            Footer::decode(&bytes[..10], 3, 2),
            Err(StoreError::ChecksumMismatch { .. } | StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn dimension_codec_round_trips() {
        for peril in Peril::ALL {
            assert_eq!(decode_peril(encode_peril(peril)).unwrap(), peril);
        }
        for region in Region::ALL {
            assert_eq!(decode_region(encode_region(region)).unwrap(), region);
        }
        for lob in LineOfBusiness::ALL {
            assert_eq!(decode_lob(encode_lob(lob)).unwrap(), lob);
        }
        assert_eq!(decode_layer(7).unwrap(), LayerId(7));
        assert!(decode_peril(999).is_err());
        assert!(decode_region(999).is_err());
        assert!(decode_lob(999).is_err());
    }
}
