//! `catrisk quote` — real-time pricing of a Cat XL layer.

use catrisk_finterms::treaty::Treaty;
use catrisk_portfolio::pricing::PricingConfig;
use catrisk_portfolio::realtime::RealTimeQuoter;

use super::world::{World, WorldConfig};
use super::Options;

/// Runs the quoting scenario.
pub fn run(options: &Options) -> Result<(), String> {
    let config = WorldConfig {
        seed: options.get("seed", 2012u64)?,
        num_events: options.get("events", 20_000u32)?,
        locations: options.get("locations", 1_000usize)?,
        trials: options.get("trials", 50_000usize)?,
    };
    let retention: f64 = options.get("retention", 5.0e6)?;
    let limit: f64 = options.get("limit", 20.0e6)?;

    eprintln!("preparing quoting world ({} trials) ...", config.trials);
    let world = World::build(&config)?;
    let input = world.standard_input()?;
    let quoter =
        RealTimeQuoter::new(&input, None, PricingConfig::default()).map_err(|e| e.to_string())?;
    let elt_indices: Vec<usize> = (0..world.elts.len()).collect();

    // The underwriter tries the requested structure plus two alternatives.
    let alternatives = [
        Treaty::cat_xl(retention, limit),
        Treaty::cat_xl(retention * 2.0, limit),
        Treaty::cat_xl(retention, limit * 2.0),
    ];
    println!(
        "{:<28} {:>14} {:>14} {:>14} {:>10} {:>9}",
        "structure", "expected loss", "tech premium", "TVaR99", "RoL", "seconds"
    );
    for treaty in alternatives {
        let quoted = quoter
            .quote(treaty, &elt_indices)
            .map_err(|e| e.to_string())?;
        println!(
            "{:<28} {:>14.0} {:>14.0} {:>14.0} {:>10.4} {:>9.3}",
            treaty.describe(),
            quoted.quote.expected_loss,
            quoted.quote.gross_premium,
            quoted.quote.tvar,
            quoted.quote.rate_on_line,
            quoted.elapsed.as_secs_f64()
        );
    }
    println!(
        "\neach quote re-ran the {}-trial aggregate analysis on all cores (paper section IV).",
        quoter.trials()
    );
    Ok(())
}
