//! The sharded store catalog: many persistent YLT stores served as one
//! refreshable logical store, along either sharding axis.
//!
//! A [`StoreCatalog`] owns one verifying
//! [`StoreReader`] per shard file, each
//! behind its own `RwLock` so any number of batch scans share a shard
//! concurrently while a refresh swaps new commits in between scans.  At
//! open the catalog detects which **axis** the shards partition (see
//! [`ShardAxis`]) from the stores' persisted trial offsets:
//!
//! * all offsets zero — a **segment**-axis catalog: shards hold disjoint
//!   segment sets over one shared trial count, unioned per batch by
//!   [`ShardedSource`];
//! * distinct offsets — a **trial**-axis catalog, the source paper's own
//!   partition dimension: shards hold the *same* segments over adjacent
//!   trial windows `[0, t_1) [t_1, t_2) …` (sorted by offset, validated
//!   gap-free), stitched per batch by
//!   [`TrialShardedSource`] — and the snapshot
//!   additionally carries the per-shard windows so the server can cache
//!   per-shard *partial aggregates* and rescan only the shard whose
//!   generation moved.
//!
//! Per batch, [`SourceProvider::with_source`] takes all shard read locks
//! (in shard order, one lock level — no deadlock), builds the zero-copy
//! union (memoizing a segment-axis catalog's merged schema against the
//! generation vector, so cache-hit batches skip the dictionary merge),
//! and hands the scheduler a [`SourceSnapshot`] whose generation vector
//! is taken *under those same locks* — so the stamps and the data can
//! never disagree.  A stamp is the shard's commit counter tagged with a
//! replacement epoch: an *observed* replacement (one whose commit
//! counter or segment count differs at probe time — stores are
//! append-only by contract, so replacement handling is best-effort
//! recovery, and a replacement that exactly reproduces both is
//! indistinguishable from no change) retires every stamp the old store
//! produced, even if the new store's counter later reaches the old
//! value, so the result cache can never serve across an observed
//! replacement; a replacement that changes the trial count excludes the
//! shard from scans (on the segment axis the rest keep serving; on the
//! trial axis the windows are no longer gap-free, so the catalog serves
//! the empty shape) instead of failing batches.
//!
//! [`StoreCatalog::refresh`] is the serve-while-ingesting path: for each
//! shard it probes the file's committed generation and footer
//! fingerprint from the 128-byte header region alone
//! ([`StoreReader::peek_header`]) and only takes
//! the shard's write lock when a new commit is actually visible, mapping
//! just the newly committed segments (see the riskstore crate's refresh
//! protocol).  A shard whose file is temporarily unreadable keeps serving
//! its current snapshot; the failure is counted, not propagated.

use std::collections::HashSet;
use std::path::{Component, Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard};
use std::time::{Duration, Instant};

use catrisk_riskquery::{
    MergedSchema, ResultStore, SegmentSource, ShardedSource, TrialShardedSource,
};
use catrisk_riskstore::{StoreError, StoreReader};
use catrisk_telemetry::{Histogram, Registry};

use crate::source::{SourceProvider, SourceSnapshot};
use crate::sync::{lock, read_lock, write_lock};
use crate::telemetry::stage;

/// Low 48 bits of a generation stamp hold the shard's commit counter;
/// the high 16 hold a *replacement epoch*, bumped whenever a refresh
/// observes a file whose commit counter did not advance past the
/// previous snapshot (a replaced/rewritten store) or whose trial count
/// diverged.  Stamps therefore never repeat across a replacement, so a
/// result cached against the old store can never match the new one even
/// if the new file's commit counter later lands on the old value.
const SEQ_BITS: u32 = 48;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;

fn stamp(epoch: u64, commit_seq: u64) -> u64 {
    (epoch << SEQ_BITS) | (commit_seq & SEQ_MASK)
}

/// Which dimension a catalog's shards partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardAxis {
    /// Shards hold disjoint segment sets over one shared trial axis
    /// (every store's trial offset is zero); the union concatenates
    /// their segment lists.
    Segment,
    /// Shards hold the same segments over adjacent trial windows (the
    /// stores carry distinct trial offsets); the union stitches the
    /// windows back into one trial axis — the paper's partition axis.
    Trial,
}

impl std::fmt::Display for ShardAxis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ShardAxis::Segment => "segment",
            ShardAxis::Trial => "trial",
        })
    }
}

/// A stable identity for duplicate-shard detection.  Canonicalisation
/// resolves symlinks and relative respellings; when it fails (the path
/// must still open as a store later, so this is rare), fall back to a
/// *lexically* normalised absolute path so `./a.clm` and `a.clm` still
/// collide instead of silently double-counting a shard.
fn path_identity(path: &Path) -> PathBuf {
    if let Ok(canonical) = std::fs::canonicalize(path) {
        return canonical;
    }
    let absolute = if path.is_absolute() {
        path.to_path_buf()
    } else {
        std::env::current_dir()
            .map(|cwd| cwd.join(path))
            .unwrap_or_else(|_| path.to_path_buf())
    };
    let mut normalised = PathBuf::new();
    for component in absolute.components() {
        match component {
            Component::CurDir => {}
            Component::ParentDir => {
                if !normalised.pop() {
                    normalised.push(component.as_os_str());
                }
            }
            other => normalised.push(other.as_os_str()),
        }
    }
    normalised
}

/// One shard: a store file, its live reader, and its visible generation.
struct CatalogShard {
    path: PathBuf,
    reader: RwLock<StoreReader>,
    /// Trials this shard held at open — its fixed contribution to the
    /// union (the segment axis shares one value; the trial axis sums
    /// them).  A refresh observing a different count excludes the shard.
    num_trials: usize,
    /// The shard's persisted trial offset at open.
    trial_offset: u64,
    /// The shard's current generation stamp (see [`SEQ_BITS`]), readable
    /// without the lock (kept in sync by `refresh`); the cheap "is a
    /// refresh worth a write lock?" comparand.
    generation: AtomicU64,
    /// Replacement epoch, only ever written under the shard's write
    /// lock, so reading it under a read lock is snapshot-consistent.
    epoch: AtomicU64,
    /// Footer offset observed by the last header probe (`u64::MAX` =
    /// never probed).  Together with the commit counter and footer
    /// length this fingerprints the committed state: every commit
    /// appends a fresh footer at the growing end of file, so any change
    /// a refresh could observe moves at least one of the three.
    seen_footer_offset: AtomicU64,
    /// Footer length observed by the last header probe.
    seen_footer_len: AtomicU64,
}

impl CatalogShard {
    fn new(path: PathBuf, reader: StoreReader) -> CatalogShard {
        CatalogShard {
            num_trials: reader.num_trials(),
            trial_offset: reader.trial_offset(),
            generation: AtomicU64::new(stamp(0, reader.commit_seq())),
            epoch: AtomicU64::new(0),
            seen_footer_offset: AtomicU64::new(u64::MAX),
            seen_footer_len: AtomicU64::new(u64::MAX),
            reader: RwLock::new(reader),
            path,
        }
    }
}

/// Every `.clm` file directly inside `dir`, sorted by path for a
/// deterministic open/adopt order.
fn list_store_files(dir: &Path) -> std::result::Result<Vec<PathBuf>, StoreError> {
    let entries = std::fs::read_dir(dir).map_err(|e| {
        StoreError::InvalidArgument(format!(
            "cannot read catalog directory `{}`: {e}",
            dir.display()
        ))
    })?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "clm") && path.is_file())
        .collect();
    paths.sort();
    Ok(paths)
}

/// The catalog's shard topology — everything that changes when a new
/// store file is adopted by directory discovery, grouped under one
/// `RwLock` so a scan always sees shards, axis and windows from the
/// same instant.  For a catalog opened over a fixed file list the
/// topology never changes after open.
struct Topology {
    /// Shards in serving order: open order for the segment axis, window
    /// order (ascending trial offset) for the trial axis.
    shards: Vec<CatalogShard>,
    /// Trials every scan sees: the shared per-shard count on the segment
    /// axis, the window total on the trial axis.
    num_trials: usize,
    axis: ShardAxis,
    /// The global trial window of each shard, in shard order — only
    /// meaningful (non-empty) on the trial axis.
    windows: Vec<(usize, usize)>,
}

impl Topology {
    /// Detects the sharding axis from the shards' persisted trial
    /// offsets and validates they fit together on it (the rules
    /// documented on [`StoreCatalog::open`]).
    fn build(mut shards: Vec<CatalogShard>) -> std::result::Result<Topology, StoreError> {
        if shards.is_empty() {
            return Err(StoreError::InvalidArgument(
                "a catalog needs at least one store".to_string(),
            ));
        }
        let axis = if shards.iter().all(|shard| shard.trial_offset == 0) {
            ShardAxis::Segment
        } else {
            ShardAxis::Trial
        };
        let mut windows = Vec::new();
        let num_trials = match axis {
            ShardAxis::Segment => {
                let trials = shards[0].num_trials;
                for shard in &shards[1..] {
                    if shard.num_trials != trials {
                        return Err(StoreError::InvalidArgument(format!(
                            "shard `{}` holds {}-trial segments but the catalog's first shard \
                             holds {trials}-trial segments",
                            shard.path.display(),
                            shard.num_trials
                        )));
                    }
                }
                trials
            }
            ShardAxis::Trial => {
                // Window order is offset order, whatever order the shards
                // were listed in.
                shards.sort_by_key(|shard| shard.trial_offset);
                let mut at = 0usize;
                for shard in &shards {
                    if shard.trial_offset != at as u64 {
                        return Err(StoreError::InvalidArgument(format!(
                            "trial shard `{}` covers trials {}..{} but the preceding shards \
                             end at trial {at}; trial windows must tile [0, total) with no \
                             gap or overlap",
                            shard.path.display(),
                            shard.trial_offset,
                            shard.trial_offset + shard.num_trials as u64,
                        )));
                    }
                    windows.push((at, at + shard.num_trials));
                    at += shard.num_trials;
                }
                at
            }
        };
        Ok(Topology {
            shards,
            num_trials,
            axis,
            windows,
        })
    }

    /// Adopts a discovered store into the serving topology, when its
    /// geometry fits: another segment-axis shard sharing the catalog
    /// trial count, or the store whose trial window starts exactly where
    /// the current axis ends (which may convert a single-shard
    /// segment-axis catalog into a trial-axis one — a one-window axis is
    /// both).  Anything else is a topology the catalog cannot serve
    /// exactly, and is rejected.
    fn adopt(&mut self, path: PathBuf, reader: StoreReader) -> std::result::Result<(), StoreError> {
        let trials = reader.num_trials();
        let offset = reader.trial_offset();
        if offset == 0 {
            if self.axis != ShardAxis::Segment {
                return Err(StoreError::InvalidArgument(format!(
                    "store `{}` has trial offset 0, which overlaps the trial-axis \
                     catalog's first window",
                    path.display()
                )));
            }
            if trials != self.num_trials {
                return Err(StoreError::InvalidArgument(format!(
                    "store `{}` holds {trials}-trial segments but the catalog serves \
                     {}-trial segments",
                    path.display(),
                    self.num_trials
                )));
            }
        } else {
            if offset != self.num_trials as u64 {
                return Err(StoreError::InvalidArgument(format!(
                    "store `{}` covers trials {offset}..{} but the catalog's axis ends \
                     at trial {}; a discovered window must start exactly there",
                    path.display(),
                    offset + trials as u64,
                    self.num_trials
                )));
            }
            if self.axis == ShardAxis::Segment && self.shards.len() > 1 {
                return Err(StoreError::InvalidArgument(format!(
                    "store `{}` opens a trial window, but the catalog already unions \
                     {} segment-axis shards",
                    path.display(),
                    self.shards.len()
                )));
            }
            if self.axis == ShardAxis::Segment {
                // One offset-0 shard is equally window [0, n): reinterpret.
                self.axis = ShardAxis::Trial;
                self.windows = vec![(0, self.num_trials)];
            }
            self.windows
                .push((self.num_trials, self.num_trials + trials));
            self.num_trials += trials;
        }
        self.shards.push(CatalogShard::new(path, reader));
        Ok(())
    }
}

/// Directory-watch state for catalog auto-discovery (see
/// [`StoreCatalog::open_dir`]).
struct DirWatch {
    dir: PathBuf,
    /// Identities (see [`path_identity`]) of every adopted store, so a
    /// sweep never re-opens what is already serving.
    adopted: HashSet<PathBuf>,
    /// Identities whose geometry can never join this catalog (wrong
    /// trial count, out-of-sequence window): rejected once, with one
    /// error count, instead of re-failing every sweep.
    rejected: HashSet<PathBuf>,
}

/// N persistent stores served as one logical, refreshable store.
pub struct StoreCatalog {
    /// The live shard topology; read by every batch, written only when
    /// discovery adopts a new store.
    topology: RwLock<Topology>,
    /// `Some` when the catalog watches a directory for new stores.
    watch: Mutex<Option<DirWatch>>,
    /// Paths adopted by discovery since the server last drained them
    /// (the server turns the drain into counters + recorder events).
    discovered_queue: Mutex<Vec<PathBuf>>,
    /// Total stores adopted by discovery over the catalog's lifetime.
    discovered: AtomicU64,
    /// The merged union schema memoized against the generation vector it
    /// was built under, so cache-hit batches skip the O(total segments)
    /// dictionary merge (segment axis only).
    schema_cache: Mutex<Option<(Vec<u64>, Arc<MergedSchema>)>>,
    /// The generation vector under which the trial-axis layout
    /// (per-segment meta equality across windows) last validated, so
    /// unchanged batches skip the O(segments × shards) re-validation
    /// (trial axis only) — the trial-axis analogue of `schema_cache`.
    trial_layout_cache: Mutex<Option<Vec<u64>>>,
    /// Epoch for the probe throttle clock.
    opened: Instant,
    /// Minimum µs between on-disk generation probes (0 = probe on every
    /// [`SourceProvider::refresh`] call).
    probe_interval_micros: AtomicU64,
    /// `opened`-relative µs of the last probe sweep (`u64::MAX` =
    /// never).
    last_probe_micros: AtomicU64,
    refreshes: AtomicU64,
    refresh_errors: AtomicU64,
    /// Set by [`SourceProvider::attach_telemetry`] when the catalog backs
    /// an instrumented server; `None` for a bare catalog.
    telemetry: Mutex<Option<CatalogTelemetry>>,
}

/// The catalog's resolved metric handles (see [`crate::telemetry::stage`]).
struct CatalogTelemetry {
    /// Snapshot-assembly cost: memo validation plus (on generation
    /// movement) the union schema / trial-layout rebuild.
    schema_memo: Arc<Histogram>,
    /// Store-open cost, also recorded for stores adopted by discovery.
    store_open: Arc<Histogram>,
    /// Refresh cost, attached to every reader including discovered ones.
    store_refresh: Arc<Histogram>,
}

impl std::fmt::Debug for StoreCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topology = read_lock(&self.topology);
        f.debug_struct("StoreCatalog")
            .field("axis", &topology.axis)
            .field("shards", &topology.shards.len())
            .field("trials", &topology.num_trials)
            .finish()
    }
}

impl StoreCatalog {
    /// Opens every shard file, detects the sharding axis from the
    /// stores' persisted trial offsets, and validates the shards fit
    /// together on it: a segment-axis catalog (all offsets zero) needs
    /// one shared trial count; a trial-axis catalog (distinct offsets)
    /// needs its windows — sorted by offset — to tile `[0, total)` with
    /// no gap or overlap.  Shards with no committed segments are
    /// accepted — that is exactly the serve-while-ingesting starting
    /// state; their segments appear at the first refresh after their
    /// first commit.
    pub fn open(
        paths: impl IntoIterator<Item = impl AsRef<Path>>,
    ) -> std::result::Result<StoreCatalog, StoreError> {
        let mut shards = Vec::new();
        let mut identities = std::collections::HashSet::new();
        for path in paths {
            let path = path.as_ref().to_path_buf();
            // A duplicated shard would silently double-count every one of
            // its segments (or serve one trial window twice); reject it
            // (resolving symlinks — and lexically normalising when
            // canonicalisation fails — so `--store x.clm --store ./x.clm`
            // is caught too).
            if !identities.insert(path_identity(&path)) {
                return Err(StoreError::InvalidArgument(format!(
                    "shard `{}` is listed more than once",
                    path.display()
                )));
            }
            let reader = StoreReader::open(&path)?;
            shards.push(CatalogShard::new(path, reader));
        }
        Ok(StoreCatalog {
            topology: RwLock::new(Topology::build(shards)?),
            watch: Mutex::new(None),
            discovered_queue: Mutex::new(Vec::new()),
            discovered: AtomicU64::new(0),
            schema_cache: Mutex::new(None),
            trial_layout_cache: Mutex::new(None),
            opened: Instant::now(),
            probe_interval_micros: AtomicU64::new(0),
            last_probe_micros: AtomicU64::new(u64::MAX),
            refreshes: AtomicU64::new(0),
            refresh_errors: AtomicU64::new(0),
            telemetry: Mutex::new(None),
        })
    }

    /// Opens every `.clm` store file in `dir` as a catalog and keeps
    /// **watching the directory**: each refresh sweep (throttled by the
    /// same [`StoreCatalog::set_refresh_interval`] knob as the header
    /// probes) re-lists the directory, and a new store file whose
    /// geometry fits the serving axis — another segment-axis shard with
    /// the shared trial count, or the exact next trial window — is
    /// adopted and served without a restart.  That is how `store split`
    /// output or a fresh `--trial-offset` window dropped by an ingest
    /// writer joins a running fleet.  Files that fail to open (typically
    /// still being written) are retried on later sweeps; files whose
    /// geometry can never fit are rejected once and counted in
    /// [`StoreCatalog::refresh_error_count`].
    pub fn open_dir(dir: impl AsRef<Path>) -> std::result::Result<StoreCatalog, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        let paths = list_store_files(&dir)?;
        if paths.is_empty() {
            return Err(StoreError::InvalidArgument(format!(
                "directory `{}` holds no .clm store files",
                dir.display()
            )));
        }
        let adopted = paths.iter().map(|p| path_identity(p)).collect();
        let catalog = Self::open(&paths)?;
        *lock(&catalog.watch) = Some(DirWatch {
            dir,
            adopted,
            rejected: HashSet::new(),
        });
        Ok(catalog)
    }

    /// The directory this catalog watches for new stores, when opened
    /// via [`StoreCatalog::open_dir`].
    pub fn watched_dir(&self) -> Option<PathBuf> {
        lock(&self.watch).as_ref().map(|watch| watch.dir.clone())
    }

    /// Total store files adopted by directory discovery since open.
    pub fn discovered_count(&self) -> u64 {
        self.discovered.load(Ordering::Relaxed)
    }

    /// One discovery sweep: re-list the watched directory and try to
    /// adopt every store file not yet serving.  No-op without a watch.
    fn discover(&self) {
        let mut watch_slot = lock(&self.watch);
        let Some(watch) = watch_slot.as_mut() else {
            return;
        };
        let candidates = match list_store_files(&watch.dir) {
            Ok(paths) => paths,
            Err(_) => {
                // The directory itself went unreadable; the shards keep
                // serving and the sweep retries later.
                self.refresh_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        for path in candidates {
            let identity = path_identity(&path);
            if watch.adopted.contains(&identity) || watch.rejected.contains(&identity) {
                continue;
            }
            // An unopenable file is usually a store still being written
            // (the header commits last): retry on the next sweep.
            let Ok(reader) = StoreReader::open(&path) else {
                continue;
            };
            let mut topology = write_lock(&self.topology);
            match topology.adopt(path.clone(), reader) {
                Ok(()) => {
                    if let Some(telemetry) = lock(&self.telemetry).as_ref() {
                        let shard = topology.shards.last().expect("just adopted");
                        let mut reader = write_lock(&shard.reader);
                        telemetry.store_open.record(reader.open_micros());
                        reader.attach_refresh_histogram(Arc::clone(&telemetry.store_refresh));
                    }
                    drop(topology);
                    watch.adopted.insert(identity);
                    self.discovered.fetch_add(1, Ordering::Relaxed);
                    lock(&self.discovered_queue).push(path);
                }
                Err(_) => {
                    drop(topology);
                    watch.rejected.insert(identity);
                    self.refresh_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        read_lock(&self.topology).shards.len()
    }

    /// The axis this catalog's shards partition.
    pub fn axis(&self) -> ShardAxis {
        read_lock(&self.topology).axis
    }

    /// The global trial window of each shard, in shard order — empty for
    /// a segment-axis catalog (whose shards all share the full axis).
    pub fn shard_windows(&self) -> Vec<(usize, usize)> {
        read_lock(&self.topology).windows.clone()
    }

    /// The shard files in shard order (window order on the trial axis).
    pub fn shard_paths(&self) -> Vec<PathBuf> {
        read_lock(&self.topology)
            .shards
            .iter()
            .map(|s| s.path.clone())
            .collect()
    }

    /// The current generation vector: one stamp per shard (commit
    /// counter + replacement epoch), changing exactly when that shard's
    /// visible data changes and never repeating across a file
    /// replacement.
    pub fn generations(&self) -> Vec<u64> {
        read_lock(&self.topology)
            .shards
            .iter()
            .map(|s| s.generation.load(Ordering::Acquire))
            .collect()
    }

    /// Per-shard committed segment counts.
    pub fn shard_segments(&self) -> Vec<usize> {
        read_lock(&self.topology)
            .shards
            .iter()
            .map(|s| read_lock(&s.reader).num_segments())
            .collect()
    }

    /// Resident bytes of every shard's loaded loss columns (zero-copy
    /// mapped columns count their mapped extent).
    pub fn memory_bytes(&self) -> usize {
        read_lock(&self.topology)
            .shards
            .iter()
            .map(|s| read_lock(&s.reader).memory_bytes())
            .sum()
    }

    /// Caps how often [`SourceProvider::refresh`] actually probes the
    /// shard files.  The default (zero) probes on every call — one
    /// 128-byte header read per shard per batch, which is fine on a
    /// local filesystem; serving many shards from a networked or
    /// cold-cache filesystem should raise this to bound the per-batch
    /// syscall cost, at the price of commits becoming visible up to the
    /// interval later.
    pub fn set_refresh_interval(&self, interval: Duration) {
        self.probe_interval_micros
            .store(interval.as_micros() as u64, Ordering::Relaxed);
    }

    /// Refreshes that made new commits visible (across all shards).
    pub fn refresh_count(&self) -> u64 {
        self.refreshes.load(Ordering::Relaxed)
    }

    /// Refresh attempts that failed (the shard kept its old snapshot).
    pub fn refresh_error_count(&self) -> u64 {
        self.refresh_errors.load(Ordering::Relaxed)
    }

    /// One human-readable line per shard, for serving logs.
    pub fn describe(&self) -> String {
        let topology = read_lock(&self.topology);
        topology
            .shards
            .iter()
            .enumerate()
            .map(|(index, shard)| {
                let reader = read_lock(&shard.reader);
                let window = match topology.axis {
                    ShardAxis::Segment => String::new(),
                    ShardAxis::Trial => {
                        let (start, end) = topology.windows[index];
                        format!(" covering trials {start}..{end}")
                    }
                };
                format!(
                    "{}: {} segments x {} trials{window} ({:.1} MB resident), commit {}",
                    shard.path.display(),
                    reader.num_segments(),
                    reader.num_trials(),
                    reader.memory_bytes() as f64 / 1.0e6,
                    reader.commit_seq()
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Runs `f` over the degraded empty-store shape: queries still
    /// answer (with no rows) instead of hanging or panicking a worker.
    fn with_empty<R>(
        &self,
        num_trials: usize,
        generations: &[u64],
        f: impl FnOnce(SourceSnapshot<'_>) -> R,
    ) -> R {
        let empty = ResultStore::new(num_trials);
        f(SourceSnapshot {
            source: &empty,
            generations,
            trial_windows: None,
            segment_ranges: None,
        })
    }
}

impl SourceProvider for StoreCatalog {
    fn num_trials(&self) -> usize {
        read_lock(&self.topology).num_trials
    }

    fn num_segments(&self) -> usize {
        match self.axis() {
            ShardAxis::Segment => self.shard_segments().iter().sum(),
            // The served set is the common committed prefix.
            ShardAxis::Trial => self.shard_segments().into_iter().min().unwrap_or(0),
        }
    }

    /// Probes every shard's committed generation (a 128-byte header
    /// read, no locks) and maps new commits in under the shard's write
    /// lock.  A watching catalog first sweeps its directory for new
    /// store files to adopt (same throttle).  Returns the shards whose
    /// visible state advanced.
    fn refresh(&self) -> Vec<usize> {
        let interval = self.probe_interval_micros.load(Ordering::Relaxed);
        if interval > 0 {
            let now = self.opened.elapsed().as_micros() as u64;
            let last = self.last_probe_micros.load(Ordering::Relaxed);
            if last != u64::MAX && now.saturating_sub(last) < interval {
                return Vec::new();
            }
            // Racing workers may both probe; the store is best-effort.
            self.last_probe_micros.store(now, Ordering::Relaxed);
        }
        self.discover();
        let topology = read_lock(&self.topology);
        let mut advanced = Vec::new();
        for (index, shard) in topology.shards.iter().enumerate() {
            let seen_seq = shard.generation.load(Ordering::Acquire) & SEQ_MASK;
            let header = match StoreReader::peek_header(&shard.path) {
                Ok(header) => header,
                Err(_) => {
                    self.refresh_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            };
            // Probe against the full committed-state fingerprint, not
            // just the commit counter: a replaced file whose counter
            // happens to match still moves the footer.
            if header.commit_seq & SEQ_MASK == seen_seq
                && header.footer_offset == shard.seen_footer_offset.load(Ordering::Relaxed)
                && header.footer_len == shard.seen_footer_len.load(Ordering::Relaxed)
            {
                continue;
            }
            let mut reader = write_lock(&shard.reader);
            let outcome = reader.refresh();
            // Record the probed fingerprint whatever the outcome, so a
            // change the reader cannot observe (a same-shape
            // replacement) does not re-take the write lock every batch.
            shard
                .seen_footer_offset
                .store(header.footer_offset, Ordering::Relaxed);
            shard
                .seen_footer_len
                .store(header.footer_len, Ordering::Relaxed);
            match outcome {
                Ok(true) => {
                    let new_seq = reader.commit_seq() & SEQ_MASK;
                    let mut epoch = shard.epoch.load(Ordering::Acquire);
                    let replaced = new_seq <= seen_seq;
                    // The shard's geometry (trial count, and on the trial
                    // axis its window offset) is fixed at open; only a
                    // file replacement can change it.
                    let mismatched = reader.num_trials() != shard.num_trials
                        || reader.trial_offset() != shard.trial_offset;
                    if replaced || mismatched {
                        // The file was replaced (the reader took its
                        // full-reload fallback): retire every stamp the
                        // old store ever produced.
                        epoch += 1;
                        shard.epoch.store(epoch, Ordering::Release);
                    }
                    if mismatched {
                        // A replacement changed the shard's geometry: it
                        // cannot join the catalog's scans any more
                        // (with_source excludes it) — surface that.
                        self.refresh_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    shard
                        .generation
                        .store(stamp(epoch, new_seq), Ordering::Release);
                    self.refreshes.fetch_add(1, Ordering::Relaxed);
                    advanced.push(index);
                }
                Ok(false) => {}
                Err(_) => {
                    // The shard keeps serving its current snapshot.
                    self.refresh_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        advanced
    }

    /// Hooks the catalog into the server's registry: records what each
    /// shard's open cost (already paid at [`StoreCatalog::open`]), wires
    /// every reader's future refreshes into `store_refresh_micros`, and
    /// arms the snapshot-assembly (`stage_schema_memo_micros`) timer.
    fn attach_telemetry(&self, registry: &Registry) {
        let open_hist = registry.histogram(stage::STORE_OPEN);
        let refresh_hist = registry.histogram(stage::STORE_REFRESH);
        for shard in &read_lock(&self.topology).shards {
            let mut reader = write_lock(&shard.reader);
            open_hist.record(reader.open_micros());
            reader.attach_refresh_histogram(Arc::clone(&refresh_hist));
        }
        *lock(&self.telemetry) = Some(CatalogTelemetry {
            schema_memo: registry.histogram(stage::SCHEMA_MEMO),
            store_open: open_hist,
            store_refresh: refresh_hist,
        });
    }

    fn drain_discovered(&self) -> Vec<PathBuf> {
        std::mem::take(&mut *lock(&self.discovered_queue))
    }

    fn with_source<R>(&self, f: impl FnOnce(SourceSnapshot<'_>) -> R) -> R {
        // The topology read lock pins the shard set for the whole batch
        // (discovery adopts under the write lock); then all shard read
        // locks are taken in shard order and held for the whole batch —
        // refresh takes write locks one shard at a time under the same
        // topology read lock, so there is no ordering cycle.
        let topology = read_lock(&self.topology);
        let guards: Vec<RwLockReadGuard<'_, StoreReader>> = topology
            .shards
            .iter()
            .map(|s| read_lock(&s.reader))
            .collect();
        // Stamps combine the locked reader's commit counter with the
        // shard's replacement epoch — the epoch is only ever written
        // under the shard's write lock, which cannot be held while we
        // hold the read lock, so stamp and data describe exactly this
        // snapshot.
        let generations: Vec<u64> = topology
            .shards
            .iter()
            .zip(&guards)
            .map(|(shard, guard)| stamp(shard.epoch.load(Ordering::Acquire), guard.commit_seq()))
            .collect();
        let schema_memo: Option<Arc<Histogram>> = lock(&self.telemetry)
            .as_ref()
            .map(|telemetry| Arc::clone(&telemetry.schema_memo));

        if topology.axis == ShardAxis::Trial {
            // Every window must still be covered by the store registered
            // for it; a geometry-changing replacement leaves a hole in
            // the trial axis, and a partial axis cannot answer exactly.
            let intact = topology.shards.iter().zip(&guards).all(|(shard, guard)| {
                guard.num_trials() == shard.num_trials && guard.trial_offset() == shard.trial_offset
            });
            let refs: Vec<&dyn SegmentSource> = guards
                .iter()
                .map(|guard| &**guard as &dyn SegmentSource)
                .collect();
            // Re-validating the cross-window segment layout is
            // O(segments × shards); skip it when nothing changed since
            // the last validated snapshot (any visible change moves a
            // generation stamp, which re-validates).
            let memo_started = Instant::now();
            let validated = lock(&self.trial_layout_cache)
                .as_ref()
                .is_some_and(|cached| cached == &generations);
            let stitched = intact.then(|| {
                if validated {
                    TrialShardedSource::with_validated_layout(refs)
                } else {
                    TrialShardedSource::new(refs)
                }
            });
            if let Some(histogram) = &schema_memo {
                histogram.record(memo_started.elapsed().as_micros() as u64);
            }
            return match stitched {
                // Shards that stopped describing the same segments (a
                // mid-ingest layout divergence) cannot stitch either.
                Some(Ok(stitched)) => {
                    if !validated {
                        *lock(&self.trial_layout_cache) = Some(generations.clone());
                    }
                    f(SourceSnapshot {
                        source: &stitched,
                        generations: &generations,
                        trial_windows: Some(&topology.windows),
                        segment_ranges: None,
                    })
                }
                _ => self.with_empty(topology.num_trials, &generations, f),
            };
        }

        // A shard whose file was replaced with a different trial count
        // cannot join the scan; exclude it (keep serving the rest)
        // rather than panicking a worker and stranding the batch.
        let usable: Vec<&dyn SegmentSource> = guards
            .iter()
            .filter(|guard| guard.num_trials() == topology.num_trials)
            .map(|guard| &**guard as &dyn SegmentSource)
            .collect();
        match usable.as_slice() {
            [] => {
                // Every shard diverged: serve the empty store shape so
                // queries still answer (with no rows) instead of hanging.
                self.with_empty(topology.num_trials, &generations, f)
            }
            [only] => f(SourceSnapshot {
                source: *only,
                generations: &generations,
                trial_windows: None,
                segment_ranges: None,
            }),
            _ => {
                // The segment-partial cache keys `(query, shard)` against
                // `generations[shard]`, so shard-indexed ranges are only
                // sound when no shard was excluded above.
                let all_usable = usable.len() == guards.len();
                // Re-attach the memoized merged schema when nothing
                // changed since it was built; otherwise rebuild and
                // memoize it for the next batch.
                let memo_started = Instant::now();
                let cached = lock(&self.schema_cache)
                    .as_ref()
                    .filter(|(key, _)| key == &generations)
                    .map(|(_, schema)| Arc::clone(schema));
                let sharded = cached
                    .and_then(|schema| ShardedSource::with_schema(usable.clone(), schema).ok())
                    .unwrap_or_else(|| {
                        let built = ShardedSource::new(usable)
                            .expect("usable shards all share the catalog trial count");
                        *lock(&self.schema_cache) =
                            Some((generations.clone(), Arc::clone(built.schema())));
                        built
                    });
                if let Some(histogram) = &schema_memo {
                    histogram.record(memo_started.elapsed().as_micros() as u64);
                }
                let ranges = all_usable.then(|| sharded.schema().segment_ranges());
                f(SourceSnapshot {
                    source: &sharded,
                    generations: &generations,
                    trial_windows: None,
                    segment_ranges: ranges.as_deref(),
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_eventgen::peril::{Peril, Region};
    use catrisk_finterms::layer::LayerId;
    use catrisk_riskquery::prelude::*;
    use catrisk_riskstore::{StoreOptions, StoreWriter};
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-catalog-{}-{}.clm",
            std::process::id(),
            name
        ));
        path
    }

    fn meta(layer: u32, peril: Peril) -> SegmentMeta {
        SegmentMeta::new(
            LayerId(layer),
            peril,
            Region::Europe,
            LineOfBusiness::Property,
        )
    }

    fn write_shard(path: &Path, trials: usize, layers: std::ops::Range<u32>) {
        let mut writer = StoreWriter::create(path, trials).unwrap();
        for layer in layers {
            let losses: Vec<f64> = (0..trials).map(|t| (layer as usize + t) as f64).collect();
            writer
                .append_segment(
                    meta(layer, Peril::ALL[layer as usize % Peril::ALL.len()]),
                    &losses,
                    &losses,
                )
                .unwrap();
        }
        writer.finish().unwrap();
    }

    /// Splits the trial axis of a synthetic 3-layer portfolio into
    /// window shard files at `cuts`, returning the windowed paths plus
    /// an in-memory store holding the full axis.
    fn write_trial_shards(
        name: &str,
        trials: usize,
        cuts: &[usize],
    ) -> (Vec<PathBuf>, ResultStore) {
        let layers = 3u32;
        let column = |layer: u32| -> Vec<f64> {
            (0..trials)
                .map(|t| ((layer as usize * 7 + t * 3) % 11) as f64)
                .collect()
        };
        let mut whole = ResultStore::new(trials);
        for layer in 0..layers {
            let losses = column(layer);
            let outcomes = losses
                .iter()
                .map(|&l| catrisk_engine::ylt::TrialOutcome {
                    year_loss: l,
                    max_occurrence_loss: l * 0.5,
                    nonzero_events: 0,
                })
                .collect();
            whole
                .ingest(
                    &catrisk_engine::ylt::YearLossTable::new(LayerId(layer), outcomes),
                    meta(layer, Peril::ALL[layer as usize % Peril::ALL.len()]),
                )
                .unwrap();
        }
        let mut bounds = vec![0usize];
        bounds.extend_from_slice(cuts);
        bounds.push(trials);
        let mut paths = Vec::new();
        for (index, window) in bounds.windows(2).enumerate() {
            let (start, end) = (window[0], window[1]);
            let path = temp_path(&format!("{name}-w{index}"));
            let mut writer = StoreWriter::create_with(
                &path,
                end - start,
                StoreOptions {
                    trial_offset: start as u64,
                    ..StoreOptions::default()
                },
            )
            .unwrap();
            for layer in 0..layers {
                let losses = column(layer);
                let occ: Vec<f64> = losses[start..end].iter().map(|&l| l * 0.5).collect();
                writer
                    .append_segment(
                        meta(layer, Peril::ALL[layer as usize % Peril::ALL.len()]),
                        &losses[start..end],
                        &occ,
                    )
                    .unwrap();
            }
            writer.finish().unwrap();
            paths.push(path);
        }
        (paths, whole)
    }

    #[test]
    fn catalog_unions_shards_and_refreshes_live() {
        let a = temp_path("union-a");
        let b = temp_path("union-b");
        write_shard(&a, 8, 0..3);
        write_shard(&b, 8, 3..5);

        let catalog = StoreCatalog::open([&a, &b]).unwrap();
        assert_eq!(catalog.num_shards(), 2);
        assert_eq!(catalog.axis(), ShardAxis::Segment);
        assert!(catalog.shard_windows().is_empty());
        assert_eq!(SourceProvider::num_trials(&catalog), 8);
        assert_eq!(SourceProvider::num_segments(&catalog), 5);
        assert_eq!(catalog.shard_segments(), vec![3, 2]);
        assert_eq!(catalog.shard_paths().len(), 2);
        assert!(catalog.memory_bytes() >= 5 * 2 * 8 * 8);
        assert!(catalog.describe().lines().count() == 2);

        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let before = catalog.with_source(|snapshot| {
            assert_eq!(snapshot.generations.len(), 2);
            assert!(snapshot.trial_windows.is_none());
            execute(snapshot.source, &query).unwrap()
        });

        // Nothing committed since open: refresh is a no-op.
        assert!(SourceProvider::refresh(&catalog).is_empty());
        assert_eq!(catalog.refresh_count(), 0);

        // An ingest writer appends to shard B mid-serve.
        let mut writer = StoreWriter::open_append(&b).unwrap();
        let losses = vec![100.0; 8];
        writer
            .append_segment(meta(99, Peril::WinterStorm), &losses, &losses)
            .unwrap();
        writer.commit().unwrap();
        drop(writer);

        assert_eq!(SourceProvider::refresh(&catalog), vec![1]);
        assert_eq!(catalog.refresh_count(), 1);
        assert_eq!(SourceProvider::num_segments(&catalog), 6);
        let generations = catalog.generations();
        let after = catalog.with_source(|snapshot| {
            assert_eq!(snapshot.generations, generations.as_slice());
            execute(snapshot.source, &query).unwrap()
        });
        assert_ne!(before, after, "the new segment must be visible");

        // The refreshed union matches a cold-open union bit for bit.
        let cold = StoreCatalog::open([&a, &b]).unwrap();
        assert_eq!(
            cold.with_source(|s| execute(s.source, &query).unwrap()),
            after
        );

        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn trial_axis_catalog_stitches_windows_bit_identically() {
        let trials = 24;
        let (paths, whole) = write_trial_shards("trial-union", trials, &[9, 16]);

        // Shards listed out of window order: the catalog sorts by the
        // persisted trial offset.
        let catalog = StoreCatalog::open([&paths[2], &paths[0], &paths[1]]).unwrap();
        assert_eq!(catalog.axis(), ShardAxis::Trial);
        assert_eq!(catalog.shard_windows(), &[(0, 9), (9, 16), (16, 24)]);
        assert_eq!(SourceProvider::num_trials(&catalog), trials);
        assert_eq!(SourceProvider::num_segments(&catalog), 3);
        assert!(catalog.describe().contains("covering trials 9..16"));

        let queries = [
            QueryBuilder::new()
                .group_by(Dimension::Peril)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::Tvar { level: 0.9 })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .trials(5..20)
                .loss_at_least(3.0)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::MaxLoss)
                .build()
                .unwrap(),
        ];
        for query in &queries {
            let stitched = catalog.with_source(|snapshot| {
                assert_eq!(
                    snapshot.trial_windows,
                    Some(&[(0, 9), (9, 16), (16, 24)][..])
                );
                execute(snapshot.source, query).unwrap()
            });
            assert_eq!(
                stitched,
                execute(&whole, query).unwrap(),
                "the stitched trial axis must be bit-identical to the whole store"
            );
        }
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn trial_axis_prefix_clamps_until_every_shard_commits() {
        let trials = 12;
        let (paths, _) = write_trial_shards("trial-clamp", trials, &[5]);
        let catalog = StoreCatalog::open([&paths[0], &paths[1]]).unwrap();
        assert_eq!(SourceProvider::num_segments(&catalog), 3);
        let query = QueryBuilder::new()
            .group_by(Dimension::Layer)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let rows_before = catalog.with_source(|s| execute(s.source, &query).unwrap().rows.len());

        // One window's writer commits layer 9 before its peer: the union
        // must keep serving the 3-segment prefix.
        let mut writer = StoreWriter::open_append(&paths[0]).unwrap();
        writer
            .append_segment(meta(9, Peril::WinterStorm), &[7.0; 5], &[7.0; 5])
            .unwrap();
        writer.commit().unwrap();
        drop(writer);
        assert_eq!(SourceProvider::refresh(&catalog), vec![0]);
        assert_eq!(SourceProvider::num_segments(&catalog), 3);
        assert_eq!(
            catalog.with_source(|s| execute(s.source, &query).unwrap().rows.len()),
            rows_before,
            "a layer committed to only one window must stay invisible"
        );

        // The peer catches up: the stitched layer appears.
        let mut writer = StoreWriter::open_append(&paths[1]).unwrap();
        writer
            .append_segment(meta(9, Peril::WinterStorm), &[3.0; 7], &[3.0; 7])
            .unwrap();
        writer.commit().unwrap();
        drop(writer);
        assert_eq!(SourceProvider::refresh(&catalog), vec![1]);
        assert_eq!(SourceProvider::num_segments(&catalog), 4);
        assert_eq!(
            catalog.with_source(|s| execute(s.source, &query).unwrap().rows.len()),
            rows_before + 1
        );
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn server_over_trial_catalog_rescans_only_the_refreshed_shard() {
        use crate::server::{Server, ServerConfig};
        let trials = 18;
        let (paths, whole) = write_trial_shards("trial-partials", trials, &[7, 12]);
        let catalog = StoreCatalog::open([&paths[0], &paths[1], &paths[2]]).unwrap();
        let server = Server::new(catalog, ServerConfig::default());
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.9 })
            .build()
            .unwrap();

        // Cold: every window rescans, and the stitch matches the
        // unsharded store bit for bit.
        let first = server.query(query.clone()).unwrap().result;
        assert_eq!(first, execute(&whole, &query).unwrap());
        let stats = server.stats();
        assert_eq!(stats.partial_misses, 3, "{stats:?}");
        assert_eq!(stats.partial_hits, 0, "{stats:?}");

        // Warm repeat: the whole-result cache answers; partials untouched.
        assert_eq!(server.query(query.clone()).unwrap().result, first);
        let stats = server.stats();
        assert_eq!(stats.partial_misses, 3, "{stats:?}");
        assert!(stats.cache_hits >= 1, "{stats:?}");

        // One window's writer commits a layer its peers don't have yet:
        // the result cache must miss (that shard's stamp moved), but the
        // partial cache re-serves the two untouched windows — only the
        // committed window rescans, and the result is unchanged because
        // the common prefix is.
        let mut writer = StoreWriter::open_append(&paths[1]).unwrap();
        writer
            .append_segment(meta(9, Peril::WinterStorm), &[7.0; 5], &[7.0; 5])
            .unwrap();
        writer.commit().unwrap();
        drop(writer);
        assert_eq!(server.query(query.clone()).unwrap().result, first);
        let stats = server.stats();
        assert_eq!(
            stats.partial_hits, 2,
            "the untouched windows must re-serve their cached partials: {stats:?}"
        );
        assert_eq!(
            stats.partial_misses, 4,
            "exactly the refreshed window rescans: {stats:?}"
        );
        assert!(stats.refreshes >= 1, "{stats:?}");

        // The peers catch up: the segment prefix grows, so every cached
        // partial is (correctly) too narrow and the whole axis rescans.
        for path in [&paths[0], &paths[2]] {
            let mut writer = StoreWriter::open_append(path).unwrap();
            let trials = writer.num_trials();
            writer
                .append_segment(
                    meta(9, Peril::WinterStorm),
                    &vec![7.0; trials],
                    &vec![7.0; trials],
                )
                .unwrap();
            writer.commit().unwrap();
        }
        let grown = server.query(query.clone()).unwrap().result;
        assert_ne!(grown, first, "the stitched new layer must be visible");
        let stats = server.stats();
        assert_eq!(stats.partial_misses, 7, "{stats:?}");

        server.shutdown();
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn trial_axis_rejects_gaps_overlaps_and_missing_zero() {
        let trials = 12;
        let (paths, _) = write_trial_shards("trial-gaps", trials, &[5]);
        // Only the second window: the axis does not start at 0.
        assert!(matches!(
            StoreCatalog::open([&paths[1]]),
            Err(StoreError::InvalidArgument(_))
        ));
        // Overlap: window 1 served twice under different names — the
        // second copy's offset lands where trial 12 should start.
        let copy = temp_path("trial-gaps-copy");
        std::fs::copy(&paths[1], &copy).unwrap();
        assert!(matches!(
            StoreCatalog::open([&paths[0], &paths[1], &copy]),
            Err(StoreError::InvalidArgument(_))
        ));
        let _ = std::fs::remove_file(&copy);
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    #[test]
    fn catalog_rejects_mismatched_trials_and_empty_lists() {
        let a = temp_path("mismatch-a");
        let b = temp_path("mismatch-b");
        write_shard(&a, 8, 0..1);
        write_shard(&b, 16, 0..1);
        assert!(matches!(
            StoreCatalog::open([&a, &b]),
            Err(StoreError::InvalidArgument(_))
        ));
        assert!(matches!(
            StoreCatalog::open(Vec::<PathBuf>::new()),
            Err(StoreError::InvalidArgument(_))
        ));
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn duplicate_shard_paths_are_rejected() {
        let a = temp_path("dup");
        write_shard(&a, 4, 0..1);
        assert!(matches!(
            StoreCatalog::open([&a, &a]),
            Err(StoreError::InvalidArgument(_))
        ));
        // A relative respelling of the same file is caught too.
        let relative = {
            let mut p = a.clone();
            let name = p.file_name().unwrap().to_owned();
            p.pop();
            p.push(".");
            p.push(name);
            p
        };
        assert!(matches!(
            StoreCatalog::open([a.clone(), relative]),
            Err(StoreError::InvalidArgument(_))
        ));
        let _ = std::fs::remove_file(&a);
    }

    #[test]
    fn path_identity_normalises_lexically_when_canonicalize_fails() {
        // Nonexistent paths cannot canonicalise; the lexical fallback
        // must still unify `.` hops and relative respellings.
        let missing = temp_path("never-written");
        let respelled = {
            let mut p = missing.clone();
            let name = p.file_name().unwrap().to_owned();
            p.pop();
            p.push(".");
            p.push(".");
            p.push(name);
            p
        };
        assert_eq!(path_identity(&missing), path_identity(&respelled));
        // `..` hops resolve lexically too.
        let dotted = {
            let mut p = missing.clone();
            let name = p.file_name().unwrap().to_owned();
            p.pop();
            p.push("sub");
            p.push("..");
            p.push(name);
            p
        };
        assert_eq!(path_identity(&missing), path_identity(&dotted));
        // Relative paths resolve against the current directory.
        assert!(path_identity(Path::new("x.clm")).is_absolute());
    }

    #[test]
    fn same_commit_counter_replacement_is_detected_by_the_footer_fingerprint() {
        let a = temp_path("fingerprint");
        // Two commits, two segments.
        let mut writer = StoreWriter::create(&a, 4).unwrap();
        for layer in 0..2 {
            writer
                .append_segment(meta(layer, Peril::Hurricane), &[1.0; 4], &[1.0; 4])
                .unwrap();
            writer.commit().unwrap();
        }
        drop(writer);
        let catalog = StoreCatalog::open([&a]).unwrap();
        assert!(SourceProvider::refresh(&catalog).is_empty());
        let before = catalog.generations();

        // Replaced by a different store that also ends at commit_seq 2
        // but holds three segments: the commit counter alone cannot tell
        // them apart, the footer fingerprint can.
        let mut writer = StoreWriter::create(&a, 4).unwrap();
        writer
            .append_segment(meta(10, Peril::Flood), &[9.0; 4], &[9.0; 4])
            .unwrap();
        writer.commit().unwrap();
        for layer in 11..13 {
            writer
                .append_segment(meta(layer, Peril::Flood), &[9.0; 4], &[9.0; 4])
                .unwrap();
        }
        writer.commit().unwrap();
        drop(writer);
        assert_eq!(StoreReader::peek_commit_seq(&a).unwrap(), 2);

        assert_eq!(SourceProvider::refresh(&catalog), vec![0]);
        assert_eq!(SourceProvider::num_segments(&catalog), 3);
        assert_ne!(catalog.generations(), before, "stamps must retire");
        let _ = std::fs::remove_file(&a);
    }

    #[test]
    fn refresh_interval_throttles_header_probes() {
        let a = temp_path("throttle");
        write_shard(&a, 4, 0..1);
        let catalog = StoreCatalog::open([&a]).unwrap();
        catalog.set_refresh_interval(Duration::from_secs(3600));

        // First refresh after open always probes.
        assert!(SourceProvider::refresh(&catalog).is_empty());

        // A commit lands, but the throttle window is still open: the
        // probe is skipped and the commit stays invisible for now.
        let mut writer = StoreWriter::open_append(&a).unwrap();
        writer
            .append_segment(meta(9, Peril::Flood), &[1.0; 4], &[1.0; 4])
            .unwrap();
        writer.commit().unwrap();
        drop(writer);
        assert!(SourceProvider::refresh(&catalog).is_empty());
        assert_eq!(SourceProvider::num_segments(&catalog), 1);

        // Dropping the throttle surfaces it on the next refresh.
        catalog.set_refresh_interval(Duration::ZERO);
        assert_eq!(SourceProvider::refresh(&catalog), vec![0]);
        assert_eq!(SourceProvider::num_segments(&catalog), 2);
        let _ = std::fs::remove_file(&a);
    }

    #[test]
    fn replaced_file_retires_old_generation_stamps() {
        let a = temp_path("epoch-a");
        // Three commits: the original store ends at commit_seq 3.
        let mut writer = StoreWriter::create(&a, 4).unwrap();
        for layer in 0..3 {
            writer
                .append_segment(meta(layer, Peril::Hurricane), &[1.0; 4], &[1.0; 4])
                .unwrap();
            writer.commit().unwrap();
        }
        drop(writer);
        let catalog = StoreCatalog::open([&a]).unwrap();
        let original = catalog.generations();

        // The file is replaced by a different store with fewer commits;
        // the refresh takes the reader's full-reload fallback and the
        // epoch retires the old stamps.
        let mut writer = StoreWriter::create(&a, 4).unwrap();
        writer
            .append_segment(meta(10, Peril::Flood), &[9.0; 4], &[9.0; 4])
            .unwrap();
        writer.commit().unwrap();
        assert_eq!(SourceProvider::refresh(&catalog), vec![0]);

        // The new store is then committed until its counter reaches the
        // old value of 3: the stamp must still differ from the original.
        for layer in 11..13 {
            writer
                .append_segment(meta(layer, Peril::Flood), &[9.0; 4], &[9.0; 4])
                .unwrap();
            writer.commit().unwrap();
        }
        drop(writer);
        assert_eq!(SourceProvider::refresh(&catalog), vec![0]);
        let replaced = catalog.generations();
        assert_ne!(
            original, replaced,
            "a replaced store reaching the old commit counter must not \
             reproduce the old generation stamp"
        );
        catalog.with_source(|snapshot| {
            assert_eq!(snapshot.generations, replaced.as_slice());
        });
        let _ = std::fs::remove_file(&a);
    }

    #[test]
    fn trial_count_replacement_excludes_the_shard_without_panicking() {
        let a = temp_path("mismatch-live-a");
        let b = temp_path("mismatch-live-b");
        write_shard(&a, 8, 0..2);
        write_shard(&b, 8, 2..4);
        let catalog = StoreCatalog::open([&a, &b]).unwrap();
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let only_a = {
            let solo = StoreCatalog::open([&a]).unwrap();
            solo.with_source(|s| execute(s.source, &query).unwrap())
        };

        // Shard B is replaced by a store with a different trial count —
        // a misconfiguration refresh must survive.  (Two commits, so the
        // cheap header probe sees the counter move.)
        std::fs::remove_file(&b).unwrap();
        let mut writer = StoreWriter::create(&b, 16).unwrap();
        for layer in 2..4 {
            writer
                .append_segment(meta(layer, Peril::Flood), &[9.0; 16], &[9.0; 16])
                .unwrap();
            writer.commit().unwrap();
        }
        drop(writer);
        assert_eq!(SourceProvider::refresh(&catalog), vec![1]);
        assert!(catalog.refresh_error_count() >= 1);
        // The catalog keeps serving shard A; the divergent shard is
        // excluded rather than panicking the batch.
        let served = catalog.with_source(|s| execute(s.source, &query).unwrap());
        assert_eq!(served, only_a);
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn trial_axis_geometry_replacement_degrades_to_empty() {
        let trials = 10;
        let (paths, _) = write_trial_shards("trial-degrade", trials, &[4]);
        let catalog = StoreCatalog::open([&paths[0], &paths[1]]).unwrap();
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert!(!catalog
            .with_source(|s| execute(s.source, &query).unwrap())
            .rows
            .is_empty());

        // Window 1's file is replaced by a store with a different
        // window: the trial axis now has a hole, so the catalog serves
        // the empty shape instead of a wrong stitch.
        std::fs::remove_file(&paths[1]).unwrap();
        let mut writer = StoreWriter::create_with(
            &paths[1],
            3,
            StoreOptions {
                trial_offset: 99,
                ..StoreOptions::default()
            },
        )
        .unwrap();
        writer
            .append_segment(meta(0, Peril::Flood), &[1.0; 3], &[1.0; 3])
            .unwrap();
        writer.commit().unwrap();
        writer
            .append_segment(meta(1, Peril::Flood), &[1.0; 3], &[1.0; 3])
            .unwrap();
        writer.commit().unwrap();
        drop(writer);
        assert_eq!(SourceProvider::refresh(&catalog), vec![1]);
        assert!(catalog.refresh_error_count() >= 1);
        catalog.with_source(|snapshot| {
            assert!(
                snapshot.trial_windows.is_none(),
                "degraded snapshots are unsharded"
            );
            assert!(execute(snapshot.source, &query).unwrap().rows.is_empty());
        });
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
    }

    /// A fresh, empty temp directory for discovery tests.
    fn temp_dir(name: &str) -> PathBuf {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "catrisk-catalog-dir-{}-{}",
            std::process::id(),
            name
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn open_dir_discovers_segment_shards_dropped_later() {
        let dir = temp_dir("discover-segment");
        write_shard(&dir.join("a.clm"), 8, 0..3);
        // Non-store files in the directory are ignored.
        std::fs::write(dir.join("notes.txt"), "not a store").unwrap();

        let catalog = StoreCatalog::open_dir(&dir).unwrap();
        assert_eq!(catalog.num_shards(), 1);
        assert_eq!(catalog.watched_dir().as_deref(), Some(dir.as_path()));
        assert_eq!(catalog.discovered_count(), 0);

        let query = QueryBuilder::new()
            .group_by(Dimension::Layer)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let rows_before = catalog.with_source(|s| execute(s.source, &query).unwrap().rows.len());

        // An ingest pipeline drops a second shard into the directory.
        write_shard(&dir.join("b.clm"), 8, 3..5);
        assert!(SourceProvider::refresh(&catalog).is_empty());
        assert_eq!(catalog.num_shards(), 2);
        assert_eq!(catalog.discovered_count(), 1);
        assert_eq!(
            SourceProvider::drain_discovered(&catalog),
            vec![dir.join("b.clm")]
        );
        assert!(
            SourceProvider::drain_discovered(&catalog).is_empty(),
            "the drain is a take, not a read"
        );
        assert_eq!(
            catalog.with_source(|s| execute(s.source, &query).unwrap().rows.len()),
            rows_before + 2,
            "the discovered shard's layers must be served"
        );
        // Bit-identical to a cold open over both files.
        let cold = StoreCatalog::open([dir.join("a.clm"), dir.join("b.clm")]).unwrap();
        assert_eq!(
            catalog.with_source(|s| execute(s.source, &query).unwrap()),
            cold.with_source(|s| execute(s.source, &query).unwrap())
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_dir_discovers_the_next_trial_window() {
        let trials = 16;
        let (paths, whole) = write_trial_shards("discover-window", trials, &[10]);
        let dir = temp_dir("discover-trial");
        // Start with only window [0, 10): a one-window axis opens as a
        // (trivially) segment-axis catalog.
        std::fs::copy(&paths[0], dir.join("w0.clm")).unwrap();
        let catalog = StoreCatalog::open_dir(&dir).unwrap();
        assert_eq!(catalog.axis(), ShardAxis::Segment);
        assert_eq!(SourceProvider::num_trials(&catalog), 10);

        // The ingest writer drops the next trial window: the catalog
        // reinterprets its single shard as window 0 and grows the axis.
        std::fs::copy(&paths[1], dir.join("w1.clm")).unwrap();
        SourceProvider::refresh(&catalog);
        assert_eq!(catalog.axis(), ShardAxis::Trial);
        assert_eq!(SourceProvider::num_trials(&catalog), trials);
        assert_eq!(catalog.shard_windows(), vec![(0, 10), (10, 16)]);
        assert_eq!(catalog.discovered_count(), 1);

        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.9 })
            .build()
            .unwrap();
        assert_eq!(
            catalog.with_source(|s| execute(s.source, &query).unwrap()),
            execute(&whole, &query).unwrap(),
            "the grown axis must stitch bit-identically to the whole store"
        );
        for path in &paths {
            let _ = std::fs::remove_file(path);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn incompatible_discovered_stores_are_rejected_once() {
        let dir = temp_dir("discover-reject");
        write_shard(&dir.join("a.clm"), 8, 0..2);
        let catalog = StoreCatalog::open_dir(&dir).unwrap();

        // Wrong trial count: can never join the 8-trial union.
        write_shard(&dir.join("bad.clm"), 16, 0..1);
        // Not a store at all: unopenable, retried (not rejected) in case
        // it is still being written.
        std::fs::write(dir.join("torn.clm"), b"garbage").unwrap();

        SourceProvider::refresh(&catalog);
        assert_eq!(catalog.num_shards(), 1);
        assert_eq!(catalog.discovered_count(), 0);
        let errors_after_first = catalog.refresh_error_count();
        assert!(errors_after_first >= 1, "the rejection must be counted");

        // The rejection is remembered: later sweeps do not re-count it.
        SourceProvider::refresh(&catalog);
        assert_eq!(catalog.refresh_error_count(), errors_after_first);
        assert_eq!(catalog.num_shards(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_dir_rejects_storeless_directories() {
        let dir = temp_dir("discover-empty");
        assert!(matches!(
            StoreCatalog::open_dir(&dir),
            Err(StoreError::InvalidArgument(_))
        ));
        assert!(StoreCatalog::open_dir(dir.join("never-made")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn discovery_respects_the_refresh_throttle() {
        let dir = temp_dir("discover-throttle");
        write_shard(&dir.join("a.clm"), 8, 0..2);
        let catalog = StoreCatalog::open_dir(&dir).unwrap();
        catalog.set_refresh_interval(Duration::from_secs(3600));
        // First refresh after open always probes (and sweeps).
        SourceProvider::refresh(&catalog);

        write_shard(&dir.join("b.clm"), 8, 2..3);
        SourceProvider::refresh(&catalog);
        assert_eq!(
            catalog.num_shards(),
            1,
            "the sweep must wait out the same throttle as the header probes"
        );
        catalog.set_refresh_interval(Duration::ZERO);
        SourceProvider::refresh(&catalog);
        assert_eq!(catalog.num_shards(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unreadable_shard_keeps_serving_its_snapshot() {
        let a = temp_path("unreadable-a");
        write_shard(&a, 4, 0..2);
        let catalog = StoreCatalog::open([&a]).unwrap();
        std::fs::remove_file(&a).unwrap();
        assert!(SourceProvider::refresh(&catalog).is_empty());
        assert_eq!(catalog.refresh_error_count(), 1);
        assert_eq!(SourceProvider::num_segments(&catalog), 2);
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        catalog.with_source(|snapshot| {
            assert!(execute(snapshot.source, &query).is_ok());
        });
    }
}
