//! Ablation — the ELT lookup-structure design decision (paper §III.B).
//!
//! The paper argues the direct access table minimises memory accesses per
//! lookup at the cost of memory; this benchmark measures all four
//! implemented representations (direct, sorted/binary-search, open-addressing
//! hash, cuckoo hash) on the same workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_engine::parallel::ParallelEngine;
use catrisk_lookup::LookupKind;

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        num_events: 100_000,
        trials: 1_000,
        events_per_trial: 1_000.0,
        num_elts: 15,
        elt_records: 10_000,
        num_layers: 1,
        elts_per_layer: 15,
        ..WorkloadSpec::bench_scale()
    }
}

fn lookup_structures(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_lookup_structure");
    group.sample_size(10);
    for kind in LookupKind::ALL {
        let input = build_input(&workload().with_lookup(kind));
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &input,
            |b, input| b.iter(|| ParallelEngine::new().run(input)),
        );
    }
    group.finish();
}

criterion_group!(ablation, lookup_structures);
criterion_main!(ablation);
