//! Portfolios of contracts and their analysis.

use std::sync::Arc;

use serde::{Deserialize, Serialize};

use catrisk_catmodel::elt::EventLossTable;
use catrisk_engine::input::{AnalysisInput, AnalysisInputBuilder};
use catrisk_engine::parallel::ParallelEngine;
use catrisk_engine::sequential::SequentialEngine;
use catrisk_engine::ylt::{AnalysisOutput, TrialOutcome, YearLossTable};
use catrisk_eventgen::yet::YearEventTable;
use catrisk_finterms::layer::{Layer, LayerId};
use catrisk_lookup::LookupKind;
use catrisk_metrics::report::RiskReport;

use crate::contract::Contract;
use crate::{PortfolioError, Result};

/// A book of reinsurance contracts written against a common set of exposure
/// ELTs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Portfolio {
    /// Name of the portfolio / underwriting year.
    pub name: String,
    /// The contracts in the book.
    pub contracts: Vec<Contract>,
}

impl Portfolio {
    /// Creates an empty portfolio.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            contracts: Vec::new(),
        }
    }

    /// Adds a contract and returns its index within the portfolio.
    pub fn add(&mut self, contract: Contract) -> usize {
        self.contracts.push(contract);
        self.contracts.len() - 1
    }

    /// Number of contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// True when the portfolio has no contracts.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// Total annual premium of the book.
    pub fn total_premium(&self) -> f64 {
        self.contracts.iter().map(|c| c.premium).sum()
    }

    /// Validates every contract against the number of available ELTs.
    pub fn validate(&self, available_elts: usize) -> Result<()> {
        if self.contracts.is_empty() {
            return Err(PortfolioError::Invalid("portfolio has no contracts".into()));
        }
        for c in &self.contracts {
            c.validate(available_elts)?;
        }
        Ok(())
    }
}

/// The effective share of losses retained by the reinsurer for a contract:
/// its written share times the treaty's proportional cession.
fn effective_share(contract: &Contract) -> f64 {
    contract.written_share * contract.treaty.cession_share()
}

/// A portfolio prepared for analysis: the engine input plus the contract
/// metadata needed to scale and report results.
pub struct PortfolioAnalysis {
    portfolio: Portfolio,
    input: AnalysisInput,
}

impl PortfolioAnalysis {
    /// Preprocesses a portfolio: builds the engine input covering every
    /// contract as one layer over the shared Year Event Table.
    pub fn build(
        portfolio: Portfolio,
        elts: &[EventLossTable],
        yet: Arc<YearEventTable>,
        lookup: LookupKind,
    ) -> Result<Self> {
        portfolio.validate(elts.len())?;
        let mut builder = AnalysisInputBuilder::new();
        builder.with_lookup(lookup);
        builder.set_yet_shared(yet);
        for elt in elts {
            builder.add_elt(&elt.loss_pairs(), elt.financial_terms);
        }
        for (i, contract) in portfolio.contracts.iter().enumerate() {
            builder.add_layer(Layer {
                id: LayerId(i as u32),
                elt_indices: contract.elt_indices.clone(),
                terms: contract.layer_terms(),
                participation: effective_share(contract),
                description: contract.treaty.describe(),
            });
        }
        let input = builder
            .build()
            .map_err(|e| PortfolioError::Invalid(e.to_string()))?;
        Ok(Self { portfolio, input })
    }

    /// The underlying engine input (one layer per contract).
    pub fn input(&self) -> &AnalysisInput {
        &self.input
    }

    /// The portfolio being analysed.
    pub fn portfolio(&self) -> &Portfolio {
        &self.portfolio
    }

    /// Runs the analysis on all cores and returns the per-contract results
    /// scaled by each contract's effective share.
    pub fn run(&self) -> PortfolioResult {
        let output = ParallelEngine::new().run(&self.input);
        self.assemble(output)
    }

    /// Runs the analysis on a single core (reference / small portfolios).
    pub fn run_sequential(&self) -> PortfolioResult {
        let output = SequentialEngine::new().run(&self.input);
        self.assemble(output)
    }

    fn assemble(&self, output: AnalysisOutput) -> PortfolioResult {
        let ylts: Vec<YearLossTable> = output
            .layers()
            .iter()
            .zip(&self.portfolio.contracts)
            .map(|(ylt, contract)| {
                let share = effective_share(contract);
                let outcomes = ylt
                    .outcomes()
                    .iter()
                    .map(|o| TrialOutcome {
                        year_loss: o.year_loss * share,
                        max_occurrence_loss: o.max_occurrence_loss * share,
                        nonzero_events: o.nonzero_events,
                    })
                    .collect();
                YearLossTable::new(ylt.layer_id, outcomes)
            })
            .collect();
        PortfolioResult {
            portfolio: self.portfolio.clone(),
            ylts,
        }
    }
}

/// The result of analysing a portfolio: one (share-scaled) Year Loss Table
/// per contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioResult {
    /// The analysed portfolio.
    pub portfolio: Portfolio,
    ylts: Vec<YearLossTable>,
}

impl PortfolioResult {
    /// The Year Loss Table of contract `i` (scaled to the written share).
    pub fn contract_ylt(&self, i: usize) -> &YearLossTable {
        &self.ylts[i]
    }

    /// All contract Year Loss Tables.
    pub fn ylts(&self) -> &[YearLossTable] {
        &self.ylts
    }

    /// Per-trial portfolio losses (sum over contracts).
    pub fn portfolio_losses(&self) -> Vec<f64> {
        if self.ylts.is_empty() {
            return vec![];
        }
        let trials = self.ylts[0].num_trials();
        let mut total = vec![0.0; trials];
        for ylt in &self.ylts {
            for (acc, o) in total.iter_mut().zip(ylt.outcomes()) {
                *acc += o.year_loss;
            }
        }
        total
    }

    /// Expected annual loss of the whole book.
    pub fn expected_loss(&self) -> f64 {
        self.ylts.iter().map(|y| y.mean_loss()).sum()
    }

    /// Underwriting margin: premium minus expected loss.
    pub fn expected_underwriting_result(&self) -> f64 {
        self.portfolio.total_premium() - self.expected_loss()
    }

    /// Risk report for one contract.
    pub fn contract_report(&self, i: usize) -> RiskReport {
        RiskReport::from_ylt(self.portfolio.contracts[i].name.clone(), &self.ylts[i])
    }

    /// Risk report for the whole portfolio.
    pub fn portfolio_report(&self) -> RiskReport {
        RiskReport::from_losses(self.portfolio.name.clone(), &self.portfolio_losses(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::ContractId;
    use catrisk_catmodel::elt::EltRecord;
    use catrisk_eventgen::yet::{EventOccurrence, YetBuilder};
    use catrisk_finterms::currency::Currency;
    use catrisk_finterms::terms::FinancialTerms;
    use catrisk_finterms::treaty::Treaty;

    fn test_elts() -> Vec<EventLossTable> {
        let make = |name: &str, step: u32, scale: f64| {
            let records = (0..500u32)
                .step_by(step as usize)
                .map(|e| EltRecord {
                    event: e,
                    mean_loss: scale * (1_000.0 + 10.0 * f64::from(e)),
                    std_dev: 0.0,
                    exposure_value: 0.0,
                })
                .collect();
            EventLossTable::new(name, Currency::Usd, FinancialTerms::pass_through(), records)
        };
        vec![
            make("book-a", 2, 1.0),
            make("book-b", 3, 2.0),
            make("book-c", 5, 0.5),
        ]
    }

    fn test_yet() -> Arc<YearEventTable> {
        let mut b = YetBuilder::new(500, 200, 6);
        for t in 0..200u32 {
            let events: Vec<EventOccurrence> = (0..(t % 9))
                .map(|i| EventOccurrence {
                    event: (t.wrapping_mul(37).wrapping_add(i * 11)) % 500,
                    time: f32::from(i as u8),
                })
                .collect();
            b.push_trial(events);
        }
        Arc::new(b.build())
    }

    fn test_portfolio() -> Portfolio {
        let mut p = Portfolio::new("UW-2012");
        p.add(
            Contract::new(
                ContractId(0),
                "alpha",
                Treaty::cat_xl(2_000.0, 20_000.0),
                vec![0, 1],
            )
            .with_premium(5_000.0),
        );
        p.add(
            Contract::new(
                ContractId(1),
                "beta",
                Treaty::AggregateXl {
                    retention: 5_000.0,
                    limit: 50_000.0,
                },
                vec![1, 2],
            )
            .with_share(0.5)
            .with_premium(3_000.0),
        );
        p
    }

    #[test]
    fn portfolio_basics() {
        let p = test_portfolio();
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.total_premium(), 8_000.0);
        p.validate(3).unwrap();
        assert!(p.validate(1).is_err());
        assert!(Portfolio::new("empty").validate(3).is_err());
    }

    #[test]
    fn analysis_produces_scaled_ylts() {
        let analysis = PortfolioAnalysis::build(
            test_portfolio(),
            &test_elts(),
            test_yet(),
            LookupKind::Direct,
        )
        .unwrap();
        assert_eq!(analysis.input().layers().len(), 2);
        assert_eq!(analysis.portfolio().len(), 2);
        let result = analysis.run_sequential();
        assert_eq!(result.ylts().len(), 2);
        assert_eq!(result.contract_ylt(0).num_trials(), 200);
        // Contract 1 has a 50% share: its YLT must be half of an unscaled run.
        let full = PortfolioAnalysis::build(
            {
                let mut p = test_portfolio();
                p.contracts[1].written_share = 1.0;
                p
            },
            &test_elts(),
            test_yet(),
            LookupKind::Direct,
        )
        .unwrap()
        .run_sequential();
        for (half, whole) in result
            .contract_ylt(1)
            .outcomes()
            .iter()
            .zip(full.contract_ylt(1).outcomes())
        {
            assert!((half.year_loss - 0.5 * whole.year_loss).abs() < 1e-9);
        }
        // Portfolio roll-up equals the sum of contract means.
        let total: f64 = result.portfolio_losses().iter().sum::<f64>() / 200.0;
        assert!((total - result.expected_loss()).abs() < 1e-9);
        assert!(
            (result.expected_underwriting_result() - (8_000.0 - result.expected_loss())).abs()
                < 1e-9
        );
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let analysis = PortfolioAnalysis::build(
            test_portfolio(),
            &test_elts(),
            test_yet(),
            LookupKind::Direct,
        )
        .unwrap();
        let a = analysis.run_sequential();
        let b = analysis.run();
        for (x, y) in a.ylts().iter().zip(b.ylts()) {
            for (o1, o2) in x.outcomes().iter().zip(y.outcomes()) {
                assert_eq!(o1.year_loss, o2.year_loss);
            }
        }
    }

    #[test]
    fn reports_are_consistent() {
        let analysis = PortfolioAnalysis::build(
            test_portfolio(),
            &test_elts(),
            test_yet(),
            LookupKind::Direct,
        )
        .unwrap();
        let result = analysis.run_sequential();
        let c0 = result.contract_report(0);
        assert_eq!(c0.name, "alpha");
        assert!((c0.expected_loss - result.contract_ylt(0).mean_loss()).abs() < 1e-9);
        let pr = result.portfolio_report();
        assert_eq!(pr.name, "UW-2012");
        assert!((pr.expected_loss - result.expected_loss()).abs() < 1e-9);
    }

    #[test]
    fn build_rejects_bad_portfolios() {
        let mut bad = test_portfolio();
        bad.contracts[0].elt_indices = vec![99];
        assert!(
            PortfolioAnalysis::build(bad, &test_elts(), test_yet(), LookupKind::Direct).is_err()
        );
    }

    #[test]
    fn serde_round_trip() {
        let p = test_portfolio();
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Portfolio>(&json).unwrap(), p);
    }
}
