//! Technical pricing of reinsurance contracts from their Year Loss Tables.

use serde::{Deserialize, Serialize};

use catrisk_engine::ylt::YearLossTable;
use catrisk_metrics::var::{tvar, var};

/// Loadings applied on top of the expected loss to reach a technical
/// premium.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingConfig {
    /// Loading proportional to the standard deviation of the annual loss.
    pub volatility_load: f64,
    /// Loading proportional to the tail capital consumed
    /// (`TVaR(level) − expected loss`).
    pub capital_load: f64,
    /// Confidence level defining tail capital.
    pub capital_level: f64,
    /// Expenses and brokerage as a fraction of the technical premium.
    pub expense_ratio: f64,
}

impl Default for PricingConfig {
    fn default() -> Self {
        Self {
            volatility_load: 0.15,
            capital_load: 0.06,
            capital_level: 0.99,
            expense_ratio: 0.10,
        }
    }
}

impl PricingConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        let fields = [
            ("volatility_load", self.volatility_load),
            ("capital_load", self.capital_load),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v >= 0.0) {
                return Err(crate::PortfolioError::Invalid(format!(
                    "{name} must be non-negative, got {v}"
                )));
            }
        }
        if !(self.capital_level > 0.0 && self.capital_level < 1.0) {
            return Err(crate::PortfolioError::Invalid(format!(
                "capital_level must be in (0, 1), got {}",
                self.capital_level
            )));
        }
        if !(self.expense_ratio >= 0.0 && self.expense_ratio < 1.0) {
            return Err(crate::PortfolioError::Invalid(format!(
                "expense_ratio must be in [0, 1), got {}",
                self.expense_ratio
            )));
        }
        Ok(())
    }
}

/// A priced quote for one contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Quote {
    /// Expected annual loss to the layer (the pure premium).
    pub expected_loss: f64,
    /// Standard deviation of the annual loss.
    pub std_dev: f64,
    /// VaR at the capital level.
    pub var: f64,
    /// TVaR at the capital level.
    pub tvar: f64,
    /// Volatility loading.
    pub volatility_loading: f64,
    /// Capital (tail) loading.
    pub capital_loading: f64,
    /// Technical premium before expenses.
    pub risk_premium: f64,
    /// Premium including expenses.
    pub gross_premium: f64,
    /// Rate on line: gross premium divided by the layer's annual limit
    /// (`NaN` when the limit is unlimited).
    pub rate_on_line: f64,
    /// Probability the layer attaches (non-zero annual loss).
    pub attachment_probability: f64,
}

/// Prices a contract from its (share-scaled) Year Loss Table.
pub fn price_ylt(ylt: &YearLossTable, annual_limit: f64, config: &PricingConfig) -> Quote {
    price_losses(&ylt.losses(), annual_limit, config)
}

/// Prices a contract from raw per-trial losses.
pub fn price_losses(losses: &[f64], annual_limit: f64, config: &PricingConfig) -> Quote {
    assert!(!losses.is_empty(), "cannot price with zero trials");
    let n = losses.len() as f64;
    let expected_loss = losses.iter().sum::<f64>() / n;
    let variance = losses
        .iter()
        .map(|l| (l - expected_loss).powi(2))
        .sum::<f64>()
        / n;
    let std_dev = variance.sqrt();
    let v = var(losses, config.capital_level);
    let t = tvar(losses, config.capital_level);
    let volatility_loading = config.volatility_load * std_dev;
    let capital_loading = config.capital_load * (t - expected_loss).max(0.0);
    let risk_premium = expected_loss + volatility_loading + capital_loading;
    let gross_premium = risk_premium / (1.0 - config.expense_ratio);
    let attachment_probability = losses.iter().filter(|&&l| l > 0.0).count() as f64 / n;
    Quote {
        expected_loss,
        std_dev,
        var: v,
        tvar: t,
        volatility_loading,
        capital_loading,
        risk_premium,
        gross_premium,
        rate_on_line: if annual_limit.is_finite() && annual_limit > 0.0 {
            gross_premium / annual_limit
        } else {
            f64::NAN
        },
        attachment_probability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_engine::ylt::TrialOutcome;
    use catrisk_finterms::layer::LayerId;

    fn losses() -> Vec<f64> {
        // 80% of years: no loss; 20%: between 1M and 10M.
        (0..1000)
            .map(|i| {
                if i % 5 == 0 {
                    1.0e6 + 9.0e6 * f64::from(i) / 1000.0
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn quote_components_are_consistent() {
        let config = PricingConfig::default();
        config.validate().unwrap();
        let q = price_losses(&losses(), 10.0e6, &config);
        assert!(q.expected_loss > 0.0);
        assert!(q.tvar >= q.var);
        assert!(q.risk_premium >= q.expected_loss);
        assert!(q.gross_premium > q.risk_premium);
        assert!(
            (q.risk_premium - (q.expected_loss + q.volatility_loading + q.capital_loading)).abs()
                < 1e-9
        );
        assert!((q.gross_premium * (1.0 - config.expense_ratio) - q.risk_premium).abs() < 1e-9);
        assert!((q.attachment_probability - 0.2).abs() < 1e-9);
        assert!((q.rate_on_line - q.gross_premium / 10.0e6).abs() < 1e-12);
    }

    #[test]
    fn unlimited_layer_has_no_rate_on_line() {
        let q = price_losses(&losses(), f64::INFINITY, &PricingConfig::default());
        assert!(q.rate_on_line.is_nan());
    }

    #[test]
    fn zero_loadings_price_at_expected_loss() {
        let config = PricingConfig {
            volatility_load: 0.0,
            capital_load: 0.0,
            expense_ratio: 0.0,
            ..Default::default()
        };
        let q = price_losses(&losses(), 10.0e6, &config);
        assert!((q.gross_premium - q.expected_loss).abs() < 1e-9);
    }

    #[test]
    fn riskier_layers_cost_more() {
        let config = PricingConfig::default();
        let calm: Vec<f64> = vec![1.0e6; 1000];
        let volatile: Vec<f64> = (0..1000)
            .map(|i| if i % 100 == 0 { 100.0e6 } else { 0.0 })
            .collect();
        // Same expected loss, very different volatility.
        let q_calm = price_losses(&calm, 100.0e6, &config);
        let q_vol = price_losses(&volatile, 100.0e6, &config);
        assert!((q_calm.expected_loss - q_vol.expected_loss).abs() < 1e-6);
        assert!(q_vol.gross_premium > 2.0 * q_calm.gross_premium);
    }

    #[test]
    fn price_from_ylt_matches_losses() {
        let outcomes: Vec<TrialOutcome> = losses()
            .into_iter()
            .map(|l| TrialOutcome {
                year_loss: l,
                max_occurrence_loss: l,
                nonzero_events: 1,
            })
            .collect();
        let ylt = YearLossTable::new(LayerId(3), outcomes);
        let a = price_ylt(&ylt, 10.0e6, &PricingConfig::default());
        let b = price_losses(&ylt.losses(), 10.0e6, &PricingConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        assert!(PricingConfig {
            volatility_load: -0.1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PricingConfig {
            capital_level: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PricingConfig {
            expense_ratio: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(PricingConfig::default().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn empty_losses_panic() {
        price_losses(&[], 1.0, &PricingConfig::default());
    }
}
