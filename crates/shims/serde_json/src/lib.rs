//! Minimal stand-in for `serde_json` over the vendored serde shim.
//!
//! Implements the workspace's call surface: [`to_string`],
//! [`to_string_pretty`], [`to_vec`], [`from_str`] and [`from_slice`], with a
//! hand-rolled JSON writer and recursive-descent parser over the shim's
//! [`serde::value::Value`] tree.
//!
//! Divergences from real serde_json, deliberate for this workspace:
//! non-finite floats serialize as `null` instead of erroring (the crates
//! here encode unlimited terms via `#[serde(with = "maybe_unlimited")]`
//! which maps them to `null` explicitly anyway).

use serde::value::{Value, ValueDeserializer, ValueSerializer};
use serde::{Deserialize, Serialize};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

fn value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(e) => match e {},
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        // Rust's Debug formatting prints the shortest representation that
        // round-trips, and always includes a decimal point or exponent.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_value(value: &Value, out: &mut String, pretty: bool, depth: usize) {
    const INDENT: &str = "  ";
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => write_f64(*v, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                }
                write_value(item, out, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&INDENT.repeat(depth + 1));
                }
                write_escaped(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(item, out, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&INDENT.repeat(depth));
            }
            out.push('}');
        }
    }
}

/// Serializes a value as compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value_of(value), &mut out, false, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value_of(value), &mut out, true, 0);
    Ok(out)
}

/// Serializes a value as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Maximum nesting depth accepted by the parser (matches real serde_json's
/// default recursion limit): deeper input returns a parse error instead of
/// overflowing the stack.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        }
    }

    fn error(&self, msg: impl std::fmt::Display) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, word: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.error("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.error("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(self.error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so this is valid;
                    // find the full scalar starting one byte back.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() {
                    if let Ok(v) = text.parse::<i64>() {
                        return Ok(Value::I64(v));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }

    fn enter(&mut self) -> Result<()> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(self.error(format!("recursion limit of {MAX_DEPTH} exceeded")));
        }
        Ok(())
    }

    fn parse_seq(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }
}

/// Parses a JSON value tree from text.
pub fn value_from_str(text: &str) -> Result<Value> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after JSON value"));
    }
    Ok(value)
}

/// Deserializes a value from JSON text.
pub fn from_str<'a, T: Deserialize<'a>>(text: &'a str) -> Result<T> {
    let value = value_from_str(text)?;
    T::deserialize(ValueDeserializer::new(value)).map_err(|e| Error::new(e.to_string()))
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<'a, T: Deserialize<'a>>(bytes: &'a [u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\nd").unwrap(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(from_str::<String>("\"a\\u00e9\"").unwrap(), "a\u{e9}");
    }

    #[test]
    fn round_trips_collections() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2.5],[3,4.5]]");
        let back: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let none: Option<f64> = from_str("null").unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<f64>("[").is_err());
        assert!(from_str::<Vec<f64>>("{\"a\":1}").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(100_000);
        assert!(from_str::<f64>(&deep).is_err());
        let nested_maps = "{\"a\":".repeat(200) + "1" + &"}".repeat(200);
        assert!(from_str::<f64>(&nested_maps).is_err());
    }

    #[test]
    fn sibling_containers_do_not_accumulate_depth() {
        let siblings = format!("[{}[]]", "[],".repeat(300));
        let parsed: Vec<Vec<f64>> = from_str(&siblings).unwrap();
        assert_eq!(parsed.len(), 301);
    }

    #[test]
    fn pretty_printing_is_parseable() {
        let v = vec![vec![1.0f64, 2.0], vec![]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<f64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }
}
