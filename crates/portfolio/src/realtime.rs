//! Real-time pricing: the paper's motivating interactive scenario.
//!
//! "This is sufficiently fast to support a real-time pricing scenario in
//! which an underwriter can evaluate different contractual terms and pricing
//! while discussing a deal with a client over the phone.  In many
//! applications 50K trials may be sufficient in which case sub one second
//! response time can be achieved" (paper §IV).  The quoter below keeps the
//! prepared ELT lookup structures and a (possibly subsampled) Year Event
//! Table resident, and re-runs the aggregate analysis for each alternative
//! set of layer terms the underwriter wants to try.

use std::time::Duration;

use catrisk_engine::input::AnalysisInput;
use catrisk_engine::parallel::ParallelEngine;
use catrisk_finterms::layer::{Layer, LayerId};
use catrisk_finterms::treaty::Treaty;
use catrisk_simkit::timing::Stopwatch;

use crate::pricing::{price_losses, PricingConfig, Quote};
use crate::{PortfolioError, Result};

/// A quote plus the wall-clock time it took to produce.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedQuote {
    /// The technical quote.
    pub quote: Quote,
    /// Number of trials used.
    pub trials: usize,
    /// Wall-clock time of the engine run plus pricing.
    pub elapsed: Duration,
}

/// Interactive quoting engine over a fixed exposure / trial set.
pub struct RealTimeQuoter {
    input: AnalysisInput,
    pricing: PricingConfig,
    engine: ParallelEngine,
}

impl RealTimeQuoter {
    /// Creates a quoter over a prepared analysis input (its layers are
    /// ignored; each quote supplies its own).
    ///
    /// `max_trials` caps the number of trials used per quote (the paper's
    /// 50 K-trial quick-quote mode); pass `None` to use every trial.
    pub fn new(
        input: &AnalysisInput,
        max_trials: Option<usize>,
        pricing: PricingConfig,
    ) -> Result<Self> {
        pricing.validate()?;
        let input = match max_trials {
            Some(n) if n < input.num_trials() => {
                let sliced = input.yet().slice_trials(0..n);
                input.with_yet_slice(sliced)
            }
            _ => input.clone(),
        };
        Ok(Self {
            input,
            pricing,
            engine: ParallelEngine::new(),
        })
    }

    /// Number of trials each quote will use.
    pub fn trials(&self) -> usize {
        self.input.num_trials()
    }

    /// Quotes a treaty over the given covered ELT indices.
    pub fn quote(&self, treaty: Treaty, elt_indices: &[usize]) -> Result<TimedQuote> {
        treaty
            .validate()
            .map_err(|e| PortfolioError::Invalid(e.to_string()))?;
        let terms = treaty.layer_terms();
        let layer = Layer {
            id: LayerId(0),
            elt_indices: elt_indices.to_vec(),
            terms,
            participation: treaty.cession_share(),
            description: treaty.describe(),
        };
        let sw = Stopwatch::start();
        let input = self
            .input
            .with_layers(vec![layer])
            .map_err(|e| PortfolioError::Invalid(e.to_string()))?;
        let output = self.engine.run(&input);
        let share = treaty.cession_share();
        let losses: Vec<f64> = output
            .layer(0)
            .outcomes()
            .iter()
            .map(|o| o.year_loss * share)
            .collect();
        let annual_limit = if terms.agg_limit.is_finite() {
            terms.agg_limit
        } else {
            terms.occ_limit
        };
        let quote = price_losses(&losses, annual_limit * share, &self.pricing);
        Ok(TimedQuote {
            quote,
            trials: losses.len(),
            elapsed: sw.elapsed(),
        })
    }

    /// Quotes several alternative retention/limit structures in one call —
    /// the "discussing a deal over the phone" loop.
    pub fn quote_alternatives(
        &self,
        alternatives: &[Treaty],
        elt_indices: &[usize],
    ) -> Result<Vec<TimedQuote>> {
        alternatives
            .iter()
            .map(|t| self.quote(*t, elt_indices))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_engine::input::AnalysisInputBuilder;
    use catrisk_finterms::terms::{FinancialTerms, LayerTerms};

    fn base_input(trials: usize) -> AnalysisInput {
        let mut b = AnalysisInputBuilder::new();
        let yet_trials: Vec<Vec<(u32, f32)>> = (0..trials)
            .map(|t| {
                (0..((t % 7) as u32))
                    .map(|i| {
                        (
                            ((t as u32).wrapping_mul(23).wrapping_add(i * 13)) % 400,
                            i as f32,
                        )
                    })
                    .collect()
            })
            .collect();
        b.set_yet_from_trials(400, yet_trials);
        let pairs_a: Vec<(u32, f64)> = (0..400)
            .step_by(2)
            .map(|e| (e, 5_000.0 + 100.0 * f64::from(e)))
            .collect();
        let pairs_b: Vec<(u32, f64)> = (0..400)
            .step_by(3)
            .map(|e| (e, 2_000.0 + 50.0 * f64::from(e)))
            .collect();
        b.add_elt(&pairs_a, FinancialTerms::pass_through());
        b.add_elt(&pairs_b, FinancialTerms::pass_through());
        // Placeholder layer (the quoter replaces layers per quote).
        b.add_layer_over(&[0], LayerTerms::unlimited());
        b.build().unwrap()
    }

    #[test]
    fn quoting_respects_trial_cap() {
        let input = base_input(500);
        let quoter = RealTimeQuoter::new(&input, Some(100), PricingConfig::default()).unwrap();
        assert_eq!(quoter.trials(), 100);
        let full = RealTimeQuoter::new(&input, None, PricingConfig::default()).unwrap();
        assert_eq!(full.trials(), 500);
        let capped_above =
            RealTimeQuoter::new(&input, Some(10_000), PricingConfig::default()).unwrap();
        assert_eq!(capped_above.trials(), 500);
    }

    #[test]
    fn quote_produces_sensible_numbers_quickly() {
        let input = base_input(400);
        let quoter = RealTimeQuoter::new(&input, None, PricingConfig::default()).unwrap();
        let quoted = quoter
            .quote(Treaty::cat_xl(10_000.0, 100_000.0), &[0, 1])
            .unwrap();
        assert_eq!(quoted.trials, 400);
        assert!(quoted.quote.expected_loss >= 0.0);
        assert!(quoted.quote.gross_premium >= quoted.quote.expected_loss);
        assert!(quoted.elapsed < Duration::from_secs(5));
    }

    #[test]
    fn higher_retention_costs_less() {
        let input = base_input(400);
        let quoter = RealTimeQuoter::new(&input, None, PricingConfig::default()).unwrap();
        let alternatives = [
            Treaty::cat_xl(5_000.0, 100_000.0),
            Treaty::cat_xl(20_000.0, 100_000.0),
            Treaty::cat_xl(50_000.0, 100_000.0),
        ];
        let quotes = quoter.quote_alternatives(&alternatives, &[0, 1]).unwrap();
        assert_eq!(quotes.len(), 3);
        assert!(quotes[0].quote.expected_loss >= quotes[1].quote.expected_loss);
        assert!(quotes[1].quote.expected_loss >= quotes[2].quote.expected_loss);
    }

    #[test]
    fn quota_share_scales_losses() {
        let input = base_input(300);
        let quoter = RealTimeQuoter::new(&input, None, PricingConfig::default()).unwrap();
        let full = quoter
            .quote(
                Treaty::QuotaShare {
                    cession: 1.0,
                    event_limit: f64::INFINITY,
                },
                &[0],
            )
            .unwrap();
        let half = quoter
            .quote(
                Treaty::QuotaShare {
                    cession: 0.5,
                    event_limit: f64::INFINITY,
                },
                &[0],
            )
            .unwrap();
        assert!((half.quote.expected_loss - 0.5 * full.quote.expected_loss).abs() < 1e-9);
    }

    #[test]
    fn invalid_inputs_rejected() {
        let input = base_input(100);
        let quoter = RealTimeQuoter::new(&input, None, PricingConfig::default()).unwrap();
        assert!(quoter.quote(Treaty::cat_xl(-1.0, 10.0), &[0]).is_err());
        assert!(
            quoter.quote(Treaty::cat_xl(1.0, 10.0), &[7]).is_err(),
            "bad ELT index"
        );
        let bad_pricing = PricingConfig {
            capital_level: 2.0,
            ..Default::default()
        };
        assert!(RealTimeQuoter::new(&input, None, bad_pricing).is_err());
    }
}
