//! The fused-partial equivalence battery: every path that produces a
//! [`TrialPartial`] must agree bit-for-bit with every other, and with
//! the unsharded scan, under any schedule.
//!
//! Three equalities are pinned, each exact (no tolerance):
//!
//! 1. **Fused ≡ per-query.**  `scan_trial_partials_fused` over a batch
//!    of plans emits, per plan, the same partial `scan_trial_partial`
//!    produces alone — the fusion shares the block walk, never the
//!    arithmetic.
//! 2. **Stitched ≡ unsharded.**  Combining the per-window partials
//!    through `combine_trial_partial_refs` reproduces `execute` on the
//!    unsplit store, across random trial splits.
//! 3. **Schedule-independence.**  Both equalities hold at every thread
//!    count (1/2/8) and every available SIMD lane width (the same sweep
//!    `CATRISK_SIMD` exposes), because trial-block partials merge by
//!    exact concatenation and the kernels are bit-identical across
//!    levels.
//!
//! A second set of deterministic tests pins the segment-axis combine's
//! ±0.0 edge cases: the monoid-identity argument (ARCHITECTURE.md §3)
//! only holds because the kernel normalises `-0.0` on init, so stores
//! built *entirely* of `-0.0` loss columns, empty shards, and empty
//! trial clips must all still combine to the fused union's exact bits.

use proptest::prelude::*;

use catrisk_engine::ylt::{TrialOutcome, YearLossTable};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;
use catrisk_riskquery::kernel;
use catrisk_riskquery::prelude::*;
use catrisk_riskquery::{
    combine_segment_partials, combine_trial_partial_refs, plan_is_shard_aligned,
    restrict_plan_to_segments, scan_trial_partial, scan_trial_partials_fused, QueryPlan,
    TrialPartial,
};
use catrisk_simkit::rng::RngFactory;

/// Restores the SIMD override and the scan-granularity knob on scope
/// exit, so a failing case cannot poison later tests in the process.
struct RestoreKnobs;

impl Drop for RestoreKnobs {
    fn drop(&mut self) {
        kernel::force_level(None);
        kernel::set_scan_chunks_per_thread(None);
    }
}

fn random_store(trials: usize, segments: usize, seed: u64) -> ResultStore {
    let factory = RngFactory::new(seed).derive("partial-equivalence");
    let mut store = ResultStore::new(trials);
    for s in 0..segments {
        let mut rng = factory.stream(s as u64);
        let outcomes: Vec<TrialOutcome> = (0..trials)
            .map(|_| {
                let year = if rng.uniform() < 0.4 {
                    rng.uniform() * 1.0e6
                } else {
                    0.0
                };
                TrialOutcome {
                    year_loss: year,
                    max_occurrence_loss: year * rng.uniform(),
                    nonzero_events: u32::from(year > 0.0),
                }
            })
            .collect();
        let meta = SegmentMeta::new(
            LayerId((s / 2) as u32),
            Peril::ALL[s % Peril::ALL.len()],
            Region::ALL[(s / 3) % Region::ALL.len()],
            LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
        );
        store
            .ingest(&YearLossTable::new(LayerId((s / 2) as u32), outcomes), meta)
            .expect("ingest");
    }
    store
}

/// The query pool random batches are drawn from: scalar metrics, order
/// statistics, curves, dimension filters, trial windows, loss ranges,
/// and two entries that *share* a scan spec (same filter + grouping,
/// different aggregates) so the fused path's spec dedup is exercised.
fn query_pool(trials: usize) -> Vec<Query> {
    vec![
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::Tvar { level: 0.97 })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::StdDev)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .with_perils([Peril::Hurricane, Peril::Flood])
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Var { level: 0.95 })
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: 5,
            })
            .build()
            .unwrap(),
        QueryBuilder::new()
            .trials(1..trials.max(2) - 1)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::MaxLoss)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Layer)
            .loss_at_least(2.0e5)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap(),
        QueryBuilder::new()
            .group_by(Dimension::Lob)
            .aggregate(Aggregate::Pml {
                return_period: 50.0,
                basis: Basis::Oep,
            })
            .build()
            .unwrap(),
    ]
}

/// Runs the whole fused-vs-per-query-vs-execute comparison for one
/// (store, queries, cuts) instance under whatever pool/SIMD level is
/// currently installed.  Panics (via assert) on any bit divergence.
fn check_fused_equivalence(store: &ResultStore, queries: &[Query], bounds: &[usize]) {
    let plans: Vec<QueryPlan> = queries
        .iter()
        .map(|query| QueryPlan::new(store, query).expect("plan"))
        .collect();

    // Per query, the per-window partials accumulated in window order.
    let mut parts: Vec<Vec<TrialPartial>> = (0..queries.len()).map(|_| Vec::new()).collect();
    for window in bounds.windows(2) {
        // Group the plans by clipped window, exactly as the serving
        // planner does: each group rides one fused scan.
        let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
        for (index, plan) in plans.iter().enumerate() {
            let clip = (
                window[0].clamp(plan.trial_start, plan.trial_end),
                window[1].clamp(plan.trial_start, plan.trial_end),
            );
            match groups.iter_mut().find(|(existing, _)| *existing == clip) {
                Some((_, members)) => members.push(index),
                None => groups.push((clip, vec![index])),
            }
        }
        for ((start, end), members) in groups {
            let group_plans: Vec<&QueryPlan> = members.iter().map(|&m| &plans[m]).collect();
            let fused = scan_trial_partials_fused(store, &group_plans, start, end);
            assert_eq!(fused.len(), members.len());
            for (&member, fused_part) in members.iter().zip(fused) {
                // Equality 1: the fused scan's partial for this plan is
                // bit-identical to the lone per-query scan's.
                let solo = scan_trial_partial(store, &plans[member], start, end);
                assert_eq!(
                    fused_part, solo,
                    "fused partial diverged from the per-query scan \
                     (query {member}, window [{start}, {end}))"
                );
                parts[member].push(fused_part);
            }
        }
    }

    // Equality 2: the stitched partials reproduce the unsharded scan.
    for (index, (query, parts)) in queries.iter().zip(&parts).enumerate() {
        let refs: Vec<&TrialPartial> = parts.iter().collect();
        let stitched = combine_trial_partial_refs(query, &refs).expect("stitch");
        let flat = execute(store, query).expect("execute");
        assert_eq!(
            stitched, flat,
            "stitched fused partials diverged from execute (query {index})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The battery: random query batches × random trial splits × thread
    /// counts (1/2/8) × every available SIMD level, all bit-identical.
    #[test]
    fn fused_partials_match_per_query_and_execute(
        trials in 8..96usize,
        segments in 1..12usize,
        shards in 1..5usize,
        seed in 0..400u64,
        query_mask in 1..64u32,
    ) {
        let _restore = RestoreKnobs;
        let store = random_store(trials, segments, seed);
        let pool_queries = query_pool(trials);
        let queries: Vec<Query> = pool_queries
            .iter()
            .enumerate()
            .filter(|(index, _)| query_mask & (1 << index) != 0)
            .map(|(_, query)| query.clone())
            .collect();
        // query_mask ∈ [1, 64) always selects at least one of the six.
        prop_assert!(!queries.is_empty());

        // Deterministic, seed-dependent trial cuts.
        let shards = shards.min(trials);
        let mut bounds: Vec<usize> = (0..shards - 1)
            .map(|k| 1 + (seed as usize * 29 + k * 13 + k * k * 5) % (trials - 1))
            .collect();
        bounds.push(0);
        bounds.push(trials);
        bounds.sort_unstable();
        bounds.dedup();

        for level in kernel::available_levels() {
            kernel::force_level(Some(level));
            for threads in [1usize, 2, 8] {
                let pool = catrisk_simkit::parallel::build_pool(threads);
                pool.install(|| check_fused_equivalence(&store, &queries, &bounds));
            }
        }
    }
}

/// A store whose every loss value is `-0.0`: the adversarial input for
/// the ±0.0 monoid-identity argument.  The kernel normalises on init
/// (`0.0 + v` / clamp-to-`+0.0`), so partials built from it contain no
/// `-0.0` and combine against the identity vector without changing bits.
fn minus_zero_store(trials: usize, segments: usize) -> ResultStore {
    let mut store = ResultStore::new(trials);
    for s in 0..segments {
        let outcomes: Vec<TrialOutcome> = (0..trials)
            .map(|_| TrialOutcome {
                year_loss: -0.0,
                max_occurrence_loss: -0.0,
                nonzero_events: 0,
            })
            .collect();
        let meta = SegmentMeta::new(
            LayerId((s / 2) as u32),
            Peril::ALL[s % Peril::ALL.len()],
            Region::ALL[s % Region::ALL.len()],
            LineOfBusiness::ALL[s % LineOfBusiness::ALL.len()],
        );
        store
            .ingest(&YearLossTable::new(LayerId((s / 2) as u32), outcomes), meta)
            .expect("ingest");
    }
    store
}

/// Splits `[0, num_segments)` at `cut` and runs the full segment-axis
/// combine (restrict → one fused scan of both restricted plans →
/// `combine_segment_partials`), asserting bit-equality with the flat
/// `execute` — the exact shape the serving planner runs per query.
fn check_segment_combine(store: &ResultStore, query: &Query, cut: usize) {
    let total = store.num_segments();
    let ranges = [(0usize, cut), (cut, total)];
    let plan = QueryPlan::new(store, query).expect("plan");
    assert!(
        plan_is_shard_aligned(&plan, &ranges),
        "test setup must produce a shard-aligned plan"
    );
    let restricted: Vec<QueryPlan> = ranges
        .iter()
        .map(|&(lo, hi)| restrict_plan_to_segments(&plan, lo, hi))
        .collect();
    let plan_refs: Vec<&QueryPlan> = restricted.iter().collect();
    let partials = scan_trial_partials_fused(store, &plan_refs, plan.trial_start, plan.trial_end);
    let part_refs: Vec<&TrialPartial> = partials.iter().collect();
    let combined = combine_segment_partials(query, &plan, &part_refs).expect("combine");
    assert_eq!(
        combined,
        execute(store, query).expect("execute"),
        "segment-axis combine diverged from the flat scan"
    );
}

/// All-`-0.0` loss columns survive the segment-axis combine bit-for-bit:
/// the normalised partials sum against identity vectors without
/// resurrecting `-0.0`.
#[test]
fn segment_combine_of_minus_zero_columns_is_bit_identical() {
    let store = minus_zero_store(16, 6);
    let query = QueryBuilder::new()
        .group_by(Dimension::Layer)
        .aggregate(Aggregate::Mean)
        .aggregate(Aggregate::MaxLoss)
        .build()
        .unwrap();
    // Layer groups are segment pairs (s / 2), so any even cut is aligned.
    check_segment_combine(&store, &query, 2);
    check_segment_combine(&store, &query, 4);
}

/// An empty shard range contributes only identity vectors: the combine
/// over `[(0, n), (n, n)]` must equal the flat scan exactly, and the
/// empty shard's restricted plan must carry no groups at all.
#[test]
fn segment_combine_with_empty_shard_is_bit_identical() {
    let store = random_store(24, 6, 9);
    let total = store.num_segments();
    let query = QueryBuilder::new()
        .group_by(Dimension::Layer)
        .loss_at_least(1.0e5)
        .aggregate(Aggregate::Mean)
        .aggregate(Aggregate::Tvar { level: 0.95 })
        .build()
        .unwrap();
    let plan = QueryPlan::new(&store, &query).expect("plan");
    let empty = restrict_plan_to_segments(&plan, total, total);
    assert!(
        empty.segments.is_empty() && empty.keys.is_empty(),
        "an empty range must restrict to an empty plan"
    );
    check_segment_combine(&store, &query, total);
    check_segment_combine(&store, &query, 0);
}

/// A trial window clipped to emptiness on one shard stitches exactly:
/// the empty-clip partial is the zero-trial monoid identity, and the
/// stitched result matches the flat scan of the filtered window — also
/// under all-`-0.0` columns, where the identity claim is sharpest.
#[test]
fn empty_trial_clip_stitches_bit_identically() {
    for store in [random_store(32, 5, 11), minus_zero_store(32, 5)] {
        let query = QueryBuilder::new()
            .trials(0..16)
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Oep,
                points: 4,
            })
            .build()
            .unwrap();
        let plan = QueryPlan::new(&store, &query).expect("plan");
        // Shard windows [0, 16) and [16, 32): the second clips to the
        // empty window [16, 16).
        let clips = [(0usize, 16usize), (16, 16)];
        let parts: Vec<TrialPartial> = clips
            .iter()
            .map(|&(start, end)| scan_trial_partial(&store, &plan, start, end))
            .collect();
        assert_eq!(parts[1].window, (16, 16), "the clip must be empty");
        let refs: Vec<&TrialPartial> = parts.iter().collect();
        let stitched = combine_trial_partial_refs(&query, &refs).expect("stitch");
        assert_eq!(
            stitched,
            execute(&store, &query).expect("execute"),
            "empty-clip stitch diverged from the flat scan"
        );
    }
}
