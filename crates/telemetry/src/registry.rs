//! Named-metric registry: counters, gauges and histograms behind cheap
//! `Arc` handles.
//!
//! Registration (name lookup) takes a mutex; recording through a handle is
//! lock-free.  Hot paths should resolve their handles once and keep the
//! `Arc`s.  The registry is deliberately an owned value, not a process
//! global — each server owns its own, so in-process tests running in
//! parallel cannot contaminate each other's counts.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, capacities).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger than the current one.
    pub fn bump_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Inner {
    counters: Vec<(String, Arc<Counter>)>,
    gauges: Vec<(String, Arc<Gauge>)>,
    histograms: Vec<(String, Arc<Histogram>)>,
}

fn get_or_insert<T: Default>(list: &mut Vec<(String, Arc<T>)>, name: &str) -> Arc<T> {
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    list.push((name.to_string(), Arc::clone(&v)));
    v
}

/// A set of named metrics.
///
/// Handle resolution is get-or-create: asking twice for the same name
/// returns handles to the same underlying metric.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolves (creating if needed) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&mut self.inner.lock().unwrap().counters, name)
    }

    /// Resolves (creating if needed) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&mut self.inner.lock().unwrap().gauges, name)
    }

    /// Resolves (creating if needed) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&mut self.inner.lock().unwrap().histograms, name)
    }

    /// Copies every metric into a plain snapshot, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut snap = MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.snapshot()))
                .collect(),
        };
        snap.counters.sort_by(|a, b| a.0.cmp(&b.0));
        snap.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        snap.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        snap
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

/// A point-in-time copy of a whole [`Registry`], ordered by metric name.
/// This is the payload of the `metrics` protocol reply; the canonical text
/// form is [`MetricsSnapshot::to_prometheus`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` for every histogram.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as Prometheus text exposition format.
    ///
    /// Histograms render cumulative `_bucket{le="..."}` lines at each
    /// non-empty bucket's upper bound plus the mandatory `+Inf`, then
    /// `_sum` and `_count`.
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (le, cumulative) in h.cumulative() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
            let _ = writeln!(out, "{name}_sum {}", h.sum);
            let _ = writeln!(out, "{name}_count {}", h.count);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_alias_the_same_metric() {
        let reg = Registry::new();
        reg.counter("requests").inc();
        reg.counter("requests").add(2);
        assert_eq!(reg.counter("requests").get(), 3);
        reg.gauge("depth").set(5);
        reg.gauge("depth").bump_max(3);
        assert_eq!(reg.gauge("depth").get(), 5);
        reg.histogram("lat").record(10);
        assert_eq!(reg.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.counter("zeta").inc();
        reg.counter("alpha").add(7);
        reg.histogram("lat").record(100);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("alpha".to_string(), 7), ("zeta".to_string(), 1)]
        );
        assert_eq!(snap.counter("alpha"), Some(7));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.histogram("lat").unwrap().count, 1);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let reg = Registry::new();
        reg.counter("reqs").add(4);
        reg.gauge("depth").set(-2);
        let h = reg.histogram("lat");
        h.record(1);
        h.record(1);
        h.record(100);
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE reqs counter\nreqs 4\n"), "{text}");
        assert!(text.contains("# TYPE depth gauge\ndepth -2\n"), "{text}");
        assert!(text.contains("# TYPE lat histogram\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"1\"} 2\n"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3\n"), "{text}");
        assert!(text.contains("lat_sum 102\n"), "{text}");
        assert!(text.contains("lat_count 3\n"), "{text}");
    }
}
