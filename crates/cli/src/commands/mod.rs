//! Subcommand dispatch and shared option parsing.

mod demo;
mod engines;
mod info;
mod query;
mod quote;
mod serve;
mod stats;
mod store;
mod world;

/// Top-level usage text.
pub const USAGE: &str = "usage: catrisk <command> [options]

commands:
  demo     run the full synthetic pipeline and print risk reports
             --trials N     number of YET trials (default 20000)
             --locations N  locations per exposure set (default 2000)
             --events N     catalog size (default 50000)
             --seed S       master random seed (default 2012)
             --json         print the portfolio report as JSON
  engines  compare every engine variant on one workload (mini Fig. 6a)
             --trials N     number of YET trials (default 20000)
             --seed S       master random seed (default 2012)
  quote    real-time pricing of a Cat XL layer (paper section IV)
             --retention X  occurrence retention (default 5e6)
             --limit X      occurrence limit (default 20e6)
             --trials N     trials per quote (default 50000)
             --seed S       master random seed (default 2012)
  query    ad-hoc aggregate risk queries over a columnar YLT store
             --select LIST  aggregates, e.g. \"mean,tvar(0.99),aep(10)\"
             --where EXPR   filter, e.g. \"peril=HU|FL loss>=1e6 trial=0..10000\"
             --group-by D   group dimensions: layer, peril, region, lob
             run `catrisk query --help` for the full reference and examples
  store    persistent columnar stores: `store write` spills engine results
           to a file (incremental commits), `store query` reopens and
           queries it without re-simulation, `store catalog` inspects a
           multi-store catalog shard by shard
             run `catrisk store --help` for the full reference and examples
  serve    micro-batched TCP query server over a catalog of persistent
           stores — `serve DIR` watches the directory and adopts new
           store files live; `serve a.clm b.clm` serves a fixed list —
           refreshed live as ingest writers commit, with a
           generation-keyed result cache; --replicas N runs a replica
           fleet over one directory (clients fail over between replicas)
             run `catrisk serve --help` for the protocol and options
  loadgen  drive open-loop load at a running serve instance and print
           throughput and latency percentiles; --refresh-writer appends
           segments to a served shard mid-run (serve-while-ingesting)
             run `catrisk loadgen --help` for the options
  stats    scrape a running serve instance's telemetry: counters, per-stage
           latency histograms (--prometheus for raw text exposition), the
           flight-recorder event ring (--recorder, incremental with
           --since), and retained request traces (--trace ID, --slowest N)
             run `catrisk stats --help` for the options
  info     print the simulated device and default configuration";

/// Parsed `--key value` style options.
pub struct Options {
    pairs: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Options {
    /// Parses options of the form `--key value` and bare `--flag`s.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument `{arg}`"))?;
            // A flag is a `--key` not followed by a value.
            if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                pairs.push((key.to_string(), args[i + 1].clone()));
                i += 2;
            } else {
                flags.push(key.to_string());
                i += 1;
            }
        }
        Ok(Self { pairs, flags })
    }

    /// Value of `--key` parsed as `T`, or `default` when absent.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.pairs.iter().find(|(k, _)| k == key) {
            None => Ok(default),
            Some((_, v)) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for --{key}")),
        }
    }

    /// Every value of a repeatable `--key value` option, in order.
    pub fn get_all(&self, key: &str) -> Vec<String> {
        self.pairs
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
            .collect()
    }

    /// True when the bare flag `--key` was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// True when `--key value` was given (as opposed to the default being
    /// used).
    pub fn has_value(&self, key: &str) -> bool {
        self.pairs.iter().any(|(k, _)| k == key)
    }
}

/// Dispatches to the requested subcommand.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("no command given".to_string());
    };
    if command == "--help" || command == "help" {
        println!("{USAGE}");
        return Ok(());
    }
    // `store` dispatches on its own `write`/`query` action word and
    // `serve` takes positional catalog paths, so both receive the raw
    // arguments.
    if command == "store" {
        return store::run(&args[1..]);
    }
    if command == "serve" {
        return serve::run_serve_args(&args[1..]);
    }
    let options = Options::parse(&args[1..])?;
    match command.as_str() {
        "demo" => demo::run(&options),
        "engines" => engines::run(&options),
        "quote" => quote::run(&options),
        "query" => query::run(&options),
        "loadgen" => serve::run_loadgen(&options),
        "stats" => stats::run(&options),
        "info" => info::run(&options),
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn options_parse_pairs_and_flags() {
        let opts = Options::parse(&strings(&["--trials", "100", "--json", "--seed", "7"])).unwrap();
        assert_eq!(opts.get("trials", 0usize).unwrap(), 100);
        assert_eq!(opts.get("seed", 0u64).unwrap(), 7);
        assert_eq!(opts.get("missing", 42u32).unwrap(), 42);
        assert!(opts.has_flag("json"));
        assert!(!opts.has_flag("verbose"));
    }

    #[test]
    fn options_collect_repeated_values() {
        let opts = Options::parse(&strings(&["--store", "a.clm", "--store", "b.clm"])).unwrap();
        assert_eq!(opts.get_all("store"), vec!["a.clm", "b.clm"]);
        assert!(opts.get_all("missing").is_empty());
    }

    #[test]
    fn options_reject_bad_input() {
        assert!(Options::parse(&strings(&["trials", "100"])).is_err());
        let opts = Options::parse(&strings(&["--trials", "abc"])).unwrap();
        assert!(opts.get("trials", 0usize).is_err());
    }

    #[test]
    fn dispatch_errors() {
        assert!(dispatch(&[]).is_err());
        assert!(dispatch(&strings(&["frobnicate"])).is_err());
        assert!(dispatch(&strings(&["help"])).is_ok());
    }

    #[test]
    fn info_command_runs() {
        dispatch(&strings(&["info"])).unwrap();
    }

    #[test]
    fn demo_command_runs_small() {
        dispatch(&strings(&[
            "demo",
            "--trials",
            "200",
            "--locations",
            "150",
            "--events",
            "2000",
            "--seed",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn engines_command_runs_small() {
        dispatch(&strings(&["engines", "--trials", "150", "--seed", "3"])).unwrap();
    }

    #[test]
    fn quote_command_runs_small() {
        dispatch(&strings(&[
            "quote",
            "--trials",
            "200",
            "--retention",
            "1e6",
            "--limit",
            "5e6",
            "--seed",
            "3",
        ]))
        .unwrap();
    }
}
