//! Annual event-count (frequency) models.
//!
//! A Year Event Table trial is an alternative realisation of one contractual
//! year, so the first quantity to simulate is *how many* events of each
//! peril occur in that year.  The classical choices are the Poisson model
//! and the negative binomial model (over-dispersed, capturing clustered
//! seasons such as active hurricane years); a simple cluster model layers
//! outbreak behaviour on top of Poisson primaries.

use serde::{Deserialize, Serialize};

use catrisk_simkit::distributions::{Distribution, NegativeBinomial, Poisson};
use catrisk_simkit::rng::SimRng;

use crate::{GenError, Result};

/// Annual event-count model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FrequencyModel {
    /// Poisson counts: variance equals the mean.
    #[default]
    Poisson,
    /// Negative binomial counts with the given variance-to-mean ratio
    /// (> 1; at exactly 1 it degenerates to Poisson).
    NegativeBinomial {
        /// Ratio of variance to mean of the annual counts.
        dispersion: f64,
    },
    /// Poisson-distributed primary events, each spawning a Poisson number of
    /// additional clustered events (a Neyman–Scott style outbreak model,
    /// appropriate for tornado outbreaks or aftershock sequences).
    Clustered {
        /// Mean number of secondary events triggered by each primary event.
        cluster_mean: f64,
    },
}

impl FrequencyModel {
    /// Validates the model parameters.
    pub fn validate(&self) -> Result<()> {
        match *self {
            FrequencyModel::Poisson => Ok(()),
            FrequencyModel::NegativeBinomial { dispersion } => {
                if dispersion.is_finite() && dispersion >= 1.0 {
                    Ok(())
                } else {
                    Err(GenError::InvalidConfig(format!(
                        "negative binomial dispersion must be >= 1, got {dispersion}"
                    )))
                }
            }
            FrequencyModel::Clustered { cluster_mean } => {
                if cluster_mean.is_finite() && cluster_mean >= 0.0 {
                    Ok(())
                } else {
                    Err(GenError::InvalidConfig(format!(
                        "cluster_mean must be non-negative, got {cluster_mean}"
                    )))
                }
            }
        }
    }

    /// Samples the number of events in one year given the mean annual rate.
    pub fn sample_count(&self, mean_rate: f64, rng: &mut SimRng) -> u64 {
        debug_assert!(mean_rate >= 0.0);
        if mean_rate == 0.0 {
            return 0;
        }
        match *self {
            FrequencyModel::Poisson => Poisson::new(mean_rate)
                .expect("non-negative rate")
                .sample(rng),
            FrequencyModel::NegativeBinomial { dispersion } => {
                if dispersion <= 1.0 + 1e-9 {
                    return Poisson::new(mean_rate)
                        .expect("non-negative rate")
                        .sample(rng);
                }
                let variance = mean_rate * dispersion;
                NegativeBinomial::from_mean_variance(mean_rate, variance)
                    .expect("dispersion > 1")
                    .sample(rng)
            }
            FrequencyModel::Clustered { cluster_mean } => {
                // Primary rate chosen so the total mean matches `mean_rate`:
                // E[total] = E[primaries] * (1 + cluster_mean).
                let primary_rate = mean_rate / (1.0 + cluster_mean);
                let primaries = Poisson::new(primary_rate)
                    .expect("non-negative")
                    .sample(rng);
                let mut total = primaries;
                if cluster_mean > 0.0 {
                    let secondary = Poisson::new(cluster_mean).expect("non-negative");
                    for _ in 0..primaries {
                        total += secondary.sample(rng);
                    }
                }
                total
            }
        }
    }

    /// Theoretical variance-to-mean ratio of the model.
    pub fn dispersion_ratio(&self) -> f64 {
        match *self {
            FrequencyModel::Poisson => 1.0,
            FrequencyModel::NegativeBinomial { dispersion } => dispersion,
            // For a Poisson cluster process: Var/Mean = 1 + cluster_mean
            // (each primary contributes an independent Poisson cluster).
            FrequencyModel::Clustered { cluster_mean } => 1.0 + cluster_mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_simkit::rng::RngFactory;
    use catrisk_simkit::stats::RunningStats;

    fn empirical(model: FrequencyModel, mean_rate: f64, n: usize, seed: u64) -> RunningStats {
        let factory = RngFactory::new(seed);
        let mut stats = RunningStats::new();
        for i in 0..n {
            let mut rng = factory.stream(i as u64);
            stats.push(model.sample_count(mean_rate, &mut rng) as f64);
        }
        stats
    }

    #[test]
    fn poisson_mean_and_variance() {
        let s = empirical(FrequencyModel::Poisson, 12.0, 50_000, 1);
        assert!((s.mean() - 12.0).abs() < 0.1);
        assert!((s.variance() / s.mean() - 1.0).abs() < 0.05);
    }

    #[test]
    fn negative_binomial_overdispersion() {
        let model = FrequencyModel::NegativeBinomial { dispersion: 2.5 };
        model.validate().unwrap();
        let s = empirical(model, 10.0, 80_000, 2);
        assert!((s.mean() - 10.0).abs() < 0.1, "mean {}", s.mean());
        let ratio = s.variance() / s.mean();
        assert!((ratio - 2.5).abs() < 0.2, "dispersion {ratio}");
    }

    #[test]
    fn negative_binomial_degenerates_to_poisson_at_one() {
        let model = FrequencyModel::NegativeBinomial { dispersion: 1.0 };
        let s = empirical(model, 7.0, 50_000, 3);
        assert!((s.variance() / s.mean() - 1.0).abs() < 0.06);
    }

    #[test]
    fn clustered_mean_and_overdispersion() {
        let model = FrequencyModel::Clustered { cluster_mean: 1.5 };
        model.validate().unwrap();
        let s = empirical(model, 10.0, 80_000, 4);
        assert!((s.mean() - 10.0).abs() < 0.15, "mean {}", s.mean());
        let ratio = s.variance() / s.mean();
        assert!(
            ratio > 1.5,
            "clustered counts should be over-dispersed, got {ratio}"
        );
        assert!((model.dispersion_ratio() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn zero_rate_gives_zero_count() {
        let mut rng = RngFactory::new(5).stream(0);
        for model in [
            FrequencyModel::Poisson,
            FrequencyModel::NegativeBinomial { dispersion: 2.0 },
            FrequencyModel::Clustered { cluster_mean: 1.0 },
        ] {
            assert_eq!(model.sample_count(0.0, &mut rng), 0);
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FrequencyModel::NegativeBinomial { dispersion: 0.5 }
            .validate()
            .is_err());
        assert!(FrequencyModel::NegativeBinomial {
            dispersion: f64::NAN
        }
        .validate()
        .is_err());
        assert!(FrequencyModel::Clustered { cluster_mean: -1.0 }
            .validate()
            .is_err());
        assert!(FrequencyModel::Poisson.validate().is_ok());
        assert_eq!(FrequencyModel::default(), FrequencyModel::Poisson);
    }

    #[test]
    fn dispersion_ratio_reported() {
        assert_eq!(FrequencyModel::Poisson.dispersion_ratio(), 1.0);
        assert_eq!(
            FrequencyModel::NegativeBinomial { dispersion: 3.0 }.dispersion_ratio(),
            3.0
        );
    }

    #[test]
    fn serde_round_trip() {
        let m = FrequencyModel::NegativeBinomial { dispersion: 1.7 };
        let json = serde_json::to_string(&m).unwrap();
        assert_eq!(serde_json::from_str::<FrequencyModel>(&json).unwrap(), m);
    }
}
