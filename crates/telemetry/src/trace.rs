//! Request-scoped traces: span trees with attribution payloads.
//!
//! Where histograms answer "how long does this stage usually take" across
//! the whole fleet of requests, a trace answers "where did *this* request's
//! time go": a tree of named spans, each carrying the microseconds measured
//! by the **same clock reads** the stage histograms recorded (never a second
//! timer), plus numeric attribution — shards scanned, trial windows, rows,
//! cache hit-vs-miss, bytes decoded.
//!
//! The pieces:
//!
//! * [`TraceSpan`] — one node of the tree: a name, a start offset and a
//!   duration (both in microseconds relative to the trace start), ordered
//!   `(name, value)` attribution pairs, and child spans that are disjoint
//!   subintervals of their parent;
//! * [`TraceRecord`] — a completed trace: its wire-visible id, the total
//!   duration and the root span.  `Display` renders the indented tree;
//! * [`TraceStore`] — allocates sequential trace ids and retains completed
//!   traces: a bounded ring of the most recent plus a small pool of the
//!   slowest ever seen, so "show me the worst request" survives recency
//!   eviction.  [`TraceStore::lookup`] distinguishes *retained*, *evicted*
//!   (a real id whose record aged out) and *unknown* (never issued) — the
//!   watermark semantics histogram exemplars rely on.
//!
//! The serving-path span taxonomy and attribution schema are documented
//! normatively in `docs/OBSERVABILITY.md`; the wire commands (`trace <id>`,
//! `trace slowest N`, the per-request `trace` flag) in `docs/PROTOCOL.md`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// How many of the slowest traces a [`TraceStore`] keeps outside the
/// recency ring.
pub const SLOWEST_POOL: usize = 32;

/// One node of a trace's span tree.
///
/// Invariants the serving path maintains (and the property tests assert):
/// children are disjoint subintervals of their parent in execution order,
/// so the sum of child durations never exceeds the parent's duration, and
/// every child's `[start, start + micros]` interval lies inside its
/// parent's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpan {
    /// Stage name — the histogram stage this span's duration was recorded
    /// into (`queue`, `exec`, `refresh`, `scan_shard`, …).
    pub name: String,
    /// Microseconds from the trace's start to this span's start.
    pub start_micros: u64,
    /// Duration in microseconds — the exact value recorded into the
    /// corresponding stage histogram (shared clock read, never re-timed).
    pub micros: u64,
    /// Numeric attribution payload as ordered `(name, value)` pairs.
    #[serde(default)]
    pub attrs: Vec<(String, u64)>,
    /// Child spans: disjoint subintervals of this span, in execution order.
    #[serde(default)]
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    /// Creates a leaf span.
    pub fn new(name: &str, start_micros: u64, micros: u64) -> Self {
        Self {
            name: name.to_string(),
            start_micros,
            micros,
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Appends one attribution pair (builder style).
    pub fn attr(mut self, name: &str, value: u64) -> Self {
        self.attrs.push((name.to_string(), value));
        self
    }

    /// Appends a child span.
    pub fn push_child(&mut self, child: TraceSpan) {
        self.children.push(child);
    }

    /// Sum of the direct children's durations.
    pub fn child_micros(&self) -> u64 {
        self.children.iter().map(|c| c.micros).sum()
    }

    /// Microsecond offset (relative to the trace start) where the next
    /// sequential child would begin: after the last child, or at this
    /// span's own start when it has none.
    pub fn next_child_start(&self) -> u64 {
        self.children
            .last()
            .map(|c| c.start_micros + c.micros)
            .unwrap_or(self.start_micros)
    }

    /// A copy of this subtree with every start offset shifted by `offset`
    /// microseconds — how a span subtree built relative to its own stage
    /// start is re-anchored into a specific request's timeline (the same
    /// batch-level work fans out to members with different queue waits).
    pub fn shifted(&self, offset: u64) -> TraceSpan {
        TraceSpan {
            name: self.name.clone(),
            start_micros: self.start_micros + offset,
            micros: self.micros,
            attrs: self.attrs.clone(),
            children: self.children.iter().map(|c| c.shifted(offset)).collect(),
        }
    }

    /// Total number of spans in this subtree (including `self`).
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(TraceSpan::span_count)
            .sum::<usize>()
    }

    /// Counts the spans named `name` in this subtree.
    pub fn count_named(&self, name: &str) -> usize {
        usize::from(self.name == name)
            + self
                .children
                .iter()
                .map(|c| c.count_named(name))
                .sum::<usize>()
    }

    /// Finds the first span named `name` in this subtree, depth first.
    pub fn find(&self, name: &str) -> Option<&TraceSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    fn render(&self, f: &mut std::fmt::Formatter<'_>, depth: usize) -> std::fmt::Result {
        write!(
            f,
            "{:indent$}{:<width$} {:>10}us  +{}",
            "",
            self.name,
            self.micros,
            self.start_micros,
            indent = depth * 2,
            width = 24usize.saturating_sub(depth * 2),
        )?;
        for (name, value) in &self.attrs {
            write!(f, "  {name}={value}")?;
        }
        writeln!(f)?;
        for child in &self.children {
            child.render(f, depth + 1)?;
        }
        Ok(())
    }
}

/// A completed request trace: the wire-visible id, the total duration and
/// the span tree.  `Display` renders the indented tree (what
/// `catrisk query --profile` and `catrisk stats --slowest` print).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The trace id: sequential per server, starting at 1 (0 is never a
    /// valid id and means "untraced" wherever an id field can be absent).
    pub id: u64,
    /// Total duration in microseconds.  For a served request this is
    /// exactly `queue_micros + exec_micros` from the reply's timings —
    /// an exact contract, not an approximation (same clock reads).
    pub total_micros: u64,
    /// The root span (named `request` on the serving path).
    pub root: TraceSpan,
}

impl std::fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "trace {} ({}us total)", self.id, self.total_micros)?;
        self.root.render(f, 1)
    }
}

/// Outcome of a [`TraceStore::lookup`].
///
/// The three-way split is the exemplar contract: an exemplar trace id read
/// from a histogram bucket always resolves to `Retained` or `Evicted`,
/// never `Unknown` — `Unknown` means the id was never issued by this
/// server.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceLookup {
    /// The trace is retained; here is its record.
    Retained(TraceRecord),
    /// The id was issued by this server, but its record has been evicted
    /// from both the recency ring and the slowest pool (or retention is
    /// disabled).
    Evicted,
    /// The id was never issued (0, or above the allocation watermark).
    Unknown,
}

struct StoreInner {
    /// Most recent completed traces, oldest first.
    recent: VecDeque<TraceRecord>,
    /// The slowest traces ever completed, unordered, at most
    /// [`SLOWEST_POOL`] of them.
    slowest: Vec<TraceRecord>,
}

/// Allocates trace ids and retains completed traces.
///
/// Ids are sequential starting at 1, handed out with one relaxed atomic
/// add (safe inside the admission lock).  Retention is two-tier: a bounded
/// ring of the `capacity` most recent traces plus a fixed pool of the
/// [`SLOWEST_POOL`] slowest, so the worst requests stay resolvable after
/// the ring has churned past them.  A `capacity` of 0 disables retention
/// (ids are still allocated; every issued id looks up as `Evicted`).
pub struct TraceStore {
    next_id: AtomicU64,
    capacity: usize,
    inner: Mutex<StoreInner>,
}

impl TraceStore {
    /// Creates a store retaining at most `capacity` recent traces (plus
    /// the fixed slowest pool).
    pub fn new(capacity: usize) -> Self {
        Self {
            next_id: AtomicU64::new(1),
            capacity,
            inner: Mutex::new(StoreInner {
                recent: VecDeque::with_capacity(capacity.min(1024)),
                slowest: Vec::new(),
            }),
        }
    }

    /// Configured recency-ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Allocates the next trace id (sequential, starting at 1).
    pub fn allocate(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The highest id allocated so far (0 when none have been).
    pub fn watermark(&self) -> u64 {
        self.next_id.load(Ordering::Relaxed) - 1
    }

    /// Retains a completed trace.  Returns `true` when the record was kept
    /// (always, unless retention is disabled).
    pub fn insert(&self, record: TraceRecord) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let mut inner = self.inner.lock().unwrap();
        if inner.slowest.len() < SLOWEST_POOL {
            inner.slowest.push(record.clone());
        } else if let Some(min) = inner
            .slowest
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.total_micros)
            .map(|(i, _)| i)
        {
            if inner.slowest[min].total_micros < record.total_micros {
                inner.slowest[min] = record.clone();
            }
        }
        if inner.recent.len() == self.capacity {
            inner.recent.pop_front();
        }
        inner.recent.push_back(record);
        true
    }

    /// Looks an id up against the watermark and both retention tiers.
    pub fn lookup(&self, id: u64) -> TraceLookup {
        if id == 0 || id > self.watermark() {
            return TraceLookup::Unknown;
        }
        let inner = self.inner.lock().unwrap();
        if let Some(record) = inner
            .recent
            .iter()
            .rev()
            .chain(inner.slowest.iter())
            .find(|r| r.id == id)
        {
            return TraceLookup::Retained(record.clone());
        }
        TraceLookup::Evicted
    }

    /// The `n` slowest retained traces, slowest first, deduplicated across
    /// both retention tiers.
    pub fn slowest(&self, n: usize) -> Vec<TraceRecord> {
        let inner = self.inner.lock().unwrap();
        let mut all: Vec<&TraceRecord> = inner.slowest.iter().chain(inner.recent.iter()).collect();
        all.sort_by(|a, b| b.total_micros.cmp(&a.total_micros).then(a.id.cmp(&b.id)));
        all.dedup_by_key(|r| r.id);
        all.into_iter().take(n).cloned().collect()
    }

    /// Number of traces currently retained in the recency ring.
    pub fn retained(&self) -> usize {
        self.inner.lock().unwrap().recent.len()
    }
}

impl std::fmt::Debug for TraceStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceStore")
            .field("capacity", &self.capacity)
            .field("watermark", &self.watermark())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total: u64) -> TraceRecord {
        TraceRecord {
            id,
            total_micros: total,
            root: TraceSpan::new("request", 0, total),
        }
    }

    #[test]
    fn ids_are_sequential_from_one() {
        let store = TraceStore::new(4);
        assert_eq!(store.watermark(), 0);
        assert_eq!(store.allocate(), 1);
        assert_eq!(store.allocate(), 2);
        assert_eq!(store.watermark(), 2);
    }

    #[test]
    fn lookup_distinguishes_retained_evicted_unknown() {
        let store = TraceStore::new(2);
        for id in 1..=4u64 {
            assert_eq!(store.allocate(), id);
            store.insert(trace(id, id));
        }
        // 3 and 4 are in the ring; 1 and 2 were evicted from it but the
        // slowest pool still has room, so they remain retained.
        assert!(matches!(store.lookup(4), TraceLookup::Retained(r) if r.id == 4));
        assert!(matches!(store.lookup(1), TraceLookup::Retained(_)));
        assert_eq!(store.lookup(0), TraceLookup::Unknown);
        assert_eq!(store.lookup(99), TraceLookup::Unknown);
    }

    #[test]
    fn evicted_ids_stay_resolvable_as_evicted() {
        let store = TraceStore::new(1);
        // Flood both tiers with slow traces, then a fast one that the
        // slowest pool refuses and the ring churns past.
        for _ in 0..(SLOWEST_POOL as u64) {
            let id = store.allocate();
            store.insert(trace(id, 1_000_000));
        }
        let fast = store.allocate();
        store.insert(trace(fast, 1));
        let churn = store.allocate();
        store.insert(trace(churn, 2_000_000));
        assert_eq!(store.lookup(fast), TraceLookup::Evicted);
        assert!(matches!(store.lookup(churn), TraceLookup::Retained(_)));
    }

    #[test]
    fn slowest_survive_ring_eviction() {
        let store = TraceStore::new(2);
        let slow = store.allocate();
        store.insert(trace(slow, 5_000_000));
        for _ in 0..10 {
            let id = store.allocate();
            store.insert(trace(id, 10));
        }
        let top = store.slowest(3);
        assert_eq!(top[0].id, slow, "slowest pool must outlive the ring");
        assert!(top
            .windows(2)
            .all(|w| w[0].total_micros >= w[1].total_micros));
        let ids: Vec<u64> = top.iter().map(|r| r.id).collect();
        let mut deduped = ids.clone();
        deduped.dedup();
        assert_eq!(ids, deduped, "no duplicate ids across tiers");
    }

    #[test]
    fn zero_capacity_disables_retention() {
        let store = TraceStore::new(0);
        let id = store.allocate();
        assert!(!store.insert(trace(id, 7)));
        assert_eq!(store.lookup(id), TraceLookup::Evicted);
        assert!(store.slowest(5).is_empty());
    }

    #[test]
    fn display_renders_the_tree_with_attrs() {
        let mut root = TraceSpan::new("request", 0, 100);
        let mut exec = TraceSpan::new("exec", 40, 60).attr("batch_size", 7);
        exec.push_child(TraceSpan::new("scan", 40, 50).attr("segments", 3));
        root.push_child(TraceSpan::new("queue", 0, 40));
        root.push_child(exec);
        let record = TraceRecord {
            id: 42,
            total_micros: 100,
            root,
        };
        let text = record.to_string();
        assert!(text.contains("trace 42"), "{text}");
        assert!(text.contains("queue"), "{text}");
        assert!(text.contains("batch_size=7"), "{text}");
        assert!(text.contains("segments=3"), "{text}");
        assert_eq!(record.root.span_count(), 4);
        assert_eq!(record.root.count_named("scan"), 1);
        assert_eq!(record.root.find("exec").unwrap().child_micros(), 50);
    }

    #[test]
    fn next_child_start_advances_sequentially() {
        let mut span = TraceSpan::new("exec", 10, 90);
        assert_eq!(span.next_child_start(), 10);
        span.push_child(TraceSpan::new("refresh", 10, 5));
        assert_eq!(span.next_child_start(), 15);
        span.push_child(TraceSpan::new("scan", 15, 30));
        assert_eq!(span.next_child_start(), 45);
        assert!(span.child_micros() <= span.micros);
    }
}
