//! Telemetry consistency: the stage histograms exposed over `metrics`
//! must agree *exactly* with the serving counters exposed over `stats`.
//!
//! The invariants are structural, not statistical — each one holds
//! because the instrumentation records exactly one sample per unit of
//! work the corresponding counter counts:
//!
//! * `stage_queue_micros.count == completed + failed` (one queue-wait
//!   sample per answered request);
//! * `stage_scan_micros.count == cache_misses` (one scan sample per
//!   result-cache miss — hits never scan);
//! * `stage_scan_shard_micros.count == partial_misses` (one sample per
//!   trial-window rescan on a trial-sharded catalog);
//! * `batch_exec_micros.count == batches`.
//!
//! If an instrumentation refactor ever samples twice, skips an error
//! path, or counts a unit the stats layer does not, these equalities
//! break immediately.

use std::sync::Arc;
use std::time::Duration;

use catrisk_riskquery::prelude::*;
use catrisk_riskserve::telemetry::stage;
use catrisk_riskserve::test_store::random_store;
use catrisk_riskserve::{Server, ServerConfig, ShardAxis, StoreCatalog, Ticket};

/// Four distinct query shapes — each a separate result-cache entry.
fn query_shapes() -> Vec<Query> {
    [
        QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .group_by(Dimension::Region),
        QueryBuilder::new()
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .group_by(Dimension::Lob),
        QueryBuilder::new().aggregate(Aggregate::MaxLoss),
        QueryBuilder::new()
            .aggregate(Aggregate::StdDev)
            .group_by(Dimension::Peril),
    ]
    .into_iter()
    .map(|b| b.build().unwrap())
    .collect()
}

/// Submits every query, waits for all replies, and returns how many were
/// answered successfully.  Waiting between calls puts successive rounds
/// in separate batches, so repeats hit the result cache.
fn drive(server: &Server<impl catrisk_riskserve::SourceProvider>, queries: &[Query]) -> u64 {
    let tickets: Vec<Ticket> = queries
        .iter()
        .map(|q| server.submit(q.clone()).expect("admitted"))
        .collect();
    let mut answered = 0;
    for ticket in tickets {
        ticket.wait().expect("answered");
        answered += 1;
    }
    answered
}

#[test]
fn stage_histogram_counts_match_serving_counters() {
    let store = Arc::new(random_store(96, 8, 42));
    let server = Server::new(
        Arc::clone(&store),
        ServerConfig {
            batch_window: Duration::from_micros(200),
            recorder_capacity: 64,
            ..ServerConfig::default()
        },
    );
    let queries = query_shapes();
    let mut answered = 0;
    for _ in 0..3 {
        answered += drive(&server, &queries);
    }
    assert_eq!(answered, 3 * queries.len() as u64);

    let stats = server.stats();
    let metrics = server.metrics();

    let queue = metrics.histogram(stage::QUEUE).expect("queue histogram");
    assert_eq!(
        queue.count,
        stats.completed + stats.failed,
        "one queue sample per answered request: {stats:?}"
    );
    let scan = metrics.histogram(stage::SCAN).expect("scan histogram");
    assert_eq!(
        scan.count, stats.cache_misses,
        "one scan sample per result-cache miss: {stats:?}"
    );
    assert!(stats.cache_hits > 0, "the repeated shapes must hit");
    let batch_exec = metrics.histogram(stage::BATCH_EXEC).expect("batch exec");
    assert_eq!(batch_exec.count, stats.batches, "one sample per batch");
    let admission = metrics.histogram(stage::ADMISSION).expect("admission");
    assert_eq!(
        admission.count, stats.submitted,
        "one admission sample per submit"
    );

    // Counter exposition mirrors the stats snapshot (same atomics).
    assert_eq!(metrics.counter("completed"), Some(stats.completed));
    assert_eq!(metrics.counter("cache_misses"), Some(stats.cache_misses));
    assert_eq!(metrics.counter("batches"), Some(stats.batches));
    assert_eq!(
        metrics.gauge("largest_batch").map(|v| v.max(0) as u64),
        Some(stats.largest_batch)
    );

    // Percentile sanity on a live histogram.
    assert!(queue.percentile(50.0) <= queue.percentile(99.0));
    assert!(queue.percentile(99.0) <= queue.max);

    // The Prometheus rendering exposes every stage by its documented name.
    let text = metrics.to_prometheus();
    for name in [stage::QUEUE, stage::SCAN, stage::BATCH_EXEC, "completed"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }

    // The flight recorder saw the batches.
    let events = server.recorder_dump();
    assert!(
        events.iter().any(|e| e.kind == "batch"),
        "no batch event in {events:?}"
    );
    server.shutdown();
}

#[test]
fn trial_sharded_scan_shard_count_matches_partial_misses() {
    // Two trial-window shard files cut from one 64-trial store.
    let store = random_store(64, 4, 31);
    let mut paths = Vec::new();
    for (index, (start, end)) in [(0usize, 32usize), (32, 64)].into_iter().enumerate() {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-telemetry-consistency-{}-{index}.clm",
            std::process::id()
        ));
        let mut writer = catrisk_riskstore::StoreWriter::create_with(
            &path,
            end - start,
            catrisk_riskstore::StoreOptions {
                trial_offset: start as u64,
                ..catrisk_riskstore::StoreOptions::default()
            },
        )
        .unwrap();
        for s in 0..store.num_segments() {
            writer
                .append_segment(
                    *store.meta(s),
                    &store.year_losses(s)[start..end],
                    &store.max_occ_losses(s)[start..end],
                )
                .unwrap();
        }
        writer.finish().unwrap();
        paths.push(path);
    }
    let catalog = StoreCatalog::open(&paths).unwrap();
    assert_eq!(catalog.axis(), ShardAxis::Trial);
    let server = Server::new(
        catalog,
        ServerConfig {
            batch_window: Duration::from_micros(200),
            ..ServerConfig::default()
        },
    );
    let queries = query_shapes();
    for _ in 0..2 {
        drive(&server, &queries);
    }

    let stats = server.stats();
    let metrics = server.metrics();
    assert!(stats.partial_misses > 0, "fresh queries must rescan");
    let shard_scans = metrics
        .histogram(stage::SCAN_SHARD)
        .expect("per-shard scan histogram");
    assert_eq!(
        shard_scans.count, stats.fused_partial_scans,
        "one per-shard sample per fused partial scan: {stats:?}"
    );
    assert!(
        stats.fused_partial_scans > 0,
        "the rescans must have run through fused scans: {stats:?}"
    );
    assert!(
        stats.fused_partial_scans <= stats.partial_misses,
        "a fused scan covers at least one missing (query, shard) pair: {stats:?}"
    );
    let stitch = metrics.histogram(stage::STITCH).expect("stitch histogram");
    assert!(stitch.count > 0, "the trial path always stitches");
    let scan = metrics.histogram(stage::SCAN).expect("scan histogram");
    assert_eq!(scan.count, stats.cache_misses, "{stats:?}");

    server.shutdown();
    for path in &paths {
        let _ = std::fs::remove_file(path);
    }
}
