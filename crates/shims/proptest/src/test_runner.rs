//! Test configuration and the deterministic RNG driving input generation.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic xorshift128+ generator seeded from the test's name, so a
/// failing case reproduces on re-run without any persistence files.
#[derive(Debug, Clone)]
pub struct TestRng {
    s0: u64,
    s1: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// Seeds the generator from an arbitrary label (FNV-1a then SplitMix64).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h;
        Self {
            s0: splitmix64(&mut sm),
            s1: splitmix64(&mut sm),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("x::z");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..10_000 {
            assert!(rng.below(7) < 7);
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
