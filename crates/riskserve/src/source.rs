//! The serving data plane: how the batch scheduler sees its storage.
//!
//! A [`SourceProvider`] hands every batch a *consistent snapshot* of the
//! data — a [`SourceSnapshot`] bundling the scannable union, the
//! generation stamps the caches key on, and (for a trial-sharded
//! catalog) the per-shard trial windows the partial-aggregate cache
//! shards its work by.  Two providers exist:
//!
//! * any `Arc<S: SegmentSource>` — the static single-store form (an
//!   in-memory `ResultStore`, an immutable `StoreReader`): one shard,
//!   generation pinned at zero, refresh a no-op;
//! * [`StoreCatalog`](crate::catalog::StoreCatalog) — N persistent
//!   stores served as one union, refreshable while ingest writers keep
//!   committing, along either sharding axis (segment or trial).
//!
//! The server is generic over this trait, so the queue / batch-window /
//! fused-scan scheduler is written once and re-proven once.

use std::sync::Arc;

use catrisk_riskquery::SegmentSource;

/// One batch's consistent view of the data: the scannable source plus
/// the cache-keying metadata that was captured under the same snapshot.
pub struct SourceSnapshot<'a> {
    /// The union all scans of this batch run over.
    pub source: &'a dyn SegmentSource,
    /// One monotonic stamp per shard, taken under the same snapshot as
    /// `source`: a stamp changes exactly when that shard's visible data
    /// changes, so `(query, generations)` is a sound whole-result cache
    /// key and `(query, shard, generations[shard])` a sound per-shard
    /// partial cache key.
    pub generations: &'a [u64],
    /// The global trial window `[start, end)` each shard covers, in
    /// shard order, when the provider serves a **trial**-sharded catalog
    /// — `None` for a single store or a segment-axis catalog.  Present
    /// windows partition `[0, source.num_trials())`, and window `j`
    /// corresponds to `generations[j]`, which is what lets the server
    /// cache one [`TrialPartial`](catrisk_riskquery::TrialPartial) per
    /// `(query, shard)` and rescan only the shards whose stamp moved.
    pub trial_windows: Option<&'a [(usize, usize)]>,
    /// The global segment range `[lo, hi)` each shard contributes, in
    /// shard order, when the provider serves a multi-shard **segment**-axis
    /// catalog with every shard usable (so range `j` corresponds to
    /// `generations[j]`) — `None` for a single store, a trial-sharded
    /// catalog, or a degraded segment catalog.  Present ranges partition
    /// `[0, source.num_segments())`, which is what lets the server cache
    /// per-segment-shard partials and, for shard-aligned plans, rescan
    /// only the shard whose stamp moved.
    pub segment_ranges: Option<&'a [(usize, usize)]>,
}

/// Storage behind a [`Server`](crate::server::Server): snapshots,
/// generations, refresh.
pub trait SourceProvider: Send + Sync + 'static {
    /// Trials every scan sees.  This may *grow* over the provider's
    /// lifetime — a directory-watching catalog that adopts the next
    /// trial window appends trials — but never shrinks or reorders, so
    /// any query that was admitted stays valid and the admission path
    /// can read the current value without holding it across the batch.
    /// For a trial-sharded catalog this is the *total* over the shard
    /// windows.
    fn num_trials(&self) -> usize;

    /// Total committed segments currently visible (diagnostics).
    fn num_segments(&self) -> usize;

    /// Picks up newly committed data, if the backing storage supports
    /// it.  Returns the indices of the shards whose visible state
    /// advanced.  The default is the immutable no-op.
    fn refresh(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Store files a watching provider adopted since the last drain (see
    /// [`StoreCatalog::open_dir`](crate::catalog::StoreCatalog::open_dir));
    /// the server turns the drained paths into the `discovered_stores`
    /// counter and `store-discovered` recorder events.  The default (for
    /// providers that never discover anything) is always empty.
    fn drain_discovered(&self) -> Vec<std::path::PathBuf> {
        Vec::new()
    }

    /// Hooks the provider's own metrics into the server's registry, once,
    /// at server construction.  A refreshable catalog records store-open
    /// costs, attaches refresh-latency histograms to its readers and
    /// times its schema memo; the default (for immutable providers with
    /// nothing to measure) is a no-op.
    fn attach_telemetry(&self, _registry: &catrisk_telemetry::Registry) {}

    /// Runs `f` over a consistent snapshot of the data; every field of
    /// the [`SourceSnapshot`] describes the same instant.
    fn with_source<R>(&self, f: impl FnOnce(SourceSnapshot<'_>) -> R) -> R;
}

/// The static single-store provider: one immutable shard at generation
/// zero.
impl<S: SegmentSource + Send + Sync + 'static> SourceProvider for Arc<S> {
    fn num_trials(&self) -> usize {
        SegmentSource::num_trials(&**self)
    }

    fn num_segments(&self) -> usize {
        SegmentSource::num_segments(&**self)
    }

    fn with_source<R>(&self, f: impl FnOnce(SourceSnapshot<'_>) -> R) -> R {
        f(SourceSnapshot {
            source: &**self,
            generations: &[0],
            trial_windows: None,
            segment_ranges: None,
        })
    }
}
