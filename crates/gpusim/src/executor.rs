//! The kernel executor: functional execution plus cost accounting.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::device::DeviceSpec;
use crate::kernel::{Kernel, LaunchConfig, ThreadTracker};
use crate::memory::MemoryCounters;
use crate::occupancy::{occupancy, Occupancy};
use crate::timing::{simulate_time, TimingBreakdown};
use crate::{GpuError, Result};

/// The result of launching a kernel on the simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaunchResult {
    /// Name of the kernel.
    pub kernel: String,
    /// The launch configuration used.
    pub config: LaunchConfig,
    /// Number of blocks launched.
    pub blocks: usize,
    /// Occupancy achieved on each SM.
    pub occupancy: Occupancy,
    /// Aggregated memory and compute counters.
    pub counters: MemoryCounters,
    /// Simulated execution time.
    pub timing: TimingBreakdown,
}

impl LaunchResult {
    /// Simulated execution time in seconds.
    pub fn simulated_seconds(&self) -> f64 {
        self.timing.total_seconds
    }
}

/// Executes kernels against a device specification.
#[derive(Debug, Clone)]
pub struct Executor {
    device: DeviceSpec,
    /// Host-side parallelism used to *run* the simulation (does not affect
    /// the simulated timing).
    host_threads: usize,
}

impl Executor {
    /// Creates an executor for the given device.
    pub fn new(device: DeviceSpec) -> Self {
        Self {
            device,
            host_threads: 0,
        }
    }

    /// Creates an executor for the paper's Tesla C2075.
    pub fn tesla_c2075() -> Self {
        Self::new(DeviceSpec::tesla_c2075())
    }

    /// Limits the host-side threads used to run the simulation.
    pub fn with_host_threads(mut self, threads: usize) -> Self {
        self.host_threads = threads;
        self
    }

    /// The device this executor simulates.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Validates a launch configuration against the device limits.
    pub fn validate_launch<K: Kernel>(&self, kernel: &K, config: &LaunchConfig) -> Result<()> {
        self.device.validate()?;
        if config.threads_per_block == 0 {
            return Err(GpuError::InvalidLaunch(
                "threads_per_block must be positive".into(),
            ));
        }
        if config.threads_per_block > self.device.max_threads_per_block {
            return Err(GpuError::InvalidLaunch(format!(
                "threads_per_block {} exceeds the device limit {}",
                config.threads_per_block, self.device.max_threads_per_block
            )));
        }
        if !config
            .threads_per_block
            .is_multiple_of(self.device.warp_size)
        {
            return Err(GpuError::InvalidLaunch(format!(
                "threads_per_block {} must be a multiple of the warp size {}",
                config.threads_per_block, self.device.warp_size
            )));
        }
        if kernel.total_threads() == 0 {
            return Err(GpuError::InvalidLaunch(
                "kernel has no threads to launch".into(),
            ));
        }
        Ok(())
    }

    /// Launches a kernel: executes every logical thread (on the host, in
    /// parallel), aggregates its memory counters, and computes the simulated
    /// execution time.
    pub fn launch<K: Kernel>(&self, kernel: &K, config: LaunchConfig) -> Result<LaunchResult> {
        self.validate_launch(kernel, &config)?;
        let total_threads = kernel.total_threads();
        let tpb = config.threads_per_block as usize;
        let blocks = config.blocks_for(total_threads);
        let shared_per_block = kernel.shared_mem_per_block(config.threads_per_block);
        let occ = occupancy(&self.device, config.threads_per_block, shared_per_block);

        // Execute block by block on the host.  Blocks are independent, so we
        // parallelise over them for host speed; this has no effect on the
        // simulated timing.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(self.host_threads)
            .build()
            .expect("host thread pool");
        let mut counters: MemoryCounters = pool.install(|| {
            (0..blocks)
                .into_par_iter()
                .map(|block_id| {
                    let mut block_counters = MemoryCounters::new();
                    let start = block_id * tpb;
                    let end = (start + tpb).min(total_threads);
                    for thread_id in start..end {
                        let mut tracker =
                            ThreadTracker::new(thread_id, block_id, (thread_id - start) as u32);
                        kernel.execute_thread(&mut tracker);
                        block_counters.merge(&tracker.counters);
                    }
                    block_counters
                })
                .reduce(MemoryCounters::new, |mut a, b| {
                    a.merge(&b);
                    a
                })
        });

        // Shared-memory requests beyond the per-SM budget spill to global
        // memory (the paper's explanation of the chunk-size cliff).
        if occ.shared_overflow_fraction > 0.0 {
            counters.spill_shared(occ.shared_overflow_fraction);
        }

        let timing = simulate_time(
            &self.device,
            &counters,
            &occ,
            blocks,
            kernel.memory_parallelism(),
        );
        Ok(LaunchResult {
            kernel: kernel.name().to_string(),
            config,
            blocks,
            occupancy: occ,
            counters,
            timing,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A toy kernel: each thread performs a fixed amount of traffic and adds
    /// its id into a shared accumulator so tests can verify every thread ran.
    struct ToyKernel {
        threads: usize,
        sum: AtomicU64,
        shared_per_thread: u32,
    }

    impl ToyKernel {
        fn new(threads: usize, shared_per_thread: u32) -> Self {
            Self {
                threads,
                sum: AtomicU64::new(0),
                shared_per_thread,
            }
        }
    }

    impl Kernel for ToyKernel {
        fn name(&self) -> &str {
            "toy"
        }

        fn total_threads(&self) -> usize {
            self.threads
        }

        fn shared_mem_per_block(&self, threads_per_block: u32) -> u32 {
            threads_per_block * self.shared_per_thread
        }

        fn execute_thread(&self, tracker: &mut ThreadTracker) {
            self.sum
                .fetch_add(tracker.thread_id as u64, Ordering::Relaxed);
            tracker.global_read(8);
            tracker.global_write(8);
            tracker.shared_access(8);
            tracker.constant_access();
            tracker.compute(4);
        }
    }

    #[test]
    fn launch_executes_every_thread_and_counts_traffic() {
        let executor = Executor::tesla_c2075().with_host_threads(2);
        let kernel = ToyKernel::new(1_000, 0);
        let result = executor
            .launch(&kernel, LaunchConfig::with_block_size(256))
            .unwrap();
        assert_eq!(kernel.sum.load(Ordering::Relaxed), 999 * 1000 / 2);
        assert_eq!(result.blocks, 4);
        assert_eq!(result.counters.global_reads, 1_000);
        assert_eq!(result.counters.global_writes, 1_000);
        assert_eq!(result.counters.shared_accesses, 1_000);
        assert_eq!(result.counters.constant_accesses, 1_000);
        assert_eq!(result.counters.compute_ops, 4_000);
        assert!(result.simulated_seconds() > 0.0);
        assert_eq!(result.kernel, "toy");
        assert_eq!(result.occupancy.shared_overflow_fraction, 0.0);
    }

    #[test]
    fn oversized_shared_request_spills_traffic() {
        let executor = Executor::tesla_c2075();
        // 1 KB of shared memory per thread: a 64-thread block wants 64 KB,
        // more than the 48 KB budget.
        let kernel = ToyKernel::new(640, 1024);
        let result = executor
            .launch(&kernel, LaunchConfig::with_block_size(64))
            .unwrap();
        assert!(result.occupancy.shared_overflow_fraction > 0.0);
        assert!(result.counters.spilled_accesses > 0);
        // The spilled portion of the toy kernel's shared accesses migrated
        // into global accesses.
        assert!(result.counters.global_accesses() > 2 * 640 - 10);
    }

    #[test]
    fn launch_validation() {
        let executor = Executor::tesla_c2075();
        let kernel = ToyKernel::new(100, 0);
        assert!(executor
            .launch(&kernel, LaunchConfig::with_block_size(0))
            .is_err());
        assert!(
            executor
                .launch(&kernel, LaunchConfig::with_block_size(100))
                .is_err(),
            "not a warp multiple"
        );
        assert!(
            executor
                .launch(&kernel, LaunchConfig::with_block_size(2048))
                .is_err(),
            "exceeds device limit"
        );
        let empty = ToyKernel::new(0, 0);
        assert!(executor
            .launch(&empty, LaunchConfig::with_block_size(256))
            .is_err());
    }

    #[test]
    fn higher_occupancy_launch_is_not_slower() {
        let executor = Executor::tesla_c2075();
        let kernel = ToyKernel::new(100_000, 0);
        let narrow = executor
            .launch(&kernel, LaunchConfig::with_block_size(128))
            .unwrap();
        let wide = executor
            .launch(&kernel, LaunchConfig::with_block_size(256))
            .unwrap();
        assert!(wide.simulated_seconds() <= narrow.simulated_seconds() * 1.001);
    }

    #[test]
    fn serde_round_trip() {
        let executor = Executor::tesla_c2075();
        let kernel = ToyKernel::new(64, 0);
        let result = executor
            .launch(&kernel, LaunchConfig::with_block_size(32))
            .unwrap();
        let json = serde_json::to_string(&result).unwrap();
        assert_eq!(serde_json::from_str::<LaunchResult>(&json).unwrap(), result);
    }
}
