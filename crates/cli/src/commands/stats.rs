//! `catrisk stats` — scrape and pretty-print a running server's
//! telemetry: the metric registry (counters, gauges, per-stage latency
//! histograms) and, on request, the flight-recorder event ring.
//!
//! One connection, one `metrics` (and optionally `recorder`) protocol
//! line, one human-readable report — or the raw Prometheus text
//! exposition with `--prometheus`, for piping into a scraper.  The metric
//! names and the flight-recorder event schema are documented in
//! `docs/OBSERVABILITY.md`; the wire commands in `docs/PROTOCOL.md`.

use std::time::Duration;

use catrisk_riskclient::{ClientConfig, WireReply};

use super::Options;

/// Detailed usage of the stats command, shown by `catrisk stats --help`.
pub const STATS_HELP: &str = "usage: catrisk stats [options]

Connects to a running `catrisk serve` instance, scrapes its metric
registry over the `metrics` protocol command and prints a human-readable
report: counters, gauges, and each stage latency histogram with count,
mean, p50/p90/p99 and max (see docs/OBSERVABILITY.md for the stage
taxonomy and metric names).

options:
  --addr A         server address (default 127.0.0.1:7433)
  --connect-timeout S  seconds to retry the connect (default 5)
  --prometheus     print the raw Prometheus text exposition instead of
                   the formatted report (pipe into a scraper)
  --recorder       also dump the flight recorder: the ring of recent
                   structured events (batches, refreshes, cache purges,
                   stitch fallbacks, overloads, slow batches)
  --since SEQ      with --recorder, only events with seq >= SEQ
                   (incremental scrape: pass 1 + the last seq you saw)
  --trace ID       look up one retained trace by id and print its span
                   tree (ids appear in slow-batch recorder events and
                   histogram exemplars)
  --slowest N      print the N slowest retained traces' span trees";

/// Runs the stats command.
pub fn run(options: &Options) -> Result<(), String> {
    if options.has_flag("help") {
        println!("{STATS_HELP}");
        return Ok(());
    }
    let addr = options.get("addr", "127.0.0.1:7433".to_string())?;
    let timeout = Duration::from_secs(options.get("connect-timeout", 5u64)?);

    // Trace lookups are point queries: print the tree(s) and stop, no
    // metrics scrape.
    if options.has_value("trace") {
        let id = options.get("trace", 0u64)?;
        let reply = round_trip(&addr, timeout, &format!("trace {id}"))?;
        return match (reply.trace, reply.error) {
            (Some(record), _) => {
                println!("{record}");
                Ok(())
            }
            (None, Some(err)) => Err(format!("trace {id}: {} ({})", err.message, err.kind)),
            (None, None) => Err(format!("trace {id}: malformed reply")),
        };
    }
    if options.has_value("slowest") {
        let n = options.get("slowest", 5usize)?;
        let reply = round_trip(&addr, timeout, &format!("trace slowest {n}"))?;
        let records = reply
            .traces
            .ok_or_else(|| "the server's reply carried no traces".to_string())?;
        if records.is_empty() {
            println!(
                "no traces retained (start the server with --trace-sample, or send traced queries)"
            );
        }
        for record in records {
            println!("{record}");
        }
        return Ok(());
    }

    let reply = round_trip(&addr, timeout, "metrics")?;
    let snapshot = reply.metrics.ok_or_else(|| {
        "the server's reply carried no metrics (pre-telemetry server?)".to_string()
    })?;

    if options.has_flag("prometheus") {
        print!("{}", snapshot.to_prometheus());
    } else {
        if !snapshot.counters.is_empty() {
            println!("counters:");
            for (name, value) in &snapshot.counters {
                println!("  {name:<28} {value}");
            }
        }
        if !snapshot.gauges.is_empty() {
            println!("gauges:");
            for (name, value) in &snapshot.gauges {
                println!("  {name:<28} {value}");
            }
        }
        if !snapshot.histograms.is_empty() {
            println!("histograms (µs):");
            println!(
                "  {:<28} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8}",
                "name", "count", "mean", "p50", "p90", "p99", "max"
            );
            for (name, h) in &snapshot.histograms {
                println!(
                    "  {:<28} {:>8} {:>10.1} {:>8} {:>8} {:>8} {:>8}",
                    name,
                    h.count,
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(90.0),
                    h.percentile(99.0),
                    h.max
                );
            }
        }
    }

    if options.has_flag("recorder") || options.has_value("since") {
        let line = if options.has_value("since") {
            format!("recorder since {}", options.get("since", 0u64)?)
        } else {
            "recorder".to_string()
        };
        let reply = round_trip(&addr, timeout, &line)?;
        let events = reply
            .recorder
            .ok_or_else(|| "the server's reply carried no recorder dump".to_string())?;
        println!("flight recorder ({} events):", events.len());
        for event in &events {
            let fields: Vec<String> = event
                .fields
                .iter()
                .map(|(name, value)| format!("{name}={value:?}"))
                .collect();
            println!(
                "  #{:<6} +{:>10}µs {:<16} {}",
                event.seq,
                event.micros,
                event.kind,
                fields.join(" ")
            );
        }
    }
    Ok(())
}

/// One request/reply round trip on a fresh [`catrisk_riskclient`]
/// connection (connect retry included, so `stats` works against a
/// just-spawned server).
fn round_trip(addr: &str, timeout: Duration, line: &str) -> Result<WireReply, String> {
    let config = ClientConfig {
        connect_timeout: timeout,
        read_timeout: Some(Duration::from_secs(30)),
    };
    catrisk_riskclient::round_trip(addr, config, line).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn stats_scrapes_a_running_server() {
        let out = {
            let mut path = std::env::temp_dir();
            path.push(format!("catrisk-cli-stats-{}.clm", std::process::id()));
            path.to_string_lossy().into_owned()
        };
        super::super::store::run(&strings(&[
            "write",
            "--out",
            &out,
            "--trials",
            "120",
            "--locations",
            "80",
            "--events",
            "1500",
            "--seed",
            "9",
            "--engine",
            "parallel",
        ]))
        .unwrap();
        let serve_options = Options::parse(&strings(&["--addr", "127.0.0.1:0"])).unwrap();
        let front = super::super::serve::bind_front_end(std::slice::from_ref(&out), &serve_options)
            .unwrap();
        let addr = front.local_addr().to_string();

        // A query first, so the stage histograms hold samples.
        let reply =
            round_trip(&addr, Duration::from_secs(5), "select mean group by region").unwrap();
        assert!(reply.ok, "{reply:?}");

        // All output modes run against the live server.
        run(&Options::parse(&strings(&["--addr", &addr])).unwrap()).unwrap();
        run(&Options::parse(&strings(&["--addr", &addr, "--prometheus"])).unwrap()).unwrap();
        run(&Options::parse(&strings(&["--addr", &addr, "--recorder"])).unwrap()).unwrap();
        run(&Options::parse(&strings(&["--addr", &addr, "--recorder", "--since", "1"])).unwrap())
            .unwrap();

        // A traced query (the wire prefix forces sampling), then the trace
        // is resolvable by id and listed among the slowest.
        let traced = round_trip(
            &addr,
            Duration::from_secs(5),
            "trace select mean group by region",
        )
        .unwrap();
        let id = traced.trace.expect("traced reply carries a profile").id;
        run(&Options::parse(&strings(&["--addr", &addr, "--trace", &id.to_string()])).unwrap())
            .unwrap();
        run(&Options::parse(&strings(&["--addr", &addr, "--slowest", "3"])).unwrap()).unwrap();
        // An unknown id is a typed error, not a panic.
        assert!(
            run(&Options::parse(&strings(&["--addr", &addr, "--trace", "999999"])).unwrap())
                .is_err()
        );

        // And the scrape itself sees consistent telemetry.
        let snapshot = round_trip(&addr, Duration::from_secs(5), "metrics")
            .unwrap()
            .metrics
            .unwrap();
        assert!(snapshot.counter("completed").unwrap() >= 1);
        assert!(snapshot.histogram("stage_scan_micros").unwrap().count >= 1);

        let _ = round_trip(&addr, Duration::from_secs(5), "shutdown");
        front.wait().unwrap();
        let _ = std::fs::remove_file(&out);
    }

    #[test]
    fn stats_connect_failure_is_typed() {
        let options = Options::parse(&strings(&[
            "--addr",
            "127.0.0.1:1",
            "--connect-timeout",
            "0",
        ]))
        .unwrap();
        assert!(run(&options).is_err());
    }

    #[test]
    fn stats_help_prints() {
        run(&Options::parse(&strings(&["--help"])).unwrap()).unwrap();
    }
}
