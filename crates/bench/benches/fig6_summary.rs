//! Fig. 6 — summary comparison of every engine variant on the standard
//! workload (6a) and the phase breakdown of the algorithm (6b).
//!
//! CPU engines are measured in wall-clock time; the two GPU variants report
//! the simulated Tesla C2075 time via `iter_custom`.  The phase breakdown is
//! exercised by benchmarking the instrumented sequential run (its output
//! feeds the `figures fig6b` report).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_engine::chunked::ChunkedEngine;
use catrisk_engine::parallel::ParallelEngine;
use catrisk_engine::sequential::SequentialEngine;
use catrisk_gpusim::executor::Executor;
use catrisk_gpusim::kernel::LaunchConfig;
use catrisk_gpusim::kernels::{run_gpu_analysis, total_simulated_seconds, GpuVariant};

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        num_events: 50_000,
        trials: 1_000,
        events_per_trial: 1_000.0,
        num_elts: 15,
        elt_records: 5_000,
        num_layers: 1,
        elts_per_layer: 15,
        ..WorkloadSpec::bench_scale()
    }
}

fn fig6a_engines(c: &mut Criterion) {
    let input = build_input(&workload());
    let executor = Executor::tesla_c2075();
    let mut group = c.benchmark_group("fig6a_total_time");
    group.sample_size(10);

    group.bench_function("sequential", |b| {
        b.iter(|| SequentialEngine::new().run(&input))
    });
    group.bench_function("parallel_8_cores", |b| {
        b.iter(|| ParallelEngine::with_threads(8).run(&input))
    });
    group.bench_function("parallel_all_cores", |b| {
        b.iter(|| ParallelEngine::new().run(&input))
    });
    group.bench_function("chunked_cpu", |b| {
        b.iter(|| ChunkedEngine::new(64).run(&input))
    });
    group.bench_function("gpu_basic_simulated", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let (_, launches) = run_gpu_analysis(
                    &executor,
                    &input,
                    GpuVariant::Basic,
                    LaunchConfig::with_block_size(256),
                )
                .expect("launch");
                total += Duration::from_secs_f64(total_simulated_seconds(&launches));
            }
            total
        })
    });
    group.bench_function("gpu_chunked_simulated", |b| {
        b.iter_custom(|iters| {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let (_, launches) = run_gpu_analysis(
                    &executor,
                    &input,
                    GpuVariant::Chunked { chunk_size: 4 },
                    LaunchConfig::with_block_size(64),
                )
                .expect("launch");
                total += Duration::from_secs_f64(total_simulated_seconds(&launches));
            }
            total
        })
    });
    group.finish();
}

fn fig6b_phase_breakdown(c: &mut Criterion) {
    let input = build_input(&workload());
    let mut group = c.benchmark_group("fig6b_phase_breakdown");
    group.sample_size(10);
    group.bench_function("instrumented_sequential", |b| {
        b.iter(|| SequentialEngine::new().run_instrumented(&input))
    });
    group.finish();
}

criterion_group! {
    name = fig6;
    // The simulated-GPU measurements are deterministic (zero variance), which
    // criterion's plotting backend cannot density-estimate; disable plots.
    config = Criterion::default().without_plots();
    targets = fig6a_engines, fig6b_phase_breakdown
}
criterion_main!(fig6);
