//! Serialization round trips across crates: binary YETs, JSON catalogs,
//! ELTs, portfolios and risk reports.

use catrisk::catmodel::elt::{EltRecord, EventLossTable};
use catrisk::eventgen::catalog::{CatalogConfig, EventCatalog};
use catrisk::eventgen::io::{read_yet, write_yet, yet_from_bytes, yet_to_bytes};
use catrisk::eventgen::simulate::{YetConfig, YetGenerator};
use catrisk::finterms::currency::Currency;
use catrisk::finterms::terms::FinancialTerms;
use catrisk::finterms::treaty::Treaty;
use catrisk::metrics::report::RiskReport;
use catrisk::portfolio::contract::{Contract, ContractId};
use catrisk::portfolio::portfolio::Portfolio;
use catrisk::prelude::RngFactory;

#[test]
fn yet_binary_round_trip_at_moderate_size() {
    let factory = RngFactory::new(31);
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 5_000,
            annual_event_budget: 800.0,
            rate_tail_index: 1.2,
        },
        &factory,
    )
    .unwrap();
    let yet = YetGenerator::new(&catalog, YetConfig::with_trials(2_000))
        .unwrap()
        .generate(&factory);
    assert!(yet.total_events() > 1_000_000, "moderately large table");

    let bytes = yet_to_bytes(&yet);
    let back = yet_from_bytes(&bytes).unwrap();
    assert_eq!(yet, back);

    // File round trip.
    let path = std::env::temp_dir().join("catrisk-integration.yet");
    write_yet(&path, &yet).unwrap();
    let from_file = read_yet(&path).unwrap();
    assert_eq!(yet, from_file);
    std::fs::remove_file(&path).ok();
}

#[test]
fn catalog_and_elt_json_round_trip() {
    let factory = RngFactory::new(32);
    let catalog = EventCatalog::generate(
        &CatalogConfig {
            num_events: 300,
            annual_event_budget: 50.0,
            rate_tail_index: 1.4,
        },
        &factory,
    )
    .unwrap();
    let json = serde_json::to_string(&catalog).unwrap();
    let back: EventCatalog = serde_json::from_str(&json).unwrap();
    assert_eq!(catalog, back);

    let elt = EventLossTable::new(
        "json-book",
        Currency::Gbp,
        FinancialTerms::new(1_000.0, f64::INFINITY, 0.9, 1.27).unwrap(),
        (0..100)
            .map(|i| EltRecord {
                event: i * 3,
                mean_loss: 1_000.0 * f64::from(i),
                std_dev: 10.0 * f64::from(i),
                exposure_value: 1.0e6,
            })
            .collect(),
    );
    let json = serde_json::to_string(&elt).unwrap();
    let back: EventLossTable = serde_json::from_str(&json).unwrap();
    assert_eq!(elt, back);
    assert!(
        back.financial_terms.limit.is_infinite(),
        "unlimited terms survive JSON"
    );
}

#[test]
fn portfolio_and_report_json_round_trip() {
    let mut portfolio = Portfolio::new("serde-book");
    portfolio.add(
        Contract::new(
            ContractId(0),
            "wind",
            Treaty::cat_xl(1.0e6, 5.0e6),
            vec![0, 1],
        )
        .with_premium(4.0e5),
    );
    portfolio.add(Contract::new(
        ContractId(1),
        "stop loss",
        Treaty::AggregateXl {
            retention: 2.0e6,
            limit: 8.0e6,
        },
        vec![1],
    ));
    let json = serde_json::to_string_pretty(&portfolio).unwrap();
    let back: Portfolio = serde_json::from_str(&json).unwrap();
    assert_eq!(portfolio, back);

    let losses: Vec<f64> = (0..2_000)
        .map(|i| if i % 3 == 0 { f64::from(i) * 7.0 } else { 0.0 })
        .collect();
    let report = RiskReport::from_losses("serde-report", &losses, None);
    let json = serde_json::to_string(&report).unwrap();
    let back: RiskReport = serde_json::from_str(&json).unwrap();
    assert_eq!(report, back);
}
