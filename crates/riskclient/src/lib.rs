//! # catrisk-riskclient
//!
//! The typed TCP client for the catrisk serving protocol — the one
//! implementation of connect/retry, line framing and reply parsing that
//! every consumer shares.  Three call sites used to hand-roll this
//! (the load generator, the CLI `stats` scraper, the TCP test helper);
//! they now all go through here, as does the serving fleet's routing
//! tier.
//!
//! Three layers:
//!
//! * [`wire`] — the reply schema ([`WireReply`], [`StatsSnapshot`],
//!   [`RequestTimings`]) shared with the server (`catrisk-riskserve`
//!   re-exports these at their old paths).  The normative protocol
//!   specification is `docs/PROTOCOL.md` at the repository root.
//! * [`Client`] — one persistent connection: a retrying
//!   [`connect`](Client::connect), [`round_trip`](Client::round_trip),
//!   and a typed method per command (`ping`, `stats`, `metrics`,
//!   `recorder [since]`, `trace`, queries, `quit`/`shutdown`).
//! * [`RoutedClient`] — the fleet entry point: round-robin routing over
//!   N replica endpoints with health marking and failover that
//!   resubmits a request whose replica died to the next live one
//!   (sound because every protocol request is idempotent — see the
//!   [`routed`] module docs).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod routed;
pub mod wire;

pub use client::{round_trip, Client, ClientConfig, ClientError};
pub use routed::RoutedClient;
pub use wire::{percentile, RequestTimings, StatsSnapshot, WireError, WireReply};
