//! Routing one query scan across stores that partition the **trial
//! axis**: the paper's own parallelisation dimension.
//!
//! The source paper distributes its simulation by trials — each worker
//! simulates a disjoint window of trials for *every* layer, and exact
//! aggregation stitches the windows back together.  A production ingest
//! fleet mirrors that: writer `j` owns trials `[t_j, t_{j+1})` and
//! produces a store holding one segment per layer over its window.
//! [`TrialShardedSource`] presents N such stores as one logical store
//! whose trial axis is their concatenation `[0, t_1) [t_1, t_2) …`, so
//! the existing [`plan`](crate::plan), [`exec`](crate::exec) and
//! [`QuerySession`](crate::session::QuerySession) pipeline runs over the
//! stitched axis unchanged.
//!
//! This is the *other* sharding axis from
//! [`ShardedSource`](crate::sharded::ShardedSource), which unions
//! disjoint **segment** sets over one shared trial axis:
//!
//! ```text
//!                 segments →
//!   trials   ┌───────────────────┐      ShardedSource: vertical slices
//!     ↓      │ A A A │ B B │ C C │      (each shard owns whole segments)
//!            │ A A A │ B B │ C C │
//!            ├───────┴─────┴─────┤
//!            │ 1 1 1   1 1   1 1 │      TrialShardedSource: horizontal
//!            │ 2 2 2   2 2   2 2 │      slices (each shard owns a trial
//!            │ 2 2 2   2 2   2 2 │      window of every segment)
//!            └───────────────────┘
//! ```
//!
//! ## Layout contract
//!
//! Every shard must present the *same segments in the same order* (same
//! dimension tags), because segment `s` of the union is segment `s` of
//! every shard, restricted to that shard's trial window.  Construction
//! validates this by decoding each shard's per-segment tags through its
//! own dictionaries — code assignments may differ between shards (each
//! writer interns in its own order); only the decoded values must agree.
//! When shards disagree on segment *count* — the serve-while-ingesting
//! state, where one writer has committed a layer its peers have not yet —
//! the union clamps to the common committed prefix: a layer becomes
//! visible only once every shard has committed it, which is exactly when
//! its stitched loss vectors are complete.
//!
//! ## Exactness
//!
//! Results are **bit-identical** to a single store holding every
//! segment's full loss vectors: the scan already splits its trial blocks
//! at [`trial_cuts`](SegmentSource::trial_cuts) (so every slice access
//! lands inside one shard) and merges per-block partials with the exact
//! concatenation monoid
//! [`PartialAggregate::combine_adjacent`](crate::exec::PartialAggregate::combine_adjacent)
//! — shard boundaries are just more block boundaries, and block
//! boundaries provably never change results (see
//! `scan_is_block_count_invariant` in [`exec`](crate::exec)).  The
//! workspace's `tests/catalog_equivalence.rs` proves the property over
//! random trial splits.

use crate::dict::Dictionary;
use crate::dims::{LineOfBusiness, SegmentMeta};
use crate::store::SegmentSource;
use crate::{QueryError, Result};
use catrisk_eventgen::peril::{Peril, Region};
use catrisk_finterms::layer::LayerId;

/// N shards covering disjoint, adjacent trial windows, presented as one
/// [`SegmentSource`] over the concatenated trial axis.
///
/// Shards may be any mix of sources behind `S = dyn SegmentSource` (an
/// in-memory [`ResultStore`](crate::store::ResultStore) next to
/// persistent readers).  Shard order is window order: shard 0 covers
/// trials `[0, t_0)`, shard 1 covers `[t_0, t_0 + t_1)`, and so on — the
/// caller orders them (a catalog sorts by each store's persisted trial
/// offset).
pub struct TrialShardedSource<'a, S: SegmentSource + ?Sized> {
    shards: Vec<&'a S>,
    /// Cumulative trial offsets: `offsets[j]` is the global first trial
    /// of shard `j`; one extra trailing entry holds the total.
    offsets: Vec<usize>,
    /// Segments served: the common committed prefix across shards.
    prefix: usize,
}

impl<S: SegmentSource + ?Sized> std::fmt::Debug for TrialShardedSource<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialShardedSource")
            .field("shards", &self.shards.len())
            .field("segments", &self.prefix)
            .field("trials", &self.offsets.last().unwrap())
            .finish()
    }
}

/// Decodes one segment's dimension tags through the shard's own
/// dictionaries (code assignments differ between shards; values are what
/// must agree).
fn decoded_meta<S: SegmentSource + ?Sized>(shard: &S, segment: usize) -> SegmentMeta {
    SegmentMeta::new(
        *shard.layer_dict().value(shard.layer_codes()[segment]),
        *shard.peril_dict().value(shard.peril_codes()[segment]),
        *shard.region_dict().value(shard.region_codes()[segment]),
        *shard.lob_dict().value(shard.lob_codes()[segment]),
    )
}

impl<'a, S: SegmentSource + ?Sized> TrialShardedSource<'a, S> {
    /// Builds the trial-axis union over `shards`, in window order.
    ///
    /// The served segment set is the common committed prefix
    /// (`min(shard.num_segments())`); every shard's decoded dimension
    /// tags must agree over that prefix, or the shards do not describe
    /// the same portfolio and the union is rejected.
    pub fn new(shards: Vec<&'a S>) -> Result<Self> {
        let Some(first) = shards.first() else {
            return Err(QueryError::Store(
                "a trial-sharded source needs at least one shard".to_string(),
            ));
        };
        let prefix = shards
            .iter()
            .map(|shard| shard.num_segments())
            .min()
            .unwrap_or(0);
        for (index, shard) in shards.iter().enumerate().skip(1) {
            for segment in 0..prefix {
                let meta = decoded_meta(*shard, segment);
                let expected = decoded_meta(*first, segment);
                if meta != expected {
                    return Err(QueryError::Store(format!(
                        "trial shard {index} tags segment {segment} as {meta} but shard 0 \
                         tags it {expected}; trial shards must hold the same segments in \
                         the same order"
                    )));
                }
            }
        }
        Ok(Self::assemble(shards, prefix))
    }

    /// [`TrialShardedSource::new`] minus the O(segments × shards)
    /// meta-equality validation — for callers that already validated
    /// *these same shards in this same state* (a serving catalog
    /// memoizes validation success against the shards' generation
    /// stamps, so any visible change re-validates).  Still computes the
    /// prefix and window offsets; still rejects an empty shard list.
    pub fn with_validated_layout(shards: Vec<&'a S>) -> Result<Self> {
        if shards.is_empty() {
            return Err(QueryError::Store(
                "a trial-sharded source needs at least one shard".to_string(),
            ));
        }
        let prefix = shards
            .iter()
            .map(|shard| shard.num_segments())
            .min()
            .unwrap_or(0);
        Ok(Self::assemble(shards, prefix))
    }

    fn assemble(shards: Vec<&'a S>, prefix: usize) -> Self {
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        offsets.push(0);
        for shard in &shards {
            offsets.push(offsets.last().unwrap() + shard.num_trials());
        }
        TrialShardedSource {
            shards,
            offsets,
            prefix,
        }
    }

    /// Number of shards (trial windows).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards in window order.
    pub fn shards(&self) -> &[&'a S] {
        &self.shards
    }

    /// The global trial window `[start, end)` of each shard, in order.
    pub fn shard_windows(&self) -> Vec<(usize, usize)> {
        self.offsets.windows(2).map(|w| (w[0], w[1])).collect()
    }

    /// Maps a global trial to `(shard index, shard-local trial)`.
    ///
    /// # Panics
    /// If `trial` is at or past the total trial count.
    pub fn locate_trial(&self, trial: usize) -> (usize, usize) {
        assert!(
            trial < *self.offsets.last().unwrap(),
            "trial {trial} out of bounds ({} trials)",
            self.offsets.last().unwrap()
        );
        let shard = self.offsets.partition_point(|&start| start <= trial) - 1;
        (shard, trial - self.offsets[shard])
    }

    /// The dimension tags of one segment (as shard 0 decodes them; all
    /// shards agree by construction).
    pub fn meta(&self, segment: usize) -> SegmentMeta {
        assert!(segment < self.prefix, "segment {segment} out of bounds");
        decoded_meta(self.shards[0], segment)
    }

    /// The windowed slices of `segment` for either loss column; `year`
    /// picks the column.  The window must lie inside one shard.
    fn slice_in(&self, segment: usize, start: usize, end: usize, year: bool) -> &[f64] {
        if start == end {
            return &[];
        }
        let (shard, local_start) = self.locate_trial(start);
        let shard_end = self.offsets[shard + 1];
        assert!(
            end <= shard_end,
            "trial window {start}..{end} straddles the shard cut at {shard_end}; scans must \
             split blocks at trial_cuts()"
        );
        let local_end = local_start + (end - start);
        if year {
            self.shards[shard].year_losses_in(segment, local_start, local_end)
        } else {
            self.shards[shard].max_occ_losses_in(segment, local_start, local_end)
        }
    }
}

impl<S: SegmentSource + ?Sized> SegmentSource for TrialShardedSource<'_, S> {
    fn num_trials(&self) -> usize {
        *self.offsets.last().unwrap()
    }

    fn num_segments(&self) -> usize {
        self.prefix
    }

    /// Only a single-shard union is contiguous enough for a full-segment
    /// borrow; see the trait docs.
    ///
    /// # Panics
    /// When the union spans more than one shard — use
    /// [`year_losses_in`](SegmentSource::year_losses_in) with windows
    /// that respect [`trial_cuts`](SegmentSource::trial_cuts).
    fn year_losses(&self, segment: usize) -> &[f64] {
        assert!(
            self.shards.len() == 1,
            "a {}-shard TrialShardedSource has no contiguous full-segment slice; use the \
             windowed accessors",
            self.shards.len()
        );
        self.shards[0].year_losses(segment)
    }

    /// Same single-shard restriction as
    /// [`year_losses`](SegmentSource::year_losses).
    fn max_occ_losses(&self, segment: usize) -> &[f64] {
        assert!(
            self.shards.len() == 1,
            "a {}-shard TrialShardedSource has no contiguous full-segment slice; use the \
             windowed accessors",
            self.shards.len()
        );
        self.shards[0].max_occ_losses(segment)
    }

    fn year_losses_in(&self, segment: usize, start: usize, end: usize) -> &[f64] {
        self.slice_in(segment, start, end, true)
    }

    fn max_occ_losses_in(&self, segment: usize, start: usize, end: usize) -> &[f64] {
        self.slice_in(segment, start, end, false)
    }

    fn trial_cuts(&self) -> Vec<usize> {
        self.offsets[1..self.offsets.len() - 1].to_vec()
    }

    fn layer_codes(&self) -> &[u32] {
        &self.shards[0].layer_codes()[..self.prefix]
    }

    fn peril_codes(&self) -> &[u32] {
        &self.shards[0].peril_codes()[..self.prefix]
    }

    fn region_codes(&self) -> &[u32] {
        &self.shards[0].region_codes()[..self.prefix]
    }

    fn lob_codes(&self) -> &[u32] {
        &self.shards[0].lob_codes()[..self.prefix]
    }

    fn layer_dict(&self) -> &Dictionary<LayerId> {
        self.shards[0].layer_dict()
    }

    fn peril_dict(&self) -> &Dictionary<Peril> {
        self.shards[0].peril_dict()
    }

    fn region_dict(&self) -> &Dictionary<Region> {
        self.shards[0].region_dict()
    }

    fn lob_dict(&self) -> &Dictionary<LineOfBusiness> {
        self.shards[0].lob_dict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::query::{Aggregate, Basis, QueryBuilder};
    use crate::session::QuerySession;
    use crate::store::ResultStore;
    use crate::Dimension;
    use catrisk_engine::ylt::{TrialOutcome, YearLossTable};

    fn outcome(year: f64) -> TrialOutcome {
        TrialOutcome {
            year_loss: year,
            max_occurrence_loss: year * 0.5,
            nonzero_events: 0,
        }
    }

    fn seg(store: &mut ResultStore, layer: u32, peril: Peril, losses: &[f64]) {
        let outcomes = losses.iter().map(|&l| outcome(l)).collect();
        store
            .ingest(
                &YearLossTable::new(LayerId(layer), outcomes),
                SegmentMeta::new(
                    LayerId(layer),
                    peril,
                    Region::Europe,
                    LineOfBusiness::Property,
                ),
            )
            .unwrap();
    }

    /// One 6-trial reference store and its split into windows of 2, 3
    /// and 1 trials.  The shards intern perils in different orders than
    /// each other (by ingesting segments in the same order, they don't
    /// here — so one shard gets an extra uncommitted segment instead to
    /// exercise prefix clamping separately).
    fn split() -> (Vec<ResultStore>, ResultStore) {
        let year = [
            (0, Peril::Hurricane, [1.0, 0.0, 4.0, 2.0, 7.0, 0.0]),
            (1, Peril::Flood, [2.0, 5.0, 0.0, 1.0, 0.0, 3.0]),
            (2, Peril::Hurricane, [0.0, 1.0, 1.0, 0.0, 2.0, 9.0]),
        ];
        let mut whole = ResultStore::new(6);
        for (layer, peril, losses) in &year {
            seg(&mut whole, *layer, *peril, losses);
        }
        let windows = [(0usize, 2usize), (2, 5), (5, 6)];
        let shards = windows
            .iter()
            .map(|&(start, end)| {
                let mut shard = ResultStore::new(end - start);
                for (layer, peril, losses) in &year {
                    seg(&mut shard, *layer, *peril, &losses[start..end]);
                }
                shard
            })
            .collect();
        (shards, whole)
    }

    #[test]
    fn stitched_axis_layout() {
        let (shards, _) = split();
        let refs: Vec<&ResultStore> = shards.iter().collect();
        let sharded = TrialShardedSource::new(refs).unwrap();
        assert_eq!(sharded.num_shards(), 3);
        assert_eq!(SegmentSource::num_trials(&sharded), 6);
        assert_eq!(SegmentSource::num_segments(&sharded), 3);
        assert_eq!(sharded.shard_windows(), vec![(0, 2), (2, 5), (5, 6)]);
        assert_eq!(sharded.trial_cuts(), vec![2, 5]);
        assert_eq!(sharded.locate_trial(0), (0, 0));
        assert_eq!(sharded.locate_trial(2), (1, 0));
        assert_eq!(sharded.locate_trial(4), (1, 2));
        assert_eq!(sharded.locate_trial(5), (2, 0));
        // Windowed access inside each shard.
        assert_eq!(sharded.year_losses_in(0, 0, 2), &[1.0, 0.0]);
        assert_eq!(sharded.year_losses_in(0, 2, 5), &[4.0, 2.0, 7.0]);
        assert_eq!(sharded.year_losses_in(0, 5, 6), &[0.0]);
        assert_eq!(sharded.max_occ_losses_in(2, 2, 4), &[0.5, 0.0]);
        assert!(sharded.year_losses_in(1, 3, 3).is_empty());
        assert_eq!(sharded.meta(2).peril, Peril::Hurricane);
        assert_eq!(sharded.shards().len(), 3);
        assert!(format!("{sharded:?}").contains("TrialShardedSource"));
    }

    #[test]
    #[should_panic(expected = "straddles the shard cut")]
    fn windows_may_not_straddle_cuts() {
        let (shards, _) = split();
        let refs: Vec<&ResultStore> = shards.iter().collect();
        let sharded = TrialShardedSource::new(refs).unwrap();
        let _ = sharded.year_losses_in(0, 1, 3);
    }

    #[test]
    #[should_panic(expected = "no contiguous full-segment slice")]
    fn full_slice_access_panics_across_shards() {
        let (shards, _) = split();
        let refs: Vec<&ResultStore> = shards.iter().collect();
        let sharded = TrialShardedSource::new(refs).unwrap();
        let _ = sharded.year_losses(0);
    }

    #[test]
    fn trial_sharded_results_match_the_whole_store() {
        let (shards, whole) = split();
        let refs: Vec<&ResultStore> = shards.iter().collect();
        let sharded = TrialShardedSource::new(refs).unwrap();
        let queries = vec![
            QueryBuilder::new()
                .group_by(Dimension::Peril)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::Tvar { level: 0.9 })
                .build()
                .unwrap(),
            QueryBuilder::new()
                .with_perils([Peril::Hurricane])
                .aggregate(Aggregate::MaxLoss)
                .aggregate(Aggregate::EpCurve {
                    basis: Basis::Oep,
                    points: 3,
                })
                .build()
                .unwrap(),
            // A trial window straddling both shard cuts.
            QueryBuilder::new()
                .trials(1..6)
                .aggregate(Aggregate::Mean)
                .build()
                .unwrap(),
            // A loss-range predicate evaluated per shard-window block.
            QueryBuilder::new()
                .loss_at_least(3.0)
                .aggregate(Aggregate::Mean)
                .aggregate(Aggregate::StdDev)
                .build()
                .unwrap(),
        ];
        for query in &queries {
            assert_eq!(
                execute(&sharded, query).unwrap(),
                execute(&whole, query).unwrap(),
                "trial-sharded execution must be bit-identical to the whole store"
            );
        }
        assert_eq!(
            QuerySession::new(&sharded).run(&queries).unwrap(),
            QuerySession::new(&whole).run(&queries).unwrap(),
            "the fused batched session must stitch identically too"
        );
    }

    #[test]
    fn single_shard_union_is_transparent() {
        let (shards, _) = split();
        let solo = TrialShardedSource::new(vec![&shards[1]]).unwrap();
        assert!(solo.trial_cuts().is_empty());
        assert_eq!(solo.year_losses(0), shards[1].year_losses(0));
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&solo, &query).unwrap(),
            execute(&shards[1], &query).unwrap()
        );
    }

    #[test]
    fn segment_prefix_clamps_to_the_slowest_shard() {
        let (mut shards, whole) = split();
        // Shard 1's writer has committed an extra layer its peers have
        // not: the union must keep serving the common prefix only.
        seg(&mut shards[1], 9, Peril::Tornado, &[8.0, 8.0, 8.0]);
        let refs: Vec<&ResultStore> = shards.iter().collect();
        let sharded = TrialShardedSource::new(refs).unwrap();
        assert_eq!(SegmentSource::num_segments(&sharded), 3);
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&sharded, &query).unwrap(),
            execute(&whole, &query).unwrap(),
            "the uncommitted-everywhere layer must stay invisible"
        );
    }

    #[test]
    fn mismatched_layouts_and_empty_unions_are_rejected() {
        let (shards, _) = split();
        // A shard whose segment 0 is tagged differently.
        let mut liar = ResultStore::new(2);
        seg(&mut liar, 0, Peril::Earthquake, &[1.0, 0.0]);
        seg(&mut liar, 1, Peril::Flood, &[2.0, 5.0]);
        seg(&mut liar, 2, Peril::Hurricane, &[0.0, 1.0]);
        assert!(matches!(
            TrialShardedSource::new(vec![&shards[0], &liar]),
            Err(QueryError::Store(_))
        ));
        assert!(matches!(
            TrialShardedSource::<ResultStore>::new(vec![]),
            Err(QueryError::Store(_))
        ));
        assert!(matches!(
            TrialShardedSource::<ResultStore>::with_validated_layout(vec![]),
            Err(QueryError::Store(_))
        ));
    }

    #[test]
    fn prevalidated_construction_matches_a_fresh_build() {
        let (shards, whole) = split();
        let refs: Vec<&ResultStore> = shards.iter().collect();
        let sharded = TrialShardedSource::with_validated_layout(refs).unwrap();
        assert_eq!(sharded.shard_windows(), vec![(0, 2), (2, 5), (5, 6)]);
        let query = QueryBuilder::new()
            .group_by(Dimension::Peril)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&sharded, &query).unwrap(),
            execute(&whole, &query).unwrap()
        );
    }

    #[test]
    fn dynamic_shards_mix_source_types() {
        let (shards, whole) = split();
        let dyn_shards: Vec<&dyn SegmentSource> = shards
            .iter()
            .map(|shard| shard as &dyn SegmentSource)
            .collect();
        let sharded = TrialShardedSource::new(dyn_shards).unwrap();
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert_eq!(
            execute(&sharded, &query).unwrap(),
            execute(&whole, &query).unwrap()
        );
    }
}
