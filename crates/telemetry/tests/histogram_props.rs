//! Property tests for the log-bucketed histogram: merge algebra, the
//! documented quantile error bound against exact sorted-vector
//! percentiles, and loss-free concurrent recording.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use catrisk_telemetry::{Histogram, HistogramSnapshot};

/// Nearest-rank percentile over raw samples — the exact reference the
/// histogram estimate is judged against (same method as
/// `catrisk_riskserve::stats::percentile`).
fn exact_percentile(samples: &mut [u64], p: f64) -> u64 {
    samples.sort_unstable();
    if samples.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

/// Spreads `(mantissa, shift)` pairs across the whole log range so the
/// tests exercise big and small buckets alike, not just a dense band.
fn spread(pairs: Vec<(u64, u32)>) -> Vec<u64> {
    pairs
        .into_iter()
        .map(|(mantissa, shift)| mantissa << shift)
        .collect()
}

proptest! {
    #[test]
    fn merge_is_commutative_associative_and_lossless(
        a in vec((0u64..4096, 0u32..48), 0..60),
        b in vec((0u64..4096, 0u32..48), 0..60),
        c in vec((0u64..4096, 0u32..48), 0..60),
    ) {
        let (a, b, c) = (spread(a), spread(b), spread(c));
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // Commutative: a ∪ b == b ∪ a.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // Associative: (a ∪ b) ∪ c == a ∪ (b ∪ c).
        let mut ab_c = ab.clone();
        ab_c.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut a_bc = sa.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(&ab_c, &a_bc);

        // Lossless: merging is indistinguishable from recording the
        // concatenation directly.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&ab_c, &snapshot_of(&all));
        prop_assert_eq!(ab_c.count, all.len() as u64);
        let bucket_total: u64 = ab_c.buckets.iter().map(|&(_, n)| n).sum();
        prop_assert_eq!(bucket_total, all.len() as u64);
    }

    #[test]
    fn quantile_error_is_within_documented_bound(
        samples in vec((0u64..4096, 0u32..48), 1..80),
        p in 0.0f64..100.0,
    ) {
        let mut samples = spread(samples);
        let snap = snapshot_of(&samples);
        let estimate = snap.percentile(p);
        let exact = exact_percentile(&mut samples, p);
        // Documented bound: exact <= estimate <= exact + exact / 32, and
        // exact reporting below 64.
        prop_assert!(
            estimate >= exact,
            "estimate {estimate} undershoots exact {exact} at p{p}"
        );
        prop_assert!(
            estimate - exact <= exact / 32,
            "estimate {estimate} overshoots exact {exact} beyond 1/32 at p{p}"
        );
        if exact < 64 {
            prop_assert_eq!(estimate, exact);
        }
    }
}

#[test]
fn concurrent_recording_loses_no_counts() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let hist = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Mix of exact small values and log-range spread.
                    hist.record(((t * PER_THREAD + i) % 97) << (i % 40));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
    assert_eq!(bucket_total, THREADS * PER_THREAD);
}

#[test]
fn snapshot_survives_json_round_trip() {
    let samples: Vec<u64> = (0..500).map(|i| (i % 97) << (i % 30)).collect();
    let snap = snapshot_of(&samples);
    let json = serde_json::to_string(&snap).unwrap();
    let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}
