//! The Year Loss Table (YLT): the output of aggregate analysis.

use serde::{Deserialize, Serialize};

use catrisk_finterms::layer::LayerId;
use catrisk_simkit::stats;

/// The result of analysing one trial for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// The trial's aggregate loss net of all financial and layer terms —
    /// the "trial loss or the year loss" of paper line 19.
    pub year_loss: f64,
    /// The largest single-occurrence loss of the trial net of occurrence
    /// terms (but gross of aggregate terms), used for occurrence exceedance
    /// (OEP) curves.
    pub max_occurrence_loss: f64,
    /// Number of event occurrences in the trial that produced a non-zero
    /// loss for the layer.
    pub nonzero_events: u32,
}

/// The Year Loss Table of one layer: one outcome per trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct YearLossTable {
    /// The layer this table belongs to.
    pub layer_id: LayerId,
    outcomes: Vec<TrialOutcome>,
}

impl YearLossTable {
    /// Creates a YLT from per-trial outcomes.
    pub fn new(layer_id: LayerId, outcomes: Vec<TrialOutcome>) -> Self {
        Self { layer_id, outcomes }
    }

    /// Number of trials.
    pub fn num_trials(&self) -> usize {
        self.outcomes.len()
    }

    /// Per-trial outcomes in trial order.
    pub fn outcomes(&self) -> &[TrialOutcome] {
        &self.outcomes
    }

    /// Per-trial year losses in trial order.
    pub fn losses(&self) -> Vec<f64> {
        self.outcomes.iter().map(|o| o.year_loss).collect()
    }

    /// Per-trial maximum occurrence losses in trial order.
    pub fn max_occurrence_losses(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .map(|o| o.max_occurrence_loss)
            .collect()
    }

    /// Mean year loss across trials — the layer's expected annual loss under
    /// the simulation measure.  Shares its kernel with the query engine's
    /// `mean` aggregate.
    pub fn mean_loss(&self) -> f64 {
        stats::mean_or_zero(&self.losses())
    }

    /// Standard deviation of the year loss across trials (population
    /// formula, shared with the query engine's `stddev` aggregate).
    pub fn loss_std_dev(&self) -> f64 {
        stats::population_std_dev(&self.losses())
    }

    /// Fraction of trials with a non-zero year loss (the layer's annual
    /// attachment probability under the simulation measure).
    pub fn nonzero_fraction(&self) -> f64 {
        stats::positive_fraction(&self.losses())
    }

    /// Largest year loss across trials.
    pub fn max_loss(&self) -> f64 {
        stats::max_or_zero(&self.losses())
    }
}

/// The output of a full analysis: one YLT per layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalysisOutput {
    ylts: Vec<YearLossTable>,
}

impl AnalysisOutput {
    /// Wraps per-layer YLTs.
    pub fn new(ylts: Vec<YearLossTable>) -> Self {
        Self { ylts }
    }

    /// Number of layers analysed.
    pub fn num_layers(&self) -> usize {
        self.ylts.len()
    }

    /// The YLT of layer `i` (in analysis layer order).
    pub fn layer(&self, i: usize) -> &YearLossTable {
        &self.ylts[i]
    }

    /// All per-layer YLTs.
    pub fn layers(&self) -> &[YearLossTable] {
        &self.ylts
    }

    /// Portfolio-level year losses: the per-trial sum of all layers' year
    /// losses (all layers see the same trial, so summing within a trial is
    /// the correct portfolio roll-up).
    pub fn portfolio_losses(&self) -> Vec<f64> {
        if self.ylts.is_empty() {
            return vec![];
        }
        let trials = self.ylts[0].num_trials();
        let mut total = vec![0.0; trials];
        for ylt in &self.ylts {
            assert_eq!(ylt.num_trials(), trials, "layers must share the YET");
            for (acc, o) in total.iter_mut().zip(ylt.outcomes()) {
                *acc += o.year_loss;
            }
        }
        total
    }

    /// Sum of the layers' mean losses (= mean of the portfolio losses).
    pub fn portfolio_mean_loss(&self) -> f64 {
        self.ylts.iter().map(|y| y.mean_loss()).sum()
    }

    /// Maximum absolute difference between two outputs' year losses
    /// (0 when identical); used by the cross-engine equivalence tests.
    pub fn max_abs_difference(&self, other: &AnalysisOutput) -> f64 {
        assert_eq!(self.num_layers(), other.num_layers());
        let mut max_diff = 0.0f64;
        for (a, b) in self.ylts.iter().zip(other.ylts.iter()) {
            assert_eq!(a.num_trials(), b.num_trials());
            for (x, y) in a.outcomes().iter().zip(b.outcomes()) {
                max_diff = max_diff.max((x.year_loss - y.year_loss).abs());
                max_diff = max_diff.max((x.max_occurrence_loss - y.max_occurrence_loss).abs());
            }
        }
        max_diff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(loss: f64, max_occ: f64) -> TrialOutcome {
        TrialOutcome {
            year_loss: loss,
            max_occurrence_loss: max_occ,
            nonzero_events: u32::from(loss > 0.0),
        }
    }

    fn sample_ylt() -> YearLossTable {
        YearLossTable::new(
            LayerId(0),
            vec![
                outcome(0.0, 0.0),
                outcome(10.0, 8.0),
                outcome(30.0, 30.0),
                outcome(0.0, 0.0),
            ],
        )
    }

    #[test]
    fn ylt_statistics() {
        let ylt = sample_ylt();
        assert_eq!(ylt.num_trials(), 4);
        assert_eq!(ylt.losses(), vec![0.0, 10.0, 30.0, 0.0]);
        assert_eq!(ylt.max_occurrence_losses(), vec![0.0, 8.0, 30.0, 0.0]);
        assert!((ylt.mean_loss() - 10.0).abs() < 1e-12);
        assert!((ylt.nonzero_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(ylt.max_loss(), 30.0);
        assert!(ylt.loss_std_dev() > 0.0);
        assert_eq!(ylt.outcomes().len(), 4);
    }

    #[test]
    fn empty_ylt() {
        let ylt = YearLossTable::new(LayerId(1), vec![]);
        assert_eq!(ylt.mean_loss(), 0.0);
        assert_eq!(ylt.loss_std_dev(), 0.0);
        assert_eq!(ylt.nonzero_fraction(), 0.0);
        assert_eq!(ylt.max_loss(), 0.0);
    }

    #[test]
    fn portfolio_roll_up() {
        let a = sample_ylt();
        let b = YearLossTable::new(
            LayerId(1),
            vec![
                outcome(5.0, 5.0),
                outcome(0.0, 0.0),
                outcome(10.0, 10.0),
                outcome(1.0, 1.0),
            ],
        );
        let out = AnalysisOutput::new(vec![a, b]);
        assert_eq!(out.num_layers(), 2);
        assert_eq!(out.portfolio_losses(), vec![5.0, 10.0, 40.0, 1.0]);
        assert!((out.portfolio_mean_loss() - 14.0).abs() < 1e-12);
        assert_eq!(out.layer(1).layer_id, LayerId(1));
        assert_eq!(out.layers().len(), 2);
    }

    #[test]
    fn empty_output_portfolio() {
        let out = AnalysisOutput::new(vec![]);
        assert!(out.portfolio_losses().is_empty());
        assert_eq!(out.portfolio_mean_loss(), 0.0);
    }

    #[test]
    fn max_abs_difference_detects_changes() {
        let a = AnalysisOutput::new(vec![sample_ylt()]);
        let b = AnalysisOutput::new(vec![sample_ylt()]);
        assert_eq!(a.max_abs_difference(&b), 0.0);
        let mut modified = sample_ylt();
        modified = YearLossTable::new(
            modified.layer_id,
            modified
                .outcomes()
                .iter()
                .enumerate()
                .map(|(i, o)| if i == 2 { outcome(31.5, 30.0) } else { *o })
                .collect(),
        );
        let c = AnalysisOutput::new(vec![modified]);
        assert!((a.max_abs_difference(&c) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn serde_round_trip() {
        let out = AnalysisOutput::new(vec![sample_ylt()]);
        let json = serde_json::to_string(&out).unwrap();
        assert_eq!(serde_json::from_str::<AnalysisOutput>(&json).unwrap(), out);
    }
}
