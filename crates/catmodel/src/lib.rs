//! # catrisk-catmodel
//!
//! The catastrophe-model substrate: stage 1 of the analytical pipeline.
//!
//! "Catastrophe models are used to provide scientifically credible loss
//! estimates for individual risks" (paper §I) by combining a stochastic
//! event catalog with an exposure database through hazard, vulnerability and
//! financial modules.  The output consumed by the aggregate analysis is the
//! **Event Loss Table (ELT)**: the expected loss of every catalog event for
//! one exposure set.
//!
//! The vendor models used in production are proprietary and their exposure
//! databases are confidential, so this crate builds the synthetic
//! equivalent end-to-end:
//!
//! * [`exposure`] — locations (construction, occupancy, insured value,
//!   site-level financial terms) and exposure databases;
//! * [`generator`] — synthetic exposure portfolio generation;
//! * [`hazard`] — per-peril hazard footprints translating a catalog event's
//!   severity into a local intensity at each exposed location;
//! * [`vulnerability`] — damage-ratio curves by peril and construction
//!   class, with secondary uncertainty;
//! * [`financial`] — site-level deductibles/limits producing gross losses
//!   from ground-up losses;
//! * [`elt`] — the Event Loss Table and its metadata (financial terms `I`,
//!   currency);
//! * [`runner`] — the parallel model runner that produces one ELT per
//!   exposure set.
//!
//! What matters for reproducing the paper is not the physics but the *shape*
//! of the output: ELTs with 10 000–30 000 non-zero event losses out of a
//! catalog of up to ~2 million events, heavy-tailed loss severities, and
//! several ELTs per layer that share events with different losses.  The
//! synthetic chain above produces exactly that.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod elt;
pub mod exposure;
pub mod financial;
pub mod generator;
pub mod hazard;
pub mod runner;
pub mod vulnerability;

pub use elt::{EltRecord, EventLossTable};
pub use exposure::{Construction, ExposureDatabase, Location, Occupancy};
pub use generator::ExposureConfig;
pub use runner::{CatModel, CatModelConfig};

/// Errors produced by the catastrophe model substrate.
#[derive(Debug)]
pub enum ModelError {
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Result alias for catastrophe-model operations.
pub type Result<T> = std::result::Result<T, ModelError>;
