//! Direct access table: the paper's chosen ELT representation.

use crate::{EventId, EventLookup, LookupKind};

/// A dense array of losses indexed by event id.
///
/// "A direct access table is a highly sparse representation of an ELT, one
/// that provides very fast lookup performance at the cost of high memory
/// usage" (paper §III.B).  Every lookup is exactly one memory access, which
/// is why the paper selects this structure for a workload that performs
/// billions of random lookups with no locality of reference.
#[derive(Debug, Clone, PartialEq)]
pub struct DirectAccessTable {
    losses: Vec<f64>,
    entries: usize,
}

impl DirectAccessTable {
    /// Builds a table covering event ids `0..catalog_size` from sparse
    /// `(event, loss)` pairs.  Events not present in `pairs` have loss 0.
    ///
    /// Panics if any event id is outside the catalog.
    pub fn from_pairs(pairs: &[(EventId, f64)], catalog_size: u32) -> Self {
        let mut losses = vec![0.0f64; catalog_size as usize];
        for &(event, loss) in pairs {
            assert!(
                (event as usize) < losses.len(),
                "event id {event} outside catalog of size {catalog_size}"
            );
            losses[event as usize] = loss;
        }
        Self {
            losses,
            entries: pairs.len(),
        }
    }

    /// Size of the catalog this table covers (length of the dense array).
    pub fn catalog_size(&self) -> usize {
        self.losses.len()
    }

    /// Direct slice access for engines that want to bypass the trait object.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.losses
    }

    /// Unchecked-style fast path used by the hot loops; still bounds-checked
    /// in debug builds via the slice index.
    #[inline]
    pub fn get_fast(&self, event: EventId) -> f64 {
        self.losses[event as usize]
    }
}

impl EventLookup for DirectAccessTable {
    #[inline]
    fn get(&self, event: EventId) -> f64 {
        // Events beyond the catalog produce no loss rather than a panic so
        // that a YET built on a larger catalog degrades gracefully.
        self.losses.get(event as usize).copied().unwrap_or(0.0)
    }

    fn len(&self) -> usize {
        self.entries
    }

    fn memory_bytes(&self) -> usize {
        self.losses.len() * std::mem::size_of::<f64>()
    }

    fn kind(&self) -> LookupKind {
        LookupKind::Direct
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_present_and_absent() {
        let t = DirectAccessTable::from_pairs(&[(2, 5.0), (7, 1.5)], 10);
        assert_eq!(t.get(2), 5.0);
        assert_eq!(t.get(7), 1.5);
        assert_eq!(t.get(0), 0.0);
        assert_eq!(t.get(9), 0.0);
        assert_eq!(t.get(100), 0.0, "out-of-catalog event yields zero loss");
        assert_eq!(t.len(), 2);
        assert_eq!(t.catalog_size(), 10);
        assert_eq!(t.kind(), LookupKind::Direct);
    }

    #[test]
    fn get_fast_matches_get_inside_catalog() {
        let t = DirectAccessTable::from_pairs(&[(0, 1.0), (9, 2.0)], 10);
        for ev in 0..10u32 {
            assert_eq!(t.get(ev), t.get_fast(ev));
        }
        assert_eq!(t.as_slice().len(), 10);
    }

    #[test]
    fn memory_is_proportional_to_catalog() {
        let t = DirectAccessTable::from_pairs(&[(0, 1.0)], 2_000_000);
        assert_eq!(t.memory_bytes(), 2_000_000 * 8);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn empty_table() {
        let t = DirectAccessTable::from_pairs(&[], 4);
        assert!(t.is_empty());
        assert_eq!(t.get(3), 0.0);
    }

    #[test]
    #[should_panic(expected = "outside catalog")]
    fn event_outside_catalog_panics_on_construction() {
        DirectAccessTable::from_pairs(&[(10, 1.0)], 10);
    }
}
