//! Engine configuration.

use serde::{Deserialize, Serialize};

use catrisk_lookup::LookupKind;

/// Which engine implementation to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Single-threaded reference implementation.
    Sequential,
    /// Multi-core implementation (one logical thread per trial).
    Parallel,
    /// Blocked/chunked multi-core implementation.
    Chunked,
    /// Basic kernel on the simulated many-core device (`catrisk-gpusim`).
    GpuBasic,
    /// Optimised/chunked kernel on the simulated many-core device.
    GpuChunked,
}

impl EngineKind {
    /// All engine kinds in the order used by the Fig. 6a summary.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Sequential,
        EngineKind::Parallel,
        EngineKind::Chunked,
        EngineKind::GpuBasic,
        EngineKind::GpuChunked,
    ];

    /// Short label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::Sequential => "sequential",
            EngineKind::Parallel => "parallel-cpu",
            EngineKind::Chunked => "chunked-cpu",
            EngineKind::GpuBasic => "gpu-basic",
            EngineKind::GpuChunked => "gpu-chunked",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Configuration shared by the CPU engine variants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Which implementation to run.
    pub kind: EngineKind,
    /// Lookup structure used to represent the ELTs.
    pub lookup: LookupKind,
    /// Number of worker threads (0 = one per logical CPU).  Ignored by the
    /// sequential engine.
    pub threads: usize,
    /// Number of logical work items per worker thread (the paper's
    /// "threads per core" oversubscription sweep, Fig. 3b).  1 = plain
    /// work-stealing.
    pub work_items_per_thread: usize,
    /// Events processed per chunk by the chunked engine.
    pub chunk_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            kind: EngineKind::Parallel,
            lookup: LookupKind::Direct,
            threads: 0,
            work_items_per_thread: 1,
            chunk_size: 64,
        }
    }
}

impl EngineConfig {
    /// Configuration of the sequential reference engine.
    pub fn sequential() -> Self {
        Self {
            kind: EngineKind::Sequential,
            threads: 1,
            ..Default::default()
        }
    }

    /// Configuration of the parallel engine with an explicit thread count.
    pub fn parallel(threads: usize) -> Self {
        Self {
            kind: EngineKind::Parallel,
            threads,
            ..Default::default()
        }
    }

    /// Configuration of the chunked engine with an explicit chunk size.
    pub fn chunked(chunk_size: usize) -> Self {
        Self {
            kind: EngineKind::Chunked,
            chunk_size,
            ..Default::default()
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> crate::Result<()> {
        if self.work_items_per_thread == 0 {
            return Err(crate::EngineError::InvalidInput(
                "work_items_per_thread must be at least 1".into(),
            ));
        }
        if self.kind == EngineKind::Chunked && self.chunk_size == 0 {
            return Err(crate::EngineError::InvalidInput(
                "chunk_size must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_unique_and_display() {
        let mut labels: Vec<&str> = EngineKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), EngineKind::ALL.len());
        assert_eq!(EngineKind::GpuChunked.to_string(), "gpu-chunked");
    }

    #[test]
    fn constructors_set_kind() {
        assert_eq!(EngineConfig::sequential().kind, EngineKind::Sequential);
        assert_eq!(EngineConfig::parallel(4).threads, 4);
        assert_eq!(EngineConfig::chunked(16).chunk_size, 16);
        assert_eq!(EngineConfig::default().lookup, LookupKind::Direct);
    }

    #[test]
    fn validation() {
        assert!(EngineConfig::default().validate().is_ok());
        let bad = EngineConfig {
            work_items_per_thread: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = EngineConfig {
            kind: EngineKind::Chunked,
            chunk_size: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let c = EngineConfig::chunked(8);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<EngineConfig>(&json).unwrap(), c);
    }
}
