//! # catrisk-riskstore
//!
//! Persistent columnar Year Loss Table stores: a versioned on-disk format
//! so simulation results outlive the process that produced them, the
//! premise of QuPARA-style ad-hoc analysis (an analyst fleet querying
//! previously materialised portfolio results).
//!
//! [`StoreWriter`] spills segments — one YLT tagged with its dimensions —
//! into an append-only file; [`StoreReader`] reopens it, verifies every
//! checksum, `mmap(2)`s the committed loss columns shared and read-only
//! (falling back to one loaded 8-aligned heap region where maps are
//! unavailable — see [`RegionBacking`]), and implements
//! `catrisk-riskquery`'s
//! [`SegmentSource`](catrisk_riskquery::SegmentSource), so the parallel
//! query scan reads column slices borrowed straight from the page cache —
//! no per-query deserialisation of loss pages into fresh `Vec`s, and N
//! serving processes over the same shard files share one set of pages.
//! Incremental ingest is first-class: [`StoreWriter::append_segment`] adds
//! segments to an existing store and [`StoreWriter::commit`] publishes
//! them; a reader opening the file mid-write always sees the latest
//! *committed* prefix, never a torn state.
//!
//! ## On-disk layout (format version 1)
//!
//! This section is the format contract: a reader can be reimplemented from
//! it alone.  All integers are **little-endian**; all CRCs are CRC-32
//! (IEEE/zlib polynomial, as produced by [`format::crc32`]).  Loss values
//! are IEEE-754 `f64` stored as their little-endian bit pattern.  The file
//! is **append-only** except for the 128-byte header region, whose two
//! slots are alternately re-patched on each commit.
//!
//! ```text
//! offset  size  field
//! ------  ----  -----------------------------------------------------------
//! HEADER REGION (128 bytes, fixed, at offset 0): two 64-byte slots.
//!   Readers validate both slots independently and use the valid slot
//!   with the highest commit_seq; the writer of commit N re-writes only
//!   slot N mod 2, so a torn header write can damage at most the stale
//!   slot and the previous commit always survives.  Each slot:
//!      0     8  magic "CRSKYLT1"
//!      8     4  format version (1)
//!     12     4  page_trials: trials per checksummed loss page (> 0)
//!     16     8  num_trials: trials per segment column
//!     24     8  footer_offset: offset of the latest committed footer
//!               (0 = nothing committed yet: a valid, empty store)
//!     32     8  footer_len: byte length of that footer
//!     40     8  commit_seq: monotonic commit counter, echoed by the footer
//!     48     8  trial_offset: first global trial this store covers — the
//!               store holds trials [trial_offset, trial_offset+num_trials)
//!               of a larger logical trial axis (0 = self-contained store;
//!               this byte range was a zeroed reserved field before
//!               trial-axis sharding, so older files decode as offset 0)
//!     56     4  CRC32 of slot bytes [0, 56)
//!     60     4  zero padding
//!
//! SEGMENT DATA (8-aligned, between header region and footer(s))
//!   Per segment, at the 8-aligned offset recorded in its directory entry:
//!     year_loss column:     num_trials × 8 bytes (f64 LE)
//!     max_occ_loss column:  num_trials × 8 bytes, immediately after
//!   Each column is divided into pages of page_trials trials (the last
//!   page holds the remainder); pages have no inline framing — their CRCs
//!   live in the footer directory, keeping the data region raw f64s that
//!   can be mapped and scanned in place.
//!
//! FOOTER (at footer_offset, footer_len bytes)
//!      0     8  footer magic "CRSKFTR1"
//!      8     8  commit_seq (must equal the header's)
//!     16     8  num_segments
//!   4 × dictionary page, dimension order layer, peril, region, lob:
//!            4  count
//!    count × 4  raw values in code order (layer: LayerId.0;
//!               peril/region/lob: the enum discriminants fixed by
//!               footer::encode_peril & co.)
//!            4  CRC32 of the page (count + values bytes)
//!   4 × code column, same dimension order:
//!   num_segments × 4  per-segment dictionary codes
//!            4  CRC32 of the column bytes
//!   num_segments × directory entry, segment order:
//!            8  data_offset: absolute offset of the year column
//!    ppc  × 4  CRC32 per year-loss page   (ppc = ceil(num_trials /
//!    ppc  × 4  CRC32 per occurrence page         page_trials))
//!            4  CRC32 of all preceding footer bytes
//! ```
//!
//! ## Commit protocol (incremental ingest)
//!
//! [`StoreWriter::append_segment`] writes loss pages at the end of the
//! file, starting *after* the latest committed footer — committed bytes
//! are never overwritten.  [`StoreWriter::commit`] then
//!
//! 1. flushes and syncs the appended data pages,
//! 2. writes a fresh footer (covering *all* committed segments) at the
//!    8-aligned end of file and syncs it,
//! 3. writes a new 64-byte header slot — `footer_offset` / `footer_len` /
//!    `commit_seq` — into slot `commit_seq mod 2` and syncs again.
//!
//! A valid header slot therefore always points at a fully-written footer
//! whose directory references fully-written data pages: the per-page CRCs
//! in the footer are the ingest watermarks.  A reader racing a writer sees
//! either the old commit or the new one — both consistent prefixes.
//! Superseded footers become dead space inside the data region (directory
//! offsets make the gaps transparent); store files are write-mostly, so
//! trading a few hundred bytes per commit for never invalidating a
//! concurrent reader is the right call.  A crash at any point leaves the
//! previous commit reachable: steps 1–2 only append, and a torn slot write
//! in step 3 damages the *stale* slot while the other slot still points at
//! the previous footer.  [`StoreWriter::open_append`] truncates any bytes
//! past the committed footer before resuming.
//!
//! ## Refresh protocol (serving while ingesting)
//!
//! The append-only commit protocol above is what makes *live readers*
//! possible: a [`StoreReader`] opened on commit *N* can later pick up
//! commit *N+k* **in place** with [`StoreReader::refresh`], without
//! invalidating any slice a concurrent scan previously borrowed rules
//! around (refresh takes `&mut self`, so a serving layer swaps behind a
//! lock between scans).  What a reader observes across commits:
//!
//! 1. **Monotonic committed prefixes.**  Every snapshot the reader ever
//!    serves is a prefix of every later one: segment `k` holds the same
//!    losses and the same tags forever, refreshes only append segments
//!    `n..m`.  Dictionaries grow append-only too, so existing dimension
//!    codes never change meaning.
//! 2. **Incremental verification.**  A refresh re-reads the 128-byte
//!    dual-slot header; if the commit counter is unchanged it stops (the
//!    cheap path — [`StoreReader::peek_commit_seq`] exposes the same
//!    probe without a reader).  Otherwise it decodes the new footer,
//!    checks that it extends the observed prefix (dictionary order, code
//!    columns, directory offsets), and loads + CRC-verifies **only the
//!    new segments' pages** — through the same verification path a cold
//!    [`StoreReader::open`] uses.
//! 3. **Generation stamp.**  [`StoreReader::commit_seq`] advances exactly
//!    when the visible data changes.  This is the cache-invalidation
//!    rule serving layers rely on: a per-query result cache keyed on
//!    `(query, commit_seq of every shard)` is hit-correct — a shard's
//!    entries go stale precisely when its refresh observes a new commit,
//!    and never otherwise.
//! 4. **Full-reload fallback.**  If the file no longer extends the
//!    observed prefix (truncated, replaced, rewritten), refresh falls
//!    back to a complete reopen; on any error the reader keeps serving
//!    its current snapshot unchanged.
//!
//! ## Version negotiation
//!
//! The header carries the single format version. Readers reject files
//! whose version differs from [`format::VERSION`] with
//! [`StoreError::UnsupportedVersion`] (and unknown magic with
//! [`StoreError::BadMagic`]) — within a major version the layout above is
//! frozen; evolutions bump the version and must keep decoding version-1
//! files.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod commit;
pub mod footer;
pub mod format;
pub mod ingest;
mod mmap;
pub mod reader;
pub mod writer;

pub use ingest::StreamIngestor;
pub use reader::{RegionBacking, StoreReader};
pub use writer::{StoreOptions, StoreWriter};

/// Errors produced while writing, opening or validating store files.
///
/// Every corruption mode a reader can encounter maps to a typed variant —
/// malformed files never panic.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a store file.
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The file's format version is not supported by this reader.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A checksummed region (header, footer, dictionary page, code column
    /// or loss page) failed CRC validation.
    ChecksumMismatch {
        /// Which region failed.
        what: String,
    },
    /// The file ends before a region it promises to contain.
    Truncated {
        /// Which region was cut short.
        what: String,
    },
    /// Structurally invalid contents behind valid checksums (impossible
    /// offsets, unknown dimension values, dangling codes...).
    Corrupt(String),
    /// The caller handed the writer inconsistent data (wrong column
    /// length, mismatched layer count...).
    InvalidArgument(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(err) => write!(f, "store i/o error: {err}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a catrisk store file (magic {found:02x?})")
            }
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported store format version {found} (this build reads version {supported})"
            ),
            StoreError::ChecksumMismatch { what } => {
                write!(f, "checksum mismatch in {what}")
            }
            StoreError::Truncated { what } => write!(f, "store file truncated: {what}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store file: {msg}"),
            StoreError::InvalidArgument(msg) => write!(f, "invalid store argument: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(err: std::io::Error) -> Self {
        StoreError::Io(err)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;
