//! Layers: the unit of analysis of the aggregate risk engine.
//!
//! A layer `L = (E, T)` covers a collection of Event Loss Tables `E`
//! (typically 3–30 of them, paper §II.A) under a set of layer terms `T`.
//! Within an [`AnalysisInput`](https://docs.rs/catrisk-engine) the covered
//! ELTs are referenced by index into the analysis' ELT list.

use serde::{Deserialize, Serialize};

use crate::terms::{FinancialTerms, LayerTerms};
use crate::treaty::Treaty;
use crate::{Result, TermsError};

/// Identifier of a layer within a portfolio or analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LayerId(pub u32);

impl std::fmt::Display for LayerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A reinsurance layer: a set of covered ELTs plus layer terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Layer {
    /// Identifier of the layer.
    pub id: LayerId,
    /// Indices of the covered ELTs within the analysis' ELT list.
    pub elt_indices: Vec<usize>,
    /// Layer terms `T` applied to the combined losses of the covered ELTs.
    pub terms: LayerTerms,
    /// Participation share of this layer in `[0, 1]` (1.0 = 100% placement).
    pub participation: f64,
    /// Optional human-readable description (treaty wording).
    pub description: String,
}

impl Layer {
    /// Creates a layer covering `elt_indices` with the given terms and 100%
    /// participation.
    pub fn new(id: LayerId, elt_indices: Vec<usize>, terms: LayerTerms) -> Result<Self> {
        if elt_indices.is_empty() {
            return Err(TermsError::EmptyLayer);
        }
        Ok(Self {
            id,
            elt_indices,
            terms,
            participation: 1.0,
            description: String::new(),
        })
    }

    /// Number of ELTs covered by this layer.
    pub fn num_elts(&self) -> usize {
        self.elt_indices.len()
    }

    /// Validates the layer against the number of ELTs available in the
    /// analysis input.
    pub fn validate(&self, available_elts: usize) -> Result<()> {
        if self.elt_indices.is_empty() {
            return Err(TermsError::EmptyLayer);
        }
        if !(0.0..=1.0).contains(&self.participation) {
            return Err(TermsError::InvalidParameter {
                field: "participation",
                value: self.participation,
            });
        }
        for &i in &self.elt_indices {
            if i >= available_elts {
                return Err(TermsError::InvalidParameter {
                    field: "elt_indices",
                    value: i as f64,
                });
            }
        }
        Ok(())
    }
}

/// Builder for [`Layer`] providing a fluent construction API.
#[derive(Debug, Clone)]
pub struct LayerBuilder {
    id: LayerId,
    elt_indices: Vec<usize>,
    terms: LayerTerms,
    participation: f64,
    description: String,
    elt_financial_terms: Vec<FinancialTerms>,
}

impl LayerBuilder {
    /// Starts building a layer with the given identifier.
    pub fn new(id: LayerId) -> Self {
        Self {
            id,
            elt_indices: Vec::new(),
            terms: LayerTerms::unlimited(),
            participation: 1.0,
            description: String::new(),
            elt_financial_terms: Vec::new(),
        }
    }

    /// Adds one covered ELT by index.
    pub fn covering(mut self, elt_index: usize) -> Self {
        self.elt_indices.push(elt_index);
        self
    }

    /// Adds a contiguous range of covered ELT indices.
    pub fn covering_range(mut self, range: std::ops::Range<usize>) -> Self {
        self.elt_indices.extend(range);
        self
    }

    /// Sets the layer terms directly.
    pub fn with_terms(mut self, terms: LayerTerms) -> Self {
        self.terms = terms;
        self
    }

    /// Sets the layer terms (and description) from a treaty structure.
    pub fn with_treaty(mut self, treaty: Treaty) -> Self {
        self.terms = treaty.layer_terms();
        self.description = treaty.describe();
        self
    }

    /// Sets the participation share.
    pub fn with_participation(mut self, participation: f64) -> Self {
        self.participation = participation;
        self
    }

    /// Sets a human-readable description.
    pub fn with_description(mut self, description: impl Into<String>) -> Self {
        self.description = description.into();
        self
    }

    /// Records the financial terms of a covered ELT (optional; callers that
    /// keep financial terms with the ELTs themselves can ignore this).
    pub fn with_elt_terms(mut self, terms: FinancialTerms) -> Self {
        self.elt_financial_terms.push(terms);
        self
    }

    /// Financial terms collected so far (parallel to the covered ELTs when
    /// used consistently).
    pub fn elt_terms(&self) -> &[FinancialTerms] {
        &self.elt_financial_terms
    }

    /// Finalises the layer.
    pub fn build(self) -> Result<Layer> {
        if self.elt_indices.is_empty() {
            return Err(TermsError::EmptyLayer);
        }
        if !(0.0..=1.0).contains(&self.participation) {
            return Err(TermsError::InvalidParameter {
                field: "participation",
                value: self.participation,
            });
        }
        Ok(Layer {
            id: self.id,
            elt_indices: self.elt_indices,
            terms: self.terms,
            participation: self.participation,
            description: self.description,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_construction_and_validation() {
        let layer = Layer::new(LayerId(1), vec![0, 1, 2], LayerTerms::unlimited()).unwrap();
        assert_eq!(layer.num_elts(), 3);
        layer.validate(3).unwrap();
        assert!(
            layer.validate(2).is_err(),
            "index 2 out of bounds for 2 ELTs"
        );
        assert_eq!(
            Layer::new(LayerId(1), vec![], LayerTerms::unlimited()),
            Err(TermsError::EmptyLayer)
        );
    }

    #[test]
    fn layer_id_display() {
        assert_eq!(LayerId(7).to_string(), "L7");
    }

    #[test]
    fn builder_fluent_construction() {
        let layer = LayerBuilder::new(LayerId(3))
            .covering(5)
            .covering_range(10..13)
            .with_treaty(Treaty::cat_xl(1.0e6, 9.0e6))
            .with_participation(0.8)
            .build()
            .unwrap();
        assert_eq!(layer.elt_indices, vec![5, 10, 11, 12]);
        assert_eq!(layer.terms.occ_retention, 1.0e6);
        assert_eq!(layer.terms.occ_limit, 9.0e6);
        assert_eq!(layer.participation, 0.8);
        assert!(layer.description.contains("Cat XL"));
    }

    #[test]
    fn builder_rejects_empty_and_bad_participation() {
        assert_eq!(
            LayerBuilder::new(LayerId(0)).build(),
            Err(TermsError::EmptyLayer)
        );
        let err = LayerBuilder::new(LayerId(0))
            .covering(0)
            .with_participation(1.5)
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            TermsError::InvalidParameter {
                field: "participation",
                ..
            }
        ));
    }

    #[test]
    fn builder_collects_elt_terms() {
        let b = LayerBuilder::new(LayerId(0))
            .covering(0)
            .with_elt_terms(FinancialTerms::pass_through())
            .with_elt_terms(FinancialTerms::new(1.0, 2.0, 0.5, 1.0).unwrap());
        assert_eq!(b.elt_terms().len(), 2);
        assert!(b
            .with_description("custom")
            .build()
            .unwrap()
            .description
            .contains("custom"));
    }

    #[test]
    fn participation_validation_in_validate() {
        let mut layer = Layer::new(LayerId(1), vec![0], LayerTerms::unlimited()).unwrap();
        layer.participation = -0.1;
        assert!(layer.validate(1).is_err());
    }

    #[test]
    fn serde_round_trip() {
        let layer = Layer::new(
            LayerId(9),
            vec![1, 4],
            LayerTerms::per_occurrence(1.0, 2.0).unwrap(),
        )
        .unwrap();
        let json = serde_json::to_string(&layer).unwrap();
        let back: Layer = serde_json::from_str(&json).unwrap();
        assert_eq!(layer, back);
    }
}
