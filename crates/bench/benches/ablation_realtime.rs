//! Ablation — real-time pricing latency vs trial count (paper §IV).
//!
//! The paper argues 50 K trials are enough for a sub-second interactive
//! quote; this benchmark measures the end-to-end quote latency (engine run +
//! pricing) at several trial counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use catrisk_bench::{build_input, WorkloadSpec};
use catrisk_finterms::treaty::Treaty;
use catrisk_portfolio::pricing::PricingConfig;
use catrisk_portfolio::realtime::RealTimeQuoter;

fn workload() -> WorkloadSpec {
    WorkloadSpec {
        num_events: 100_000,
        trials: 50_000,
        events_per_trial: 200.0,
        num_elts: 6,
        elt_records: 10_000,
        num_layers: 1,
        elts_per_layer: 6,
        ..WorkloadSpec::bench_scale()
    }
}

fn quote_latency(c: &mut Criterion) {
    let input = build_input(&workload());
    let mut group = c.benchmark_group("ablation_realtime_quote");
    group.sample_size(10);
    for trials in [1_000usize, 5_000, 10_000, 50_000] {
        let quoter =
            RealTimeQuoter::new(&input, Some(trials), PricingConfig::default()).expect("quoter");
        group.bench_with_input(BenchmarkId::from_parameter(trials), &quoter, |b, quoter| {
            b.iter(|| {
                quoter
                    .quote(Treaty::cat_xl(20.0e6, 60.0e6), &[0, 1, 2, 3, 4, 5])
                    .expect("quote")
            })
        });
    }
    group.finish();
}

criterion_group!(ablation, quote_latency);
criterion_main!(ablation);
