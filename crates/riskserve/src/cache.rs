//! The generation-keyed caches: whole query results, and per-shard
//! partial aggregates for trial-sharded catalogs.
//!
//! Keys are whole [`Query`] values — `Query` is `Eq + Hash` with a total,
//! NaN-free float treatment precisely so these maps can neither collide
//! nor miss — and every entry remembers the generation stamps (see
//! [`SourceProvider::with_source`](crate::source::SourceProvider::with_source))
//! it was computed under.  A lookup hits only when the stamps match
//! exactly, so a shard's entries go stale precisely when its refresh
//! observes a new commit — cached replies are always bit-identical to a
//! fresh scan of the current snapshot, never a stale approximation.
//!
//! [`ResultCache`] keys `(query, whole generation vector)`: any shard's
//! refresh retires the entry, because the final result mixes every
//! shard's data.  [`PartialCache`] is the per-shard refinement — on
//! *either* axis: it keys `(query, shard)` and stamps each entry with
//! only *that shard's* generation plus a segment-count check (on the
//! trial axis the union's committed prefix, on the segment axis the
//! shard's own count), so a refresh of one shard leaves every other
//! shard's cached partial valid — the whole point of caching partials
//! instead of results.  Entries hand out [`Arc`]s: a hit is a pointer
//! bump, and publishing a freshly scanned partial shares the same
//! allocation the stitch is about to read.

use std::collections::HashMap;
use std::sync::Arc;

use catrisk_riskquery::{Query, QueryResult, TrialPartial};

/// One cached result and the snapshot it is valid for.
#[derive(Debug)]
struct CacheEntry {
    generations: Vec<u64>,
    result: QueryResult,
    last_used: u64,
}

/// A bounded result cache keyed on `(Query, generation vector)`.
#[derive(Debug, Default)]
pub(crate) struct ResultCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<Query, CacheEntry>,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up `query` under the current `generations`.  A stale entry
    /// (any shard refreshed since it was cached) is evicted on sight.
    pub fn get(&mut self, query: &Query, generations: &[u64]) -> Option<QueryResult> {
        self.tick += 1;
        match self.entries.get_mut(query) {
            Some(entry) if entry.generations == generations => {
                entry.last_used = self.tick;
                Some(entry.result.clone())
            }
            Some(_) => {
                self.entries.remove(query);
                None
            }
            None => None,
        }
    }

    /// Caches `result` for `query` under `generations`, evicting the
    /// least-recently-used entry when full.
    pub fn insert(&mut self, query: Query, generations: &[u64], result: QueryResult) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&query) {
            if let Some(coldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(query, _)| query.clone())
            {
                self.entries.remove(&coldest);
            }
        }
        self.entries.insert(
            query,
            CacheEntry {
                generations: generations.to_vec(),
                result,
                last_used: self.tick,
            },
        );
    }

    /// Live entries (diagnostics).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

/// One cached per-shard partial and the per-shard snapshot it is valid
/// for.
#[derive(Debug)]
struct PartialEntry {
    /// The owning shard's generation stamp when the partial was scanned.
    generation: u64,
    /// The segment-count half of the key contract.  Trial axis: the
    /// union's committed segment prefix the producing plan saw — when a
    /// lagging shard catches up and the prefix grows, *every* shard's
    /// partial covers too few segments, even shards whose own stamp did
    /// not move.  Segment axis: the shard's own segment count.
    num_segments: usize,
    partial: Arc<TrialPartial>,
    last_used: u64,
}

/// A bounded per-shard partial-aggregate cache keyed on
/// `(Query, shard index)`, validated against
/// `(that shard's generation, union segment prefix)`.
///
/// This is what turns a single-shard refresh from "invalidate every
/// cached answer" into "rescan one trial window": the server re-combines
/// the surviving partials with the freshly scanned one through the exact
/// adjacent-window monoid, bit-identical to a full rescan.
#[derive(Debug, Default)]
pub(crate) struct PartialCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<(Query, usize), PartialEntry>,
}

impl PartialCache {
    /// A cache holding at most `capacity` per-shard partials (0 disables
    /// partial caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up the partial of `query` on `shard` under the shard's
    /// current `generation` and the axis's segment-count check.  A stale
    /// entry is evicted on sight.  The returned `Arc` shares the cached
    /// allocation — a hit never copies the loss vectors.
    pub fn get(
        &mut self,
        query: &Query,
        shard: usize,
        generation: u64,
        num_segments: usize,
    ) -> Option<Arc<TrialPartial>> {
        self.tick += 1;
        // The tuple key forces one Query clone per probe; queries are
        // cheap to clone (Arc-free but small vectors) and probes are
        // per-miss-per-shard, so this stays off the result-cache-hit
        // fast path.
        let key = (query.clone(), shard);
        match self.entries.get_mut(&key) {
            Some(entry) if entry.generation == generation && entry.num_segments == num_segments => {
                entry.last_used = self.tick;
                Some(Arc::clone(&entry.partial))
            }
            Some(_) => {
                self.entries.remove(&key);
                None
            }
            None => None,
        }
    }

    /// Caches one shard's partial, evicting the least-recently-used
    /// entry when full.  Takes an `Arc` so the caller publishes the same
    /// allocation it is about to stitch from, without a copy.
    pub fn insert(
        &mut self,
        query: &Query,
        shard: usize,
        generation: u64,
        num_segments: usize,
        partial: Arc<TrialPartial>,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        let key = (query.clone(), shard);
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            if let Some(coldest) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            {
                self.entries.remove(&coldest);
            }
        }
        self.entries.insert(
            key,
            PartialEntry {
                generation,
                num_segments,
                partial,
                last_used: self.tick,
            },
        );
    }

    /// Drops every shard's entry for `query` across `shards` shards —
    /// the self-heal path after a failed stitch: entries that cannot
    /// combine disagree with each other, so none of them can be trusted
    /// and the next execution must rescan from scratch.
    pub fn purge(&mut self, query: &Query, shards: usize) {
        for shard in 0..shards {
            self.entries.remove(&(query.clone(), shard));
        }
    }

    /// Live entries (diagnostics).
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use catrisk_riskquery::prelude::*;

    fn query(points: usize) -> Query {
        QueryBuilder::new()
            .aggregate(Aggregate::EpCurve {
                basis: Basis::Aep,
                points: points + 2,
            })
            .build()
            .unwrap()
    }

    fn result(trials: usize) -> QueryResult {
        QueryResult {
            group_by: vec![],
            aggregates: vec![Aggregate::Mean],
            trials,
            rows: vec![],
        }
    }

    #[test]
    fn hits_only_under_matching_generations() {
        let mut cache = ResultCache::new(4);
        assert!(cache.get(&query(1), &[1, 1]).is_none());
        cache.insert(query(1), &[1, 1], result(10));
        assert_eq!(cache.get(&query(1), &[1, 1]), Some(result(10)));
        // One shard refreshed: the entry is stale, and evicted on sight.
        assert!(cache.get(&query(1), &[1, 2]).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(query(1), &[0], result(1));
        cache.insert(query(2), &[0], result(2));
        // Touch query(1) so query(2) is the cold one.
        assert!(cache.get(&query(1), &[0]).is_some());
        cache.insert(query(3), &[0], result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&query(1), &[0]).is_some());
        assert!(cache.get(&query(2), &[0]).is_none(), "LRU entry evicted");
        assert!(cache.get(&query(3), &[0]).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = ResultCache::new(0);
        cache.insert(query(1), &[0], result(1));
        assert!(cache.get(&query(1), &[0]).is_none());
        assert_eq!(cache.len(), 0);
    }

    fn partial(window: (usize, usize)) -> TrialPartial {
        TrialPartial {
            keys: vec![vec![]],
            segment_counts: vec![1],
            window,
            aggregate: catrisk_riskquery::PartialAggregate::identity(1, window.1 - window.0),
        }
    }

    #[test]
    fn partials_hit_per_shard_generation_only() {
        let mut cache = PartialCache::new(8);
        cache.insert(&query(1), 0, 7, 3, Arc::new(partial((0, 2))));
        cache.insert(&query(1), 1, 9, 3, Arc::new(partial((2, 5))));
        // Shard 1's generation moves: only shard 1's entry goes stale.
        assert_eq!(
            cache.get(&query(1), 0, 7, 3).as_deref(),
            Some(&partial((0, 2))),
            "untouched shard must keep hitting"
        );
        assert!(cache.get(&query(1), 1, 10, 3).is_none());
        assert_eq!(cache.len(), 1, "stale entries are evicted on sight");
    }

    #[test]
    fn partial_hits_share_the_cached_allocation() {
        let mut cache = PartialCache::new(8);
        let published = Arc::new(partial((0, 2)));
        cache.insert(&query(1), 0, 7, 3, Arc::clone(&published));
        let hit = cache.get(&query(1), 0, 7, 3).expect("hit");
        assert!(
            Arc::ptr_eq(&published, &hit),
            "a hit must be a pointer bump, not a copy"
        );
    }

    #[test]
    fn partials_go_stale_when_the_segment_prefix_grows() {
        let mut cache = PartialCache::new(8);
        cache.insert(&query(1), 0, 7, 3, Arc::new(partial((0, 2))));
        // A lagging shard caught up: the union now serves 4 segments, so
        // every 3-segment partial is too narrow even at the same stamp.
        assert!(cache.get(&query(1), 0, 7, 4).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn partial_capacity_evicts_least_recently_used() {
        let mut cache = PartialCache::new(2);
        cache.insert(&query(1), 0, 1, 1, Arc::new(partial((0, 2))));
        cache.insert(&query(2), 0, 1, 1, Arc::new(partial((0, 2))));
        assert!(cache.get(&query(1), 0, 1, 1).is_some());
        cache.insert(&query(3), 0, 1, 1, Arc::new(partial((0, 2))));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&query(1), 0, 1, 1).is_some());
        assert!(cache.get(&query(2), 0, 1, 1).is_none(), "LRU evicted");
        assert!(cache.get(&query(3), 0, 1, 1).is_some());

        let mut off = PartialCache::new(0);
        off.insert(&query(1), 0, 1, 1, Arc::new(partial((0, 2))));
        assert!(off.get(&query(1), 0, 1, 1).is_none());
    }
}
