//! Minimal stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_custom`, `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros (both the positional and the
//! `name/config/targets` forms).
//!
//! Measurement model: each benchmark runs one warm-up iteration followed by
//! `sample_size` timed samples (one iteration per sample) and reports the
//! minimum / median / maximum wall-clock time to stdout.  There is no
//! statistical analysis, plotting or state persisted between runs.
//!
//! Two environment variables support CI smoke runs:
//!
//! * `CATRISK_BENCH_SAMPLES=N` caps every sample size (defaults and
//!   explicit `sample_size` calls alike) at `N`, so a full bench suite can
//!   run in quick mode at the PR gate;
//! * `CATRISK_BENCH_JSON=PATH` appends one JSON object per benchmark to
//!   `PATH` — `{"label":...,"min_ns":...,"median_ns":...,"max_ns":...,
//!   "samples":...}` — which CI uploads as an artifact.

use std::io::Write;
use std::time::{Duration, Instant};

/// The `CATRISK_BENCH_SAMPLES` cap, if set to a positive integer.
fn env_sample_cap() -> Option<usize> {
    std::env::var("CATRISK_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// Applies the environment cap to a requested sample size.
fn capped(samples: usize) -> usize {
    match env_sample_cap() {
        Some(cap) => samples.min(cap).max(1),
        None => samples.max(1),
    }
}

pub use std::hint::black_box;

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// Id rendered as the display form of a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            repr: parameter.to_string(),
        }
    }

    /// Id rendered as `name/parameter`.
    pub fn new<N: std::fmt::Display, P: std::fmt::Display>(name: N, parameter: P) -> Self {
        Self {
            repr: format!("{name}/{parameter}"),
        }
    }
}

/// Collector passed to the benchmark closure; records one sample per call
/// of the harness.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `sample_size` executions of `routine` (after one warm-up run).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `sample_size` calls of `routine(1)`, where the routine reports
    /// its own measured duration (used by benches that time an inner region
    /// or a simulated device).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        black_box(routine(1));
        for _ in 0..self.sample_size {
            self.samples.push(routine(1));
        }
    }
}

fn report(label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{label:<50} no samples");
        return;
    }
    samples.sort();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}]  ({} samples)",
        format_duration(min),
        format_duration(median),
        format_duration(max),
        samples.len()
    );
    append_json_summary(label, min, median, max, samples.len());
}

/// Appends one JSON summary line to `$CATRISK_BENCH_JSON`, if set.  Write
/// failures are reported on stderr but never fail the benchmark.
fn append_json_summary(label: &str, min: Duration, median: Duration, max: Duration, n: usize) {
    let Ok(path) = std::env::var("CATRISK_BENCH_JSON") else {
        return;
    };
    if path.trim().is_empty() {
        return;
    }
    // Labels are bench identifiers; escape the two characters JSON strings
    // cannot hold raw.
    let escaped: String = label
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c if (c as u32) < 0x20 => " ".chars().collect(),
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"label\":\"{escaped}\",\"min_ns\":{},\"median_ns\":{},\"max_ns\":{},\"samples\":{n}}}",
        min.as_nanos(),
        median.as_nanos(),
        max.as_nanos()
    );
    let appended = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut file| writeln!(file, "{line}"));
    if let Err(err) = appended {
        eprintln!("criterion shim: cannot append to {path}: {err}");
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark harness handle passed to every target function.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: capped(20),
        }
    }
}

impl Criterion {
    /// Disables plot generation (a no-op in the shim; kept for API parity).
    pub fn without_plots(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Benches a standalone function.
    pub fn bench_function(
        &mut self,
        name: impl std::fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.default_sample_size);
        routine(&mut bencher);
        report(&name.to_string(), &mut bencher.samples);
        self
    }
}

/// A group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark (subject to the
    /// `CATRISK_BENCH_SAMPLES` cap).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = capped(n);
        self
    }

    /// Benches `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.repr), &mut bencher.samples);
        self
    }

    /// Benches a closure within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.sample_size);
        routine(&mut bencher);
        report(&format!("{}/{}", self.name, id), &mut bencher.samples);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("custom", |b| b.iter_custom(Duration::from_nanos));
        group.finish();
    }

    criterion_group!(shim_group, target);

    // One test, not several: the env-driven controls mutate the process
    // environment, and concurrent harness tests reading it through getenv
    // would race the set_var/remove_var calls below.
    #[test]
    fn harness_runs_and_env_controls_apply() {
        shim_group();
        let mut c = Criterion::default().without_plots();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));

        let mut path = std::env::temp_dir();
        path.push(format!(
            "catrisk-criterion-shim-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("CATRISK_BENCH_JSON", &path);
        std::env::set_var("CATRISK_BENCH_SAMPLES", "2");

        let mut c = Criterion::default();
        let mut group = c.benchmark_group("capped");
        group.sample_size(50);
        let mut iterations = 0usize;
        group.bench_function("counted", |b| b.iter(|| iterations += 1));
        group.finish();

        std::env::remove_var("CATRISK_BENCH_SAMPLES");
        std::env::remove_var("CATRISK_BENCH_JSON");
        // 1 warm-up + 2 capped samples, not 50.
        assert_eq!(iterations, 3);
        let summary = std::fs::read_to_string(&path).unwrap();
        assert!(
            summary.contains("\"label\":\"capped/counted\""),
            "{summary}"
        );
        assert!(summary.contains("\"samples\":2"), "{summary}");
        let _ = std::fs::remove_file(&path);
    }
}
