//! The catastrophe model runner: catalog × exposure → Event Loss Table.
//!
//! "Each event-exposure pair is then analysed by a risk model that
//! quantifies the hazard intensity at the exposure site, the vulnerability
//! of the building and resulting damage level, and the resultant expected
//! loss, given the customer's financial terms" (paper §I).  The runner
//! evaluates every catalog event against every location of an exposure set
//! (in parallel over events) and keeps the events whose gross loss exceeds a
//! reporting threshold — producing ELTs with the 10k–30k non-zero records
//! the paper describes.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use catrisk_eventgen::catalog::EventCatalog;
use catrisk_finterms::currency::{Currency, ExchangeRates};
use catrisk_finterms::terms::FinancialTerms;
use catrisk_simkit::rng::RngFactory;

use crate::elt::{EltRecord, EventLossTable};
use crate::exposure::ExposureDatabase;
use crate::hazard::HazardModel;
use crate::vulnerability::VulnerabilityModel;
use crate::{ModelError, Result};

/// Configuration of the catastrophe model runner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatModelConfig {
    /// Currency the produced ELT is denominated in.
    pub currency: Currency,
    /// Financial terms `I` attached to the produced ELT (applied later by
    /// the aggregate engine, not by the runner).
    pub elt_financial_terms: FinancialTerms,
    /// Events whose total gross loss falls below this threshold are dropped
    /// from the ELT (keeps the table sparse, as in production systems).
    pub loss_threshold: f64,
    /// Coefficient of variation of the damage ratio (secondary uncertainty);
    /// 0 makes the model deterministic.
    pub damage_cv: f64,
}

impl Default for CatModelConfig {
    fn default() -> Self {
        Self {
            currency: Currency::Usd,
            elt_financial_terms: FinancialTerms::pass_through(),
            loss_threshold: 1.0,
            damage_cv: 0.6,
        }
    }
}

impl CatModelConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if !(self.loss_threshold.is_finite() && self.loss_threshold >= 0.0) {
            return Err(ModelError::InvalidConfig(
                "loss_threshold must be non-negative".into(),
            ));
        }
        if !(self.damage_cv.is_finite() && self.damage_cv >= 0.0) {
            return Err(ModelError::InvalidConfig(
                "damage_cv must be non-negative".into(),
            ));
        }
        Ok(())
    }
}

/// The catastrophe model: hazard + vulnerability + site financial terms.
pub struct CatModel {
    hazard: HazardModel,
    vulnerability: VulnerabilityModel,
    config: CatModelConfig,
}

impl CatModel {
    /// Creates a model with the given configuration.
    pub fn new(config: CatModelConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            hazard: HazardModel::new(),
            vulnerability: VulnerabilityModel {
                damage_cv: config.damage_cv,
            },
            config,
        })
    }

    /// Runs the model for one exposure database against the full catalog,
    /// producing that exposure set's ELT.  Parallelised over catalog events.
    pub fn run(
        &self,
        catalog: &EventCatalog,
        exposure: &ExposureDatabase,
        factory: &RngFactory,
    ) -> EventLossTable {
        let factory = factory.derive("catmodel").derive(&exposure.name);
        let records: Vec<EltRecord> = catalog
            .events()
            .par_iter()
            .filter_map(|event| {
                let mut rng = factory.stream(u64::from(event.id));
                let mut total_loss = 0.0;
                let mut total_sq = 0.0;
                let mut exposed_value = 0.0;
                for location in exposure.locations_in(event.region) {
                    let intensity = self.hazard.local_intensity(event, location);
                    if intensity <= 0.0 {
                        continue;
                    }
                    let damage = self.vulnerability.sample_damage_ratio(
                        event.peril,
                        location,
                        intensity,
                        &mut rng,
                    );
                    let loss = crate::financial::location_gross_loss(location, damage);
                    if loss > 0.0 {
                        total_loss += loss;
                        total_sq += loss * loss;
                        exposed_value += location.tiv;
                    }
                }
                if total_loss >= self.config.loss_threshold && total_loss > 0.0 {
                    Some(EltRecord {
                        event: event.id,
                        mean_loss: total_loss,
                        std_dev: total_sq.sqrt(),
                        exposure_value: exposed_value,
                    })
                } else {
                    None
                }
            })
            .collect();
        EventLossTable::new(
            exposure.name.clone(),
            self.config.currency,
            self.config.elt_financial_terms,
            records,
        )
    }

    /// Runs the model for several exposure databases, producing one ELT per
    /// database (the input shape of an aggregate analysis, where a layer
    /// covers 3–30 ELTs).
    pub fn run_portfolio(
        &self,
        catalog: &EventCatalog,
        exposures: &[ExposureDatabase],
        factory: &RngFactory,
    ) -> Vec<EventLossTable> {
        exposures
            .iter()
            .map(|e| self.run(catalog, e, factory))
            .collect()
    }

    /// Converts a set of ELTs into a common base currency.
    pub fn normalise_currency(
        elts: &[EventLossTable],
        rates: &ExchangeRates,
    ) -> std::result::Result<Vec<EventLossTable>, catrisk_finterms::TermsError> {
        elts.iter()
            .map(|elt| {
                let rate = rates
                    .rate(elt.currency)
                    .ok_or(catrisk_finterms::TermsError::UnknownCurrency(elt.currency))?;
                Ok(elt.converted(rates.base(), rate))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::ExposureConfig;
    use catrisk_eventgen::catalog::CatalogConfig;
    use catrisk_eventgen::peril::Region;

    fn catalog() -> EventCatalog {
        EventCatalog::generate(
            &CatalogConfig {
                num_events: 5_000,
                annual_event_budget: 500.0,
                rate_tail_index: 1.2,
            },
            &RngFactory::new(100),
        )
        .unwrap()
    }

    fn exposure(name: &str, region: Region) -> ExposureDatabase {
        ExposureConfig::regional(name, region, 800)
            .generate(&RngFactory::new(200))
            .unwrap()
    }

    #[test]
    fn elt_has_reasonable_shape() {
        let cat = catalog();
        let exp = exposure("gulf-book", Region::NorthAmericaEast);
        let model = CatModel::new(CatModelConfig::default()).unwrap();
        let elt = model.run(&cat, &exp, &RngFactory::new(300));
        // Sparse: far fewer events than the catalog, but not trivial.
        assert!(elt.len() > 50, "got {} records", elt.len());
        assert!(elt.len() < cat.len() / 2, "got {} records", elt.len());
        // Losses positive, bounded by the book's TIV.
        for r in elt.records() {
            assert!(r.mean_loss > 0.0);
            assert!(r.mean_loss <= exp.total_tiv());
            assert!(r.exposure_value > 0.0);
        }
        assert_eq!(elt.name, "gulf-book");
        assert_eq!(elt.currency, Currency::Usd);
    }

    #[test]
    fn run_is_deterministic() {
        let cat = catalog();
        let exp = exposure("det-book", Region::Japan);
        let model = CatModel::new(CatModelConfig::default()).unwrap();
        let a = model.run(&cat, &exp, &RngFactory::new(9));
        let b = model.run(&cat, &exp, &RngFactory::new(9));
        assert_eq!(a, b);
        let c = model.run(&cat, &exp, &RngFactory::new(10));
        assert_ne!(a, c);
    }

    #[test]
    fn different_exposures_share_events_with_different_losses() {
        let cat = catalog();
        let exp_a = exposure("book-a", Region::Europe);
        let exp_b = ExposureConfig::regional("book-b", Region::Europe, 400)
            .generate(&RngFactory::new(201))
            .unwrap();
        let model = CatModel::new(CatModelConfig::default()).unwrap();
        let elts = model.run_portfolio(&cat, &[exp_a, exp_b], &RngFactory::new(5));
        assert_eq!(elts.len(), 2);
        // "An event may be part of multiple ELTs and associated with a
        // different loss in each ELT."
        let shared: Vec<_> = elts[0]
            .records()
            .iter()
            .filter(|r| elts[1].loss_of(r.event) > 0.0)
            .collect();
        assert!(!shared.is_empty(), "the two books should share some events");
        assert!(shared
            .iter()
            .any(|r| (r.mean_loss - elts[1].loss_of(r.event)).abs() > 1e-6));
    }

    #[test]
    fn loss_threshold_filters_small_events() {
        let cat = catalog();
        let exp = exposure("threshold-book", Region::Caribbean);
        let low = CatModel::new(CatModelConfig {
            loss_threshold: 1.0,
            ..Default::default()
        })
        .unwrap()
        .run(&cat, &exp, &RngFactory::new(1));
        let high = CatModel::new(CatModelConfig {
            loss_threshold: 1.0e6,
            ..Default::default()
        })
        .unwrap()
        .run(&cat, &exp, &RngFactory::new(1));
        assert!(high.len() < low.len());
        assert!(high.records().iter().all(|r| r.mean_loss >= 1.0e6));
    }

    #[test]
    fn deterministic_damage_model() {
        let cat = catalog();
        let exp = exposure("no-uncertainty", Region::Oceania);
        let config = CatModelConfig {
            damage_cv: 0.0,
            ..Default::default()
        };
        let model = CatModel::new(config).unwrap();
        // With no secondary uncertainty, results do not depend on the seed.
        let a = model.run(&cat, &exp, &RngFactory::new(1));
        let b = model.run(&cat, &exp, &RngFactory::new(2));
        assert_eq!(a, b);
    }

    #[test]
    fn currency_normalisation() {
        let elt = EventLossTable::new(
            "eur",
            Currency::Eur,
            FinancialTerms::pass_through(),
            vec![EltRecord {
                event: 0,
                mean_loss: 100.0,
                std_dev: 0.0,
                exposure_value: 0.0,
            }],
        );
        let rates = ExchangeRates::representative();
        let out = CatModel::normalise_currency(&[elt], &rates).unwrap();
        assert_eq!(out[0].currency, Currency::Usd);
        assert!((out[0].loss_of(0) - 108.0).abs() < 1e-9);
    }

    #[test]
    fn config_validation() {
        assert!(CatModelConfig {
            loss_threshold: -1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CatModelConfig {
            damage_cv: f64::NAN,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(CatModelConfig::default().validate().is_ok());
        assert!(CatModel::new(CatModelConfig {
            damage_cv: -0.5,
            ..Default::default()
        })
        .is_err());
    }
}
