//! The micro-batching server core: bounded queue → batch window →
//! refresh → cache → fused scan → reply slots.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use catrisk_riskquery::{
    combine_segment_partials, combine_trial_partial_refs, plan_is_shard_aligned,
    restrict_plan_to_segments, scan_trial_partials_fused, Query, QueryPlan, QueryResult,
    QuerySession, ScanAttribution, SegmentSource, TrialPartial,
};
use catrisk_telemetry::{
    EventRecord, EventValue, MetricsSnapshot, Span, TraceLookup, TraceRecord, TraceSpan,
};

use crate::cache::{PartialCache, ResultCache};
use crate::source::SourceProvider;
use crate::stats::{Counters, RequestTimings, StatsSnapshot};
use crate::sync::{lock, wait, wait_timeout};
use crate::telemetry::ServerTelemetry;

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// A batch window closes as soon as this many requests are pending.
    pub max_batch: usize,
    /// How long a worker holds a window open for more requests to coalesce
    /// after it has picked up the first one.  Zero disables coalescing —
    /// every request executes as soon as a worker is free.
    pub batch_window: Duration,
    /// Admission-control bound: a submit finding this many requests queued
    /// is rejected with [`ServeError::Overloaded`] instead of queueing.
    pub queue_depth: usize,
    /// Worker threads pulling batches off the queue.  Each batch execution
    /// is itself trial-block-parallel on the rayon pool, so a small number
    /// of workers saturates the machine; more workers trade batching
    /// efficiency for lower window latency under light load.
    pub workers: usize,
    /// Entries the generation-keyed result cache holds (0 disables it).
    /// An entry is one unique query's full result; it is served again
    /// without scanning until any shard's committed generation moves.
    pub cache_capacity: usize,
    /// Entries the per-shard partial-aggregate cache holds (0 disables
    /// it).  Exercised by multi-shard catalogs on either axis: an entry
    /// is one `(query, shard)` partial, valid until *that shard's*
    /// generation moves (or the keyed segment count changes), so a
    /// single-shard refresh rescans one trial window (trial axis) or one
    /// shard's segments (segment axis, shard-aligned plans) instead of
    /// everything.
    pub partial_cache_capacity: usize,
    /// Batches whose execution exceeds this many microseconds emit a
    /// `slow-batch` flight-recorder event.  0 (the default) disables the
    /// check.
    pub metrics_threshold_us: u64,
    /// Events the flight recorder retains (0 disables the recorder).
    pub recorder_capacity: usize,
    /// Trace every Nth admitted request: 1 traces every request, 0 (the
    /// default) disables tracing entirely — the only hot-path cost of the
    /// tracing machinery is then one branch per stage sample.  The
    /// sampling decision (and the trace-id allocation) happens inside the
    /// admission critical section, so with a value of 1 the
    /// `traces_started` counter equals `submitted` exactly.
    pub trace_sample_every: u64,
    /// Completed traces the trace store's recency ring retains (the
    /// slowest-trace pool is a separate fixed
    /// [`SLOWEST_POOL`](catrisk_telemetry::SLOWEST_POOL) entries).  0
    /// disables retention: traced requests still carry their trace inline
    /// in the reply, but `trace <id>` lookups answer `evicted`.
    pub trace_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            batch_window: Duration::from_micros(200),
            queue_depth: 1024,
            workers: 2,
            cache_capacity: 1024,
            partial_cache_capacity: 4096,
            metrics_threshold_us: 0,
            recorder_capacity: 256,
            trace_sample_every: 0,
            trace_capacity: 256,
        }
    }
}

/// Typed serving errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the queue already held
    /// `depth` requests.  The client should back off and retry.
    Overloaded {
        /// Queue depth observed at rejection time.
        depth: usize,
    },
    /// The query cannot run against this server's store (bad trial window,
    /// invalid aggregate, ...).  Rejected at submit time, before queueing.
    InvalidQuery(String),
    /// The server is shutting down and no longer accepts requests.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth } => {
                write!(f, "server overloaded: {depth} requests queued")
            }
            ServeError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
            ServeError::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A wire-independent name for each error variant (the TCP protocol and
/// the load generator key on it).
impl ServeError {
    /// Stable machine-readable error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::InvalidQuery(_) => "invalid",
            ServeError::ShuttingDown => "shutting-down",
        }
    }
}

/// A successful reply: the query result plus its latency attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// The query's result, bit-identical to a sequential
    /// [`QuerySession`] run of the same query.
    pub result: QueryResult,
    /// Where this request's latency went.
    pub timings: RequestTimings,
    /// The request's execution trace, when it was sampled for tracing
    /// (`None` otherwise).  The trace is built from the **same** clock
    /// reads as `timings`, so `trace.total_micros ==
    /// timings.queue_micros + timings.exec_micros` holds exactly.
    pub trace: Option<TraceRecord>,
}

/// One-shot reply slot shared between a queued request and its
/// [`Ticket`].
#[derive(Debug, Default)]
struct ReplySlot {
    outcome: Mutex<Option<Result<Reply, ServeError>>>,
    ready: Condvar,
}

impl ReplySlot {
    fn fulfil(&self, outcome: Result<Reply, ServeError>) {
        *lock(&self.outcome) = Some(outcome);
        self.ready.notify_all();
    }
}

/// The claim check a [`Server::submit`] returns: redeem it with
/// [`Ticket::wait`] for the reply.  Every accepted ticket is fulfilled
/// exactly once — workers drain the queue on shutdown, so accepted
/// requests are never dropped.
#[derive(Debug)]
pub struct Ticket {
    slot: Arc<ReplySlot>,
}

impl Ticket {
    /// Blocks until the reply is ready.
    pub fn wait(self) -> Result<Reply, ServeError> {
        let mut outcome = lock(&self.slot.outcome);
        loop {
            if let Some(reply) = outcome.take() {
                return reply;
            }
            outcome = wait(&self.slot.ready, outcome);
        }
    }

    /// Returns the reply if it is already ready, or the ticket back.
    pub fn try_wait(self) -> Result<Result<Reply, ServeError>, Ticket> {
        let ready = lock(&self.slot.outcome).take();
        match ready {
            Some(reply) => Ok(reply),
            None => Err(self),
        }
    }
}

/// One admitted request waiting in the queue.
struct Pending {
    query: Query,
    slot: Arc<ReplySlot>,
    enqueued: Instant,
    /// The request's trace id, 0 when it was not sampled for tracing.
    trace_id: u64,
}

/// Queue state guarded by one mutex: the pending requests plus the
/// shutdown latch the workers observe.
#[derive(Default)]
struct QueueState {
    pending: VecDeque<Pending>,
    /// Requests ever admitted — the trace-sampling modulus ticks off this
    /// count inside the admission critical section, so "every Nth" is
    /// exact even under concurrent submitters.
    admitted: u64,
    shutting_down: bool,
}

struct Shared<P> {
    provider: P,
    config: ServerConfig,
    queue: Mutex<QueueState>,
    /// Signalled on every admit and on shutdown; workers wait on it both
    /// when idle and while a batch window is open.
    arrived: Condvar,
    cache: Mutex<ResultCache>,
    partials: Mutex<PartialCache>,
    counters: Counters,
    telemetry: ServerTelemetry,
}

/// A micro-batching query server over any [`SourceProvider`] — a shared
/// immutable `Arc<SegmentSource>` or a refreshable
/// [`StoreCatalog`](crate::catalog::StoreCatalog) of persistent shards.
///
/// Many client threads [`submit`](Server::submit) parsed queries
/// concurrently; worker threads coalesce whatever is pending — closing
/// each batch window after [`ServerConfig::max_batch`] requests or
/// [`ServerConfig::batch_window`], whichever comes first.  Each batch
/// first refreshes the provider (newly committed segments become
/// visible), then consults the generation-keyed result cache, and pushes
/// only the cache misses through one fused [`QuerySession::run`] over the
/// snapshot — so N concurrent requests over the same slices cost ~1 fused
/// scan instead of N, and repeated queries cost no scan at all until new
/// data lands.  Results are bit-identical to running each query alone
/// against the current snapshot.
///
/// Dropping the server shuts it down: queued requests are still answered
/// (never dropped), subsequent submits fail with
/// [`ServeError::ShuttingDown`].
pub struct Server<P: SourceProvider> {
    shared: Arc<Shared<P>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl<P: SourceProvider> std::fmt::Debug for Server<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("segments", &self.shared.provider.num_segments())
            .field("config", &self.shared.config)
            .finish()
    }
}

impl<P: SourceProvider> Server<P> {
    /// Starts a server over `provider` with the given configuration.
    pub fn new(provider: P, config: ServerConfig) -> Self {
        let telemetry = ServerTelemetry::new(
            config.recorder_capacity,
            config.metrics_threshold_us,
            config.trace_sample_every,
            config.trace_capacity,
        );
        // The provider hooks its own metrics (store opens, refresh costs,
        // schema memo rebuilds) into the same registry the serving stages
        // record into, so one `metrics` scrape covers the whole path.
        provider.attach_telemetry(&telemetry.registry);
        let shared = Arc::new(Shared {
            provider,
            config: ServerConfig {
                max_batch: config.max_batch.max(1),
                workers: config.workers.max(1),
                ..config
            },
            queue: Mutex::new(QueueState::default()),
            arrived: Condvar::new(),
            cache: Mutex::new(ResultCache::new(config.cache_capacity)),
            partials: Mutex::new(PartialCache::new(config.partial_cache_capacity)),
            counters: Counters::register(&telemetry.registry),
            telemetry,
        });
        let workers = (0..shared.config.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("riskserve-worker-{index}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn riskserve worker")
            })
            .collect();
        Self {
            shared,
            workers: Mutex::new(workers),
        }
    }

    /// Starts a server with the default configuration.
    pub fn with_defaults(provider: P) -> Self {
        Self::new(provider, ServerConfig::default())
    }

    /// The provider this server answers queries over.
    pub fn provider(&self) -> &P {
        &self.shared.provider
    }

    /// The active configuration (after clamping).
    pub fn config(&self) -> ServerConfig {
        self.shared.config
    }

    /// Submits one query for batched execution.
    ///
    /// Validates the query against the provider's (lifetime-fixed) trial
    /// count up front — without touching the snapshot locks — so a
    /// planning failure is returned here as [`ServeError::InvalidQuery`]
    /// and one client's malformed query can never fail a batch it shares
    /// with others.  Applies admission control: past
    /// [`ServerConfig::queue_depth`] pending requests the submit is
    /// rejected with a typed [`ServeError::Overloaded`] instead of
    /// queueing without bound.
    pub fn submit(&self, query: Query) -> Result<Ticket, ServeError> {
        self.submit_inner(query, false)
    }

    /// Submits one query with tracing forced on, whatever the sampling
    /// knob says: the reply always carries its execution profile.  This
    /// backs the wire protocol's per-request `trace` prefix.
    pub fn submit_traced(&self, query: Query) -> Result<Ticket, ServeError> {
        self.submit_inner(query, true)
    }

    fn submit_inner(&self, query: Query, force_trace: bool) -> Result<Ticket, ServeError> {
        // One admission sample per attempt, whatever the outcome — the
        // span records on every exit path below.
        let _admission = Span::enter(&self.shared.telemetry.admission);
        if let Err(err) = QueryPlan::validate_trials(self.shared.provider.num_trials(), &query) {
            return Err(ServeError::InvalidQuery(err.to_string()));
        }
        let slot = Arc::new(ReplySlot::default());
        let trace_id = {
            let mut queue = lock(&self.shared.queue);
            if queue.shutting_down {
                return Err(ServeError::ShuttingDown);
            }
            let depth = queue.pending.len();
            if depth >= self.shared.config.queue_depth {
                self.shared.counters.rejected.inc();
                self.shared
                    .telemetry
                    .recorder
                    .record("overload", [("depth", EventValue::from(depth))]);
                return Err(ServeError::Overloaded { depth });
            }
            // The sampling decision rides the admission critical section:
            // every Nth *admitted* request gets an id, so with N = 1 the
            // `traces_started` counter equals `submitted` exactly.  With
            // sampling off this is one branch.
            let sample_every = self.shared.telemetry.trace_sample_every;
            let trace_id = if force_trace
                || (sample_every > 0 && queue.admitted.is_multiple_of(sample_every))
            {
                self.shared.telemetry.traces.allocate()
            } else {
                0
            };
            queue.admitted += 1;
            queue.pending.push_back(Pending {
                query,
                slot: Arc::clone(&slot),
                enqueued: Instant::now(),
                trace_id,
            });
            self.shared
                .counters
                .max_queue_depth
                .bump_max(depth as i64 + 1);
            trace_id
        };
        self.shared.counters.submitted.inc();
        if trace_id != 0 {
            self.shared.counters.traces_started.inc();
        }
        self.shared.arrived.notify_one();
        Ok(Ticket { slot })
    }

    /// Submits a query and blocks for its reply — the one-call convenience
    /// path.
    pub fn query(&self, query: Query) -> Result<Reply, ServeError> {
        self.submit(query)?.wait()
    }

    /// A snapshot of the server counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.counters.snapshot()
    }

    /// A snapshot of every metric: the counters plus the per-stage latency
    /// histograms (see [`crate::telemetry::stage`] for the taxonomy).
    /// This is what the `metrics` protocol command returns.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.telemetry.registry.snapshot()
    }

    /// The flight recorder's current contents, oldest first.  This is
    /// what the `recorder` protocol command returns.
    pub fn recorder_dump(&self) -> Vec<EventRecord> {
        self.shared.telemetry.recorder.dump()
    }

    /// The recorder events with `seq >= since`, oldest first — the
    /// incremental scrape behind the `recorder since <seq>` protocol
    /// command (sequence numbers never reset, so repeated scrapes
    /// correlate exactly).
    pub fn recorder_dump_since(&self, since: u64) -> Vec<EventRecord> {
        self.shared.telemetry.recorder.dump_since(since)
    }

    /// Looks up a trace by id — the `trace <id>` protocol command.
    /// Distinguishes retained, evicted (a real id whose record aged out)
    /// and unknown (never issued by this server).
    pub fn trace(&self, id: u64) -> TraceLookup {
        self.shared.telemetry.traces.lookup(id)
    }

    /// The `n` slowest retained traces, slowest first — the
    /// `trace slowest N` protocol command.
    pub fn slowest_traces(&self, n: usize) -> Vec<TraceRecord> {
        self.shared.telemetry.traces.slowest(n)
    }

    /// Stops accepting requests, drains the queue (every accepted ticket
    /// is fulfilled) and joins the workers.  Idempotent.
    pub fn shutdown(&self) {
        {
            let mut queue = lock(&self.shared.queue);
            queue.shutting_down = true;
        }
        self.shared.arrived.notify_all();
        for worker in lock(&self.workers).drain(..) {
            let _ = worker.join();
        }
    }
}

impl<P: SourceProvider> Drop for Server<P> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Worker body: wait for a request, hold the batch window open, drain up
/// to `max_batch`, execute the batch, deliver replies; on shutdown keep
/// draining until the queue is empty, then exit.
fn worker_loop<P: SourceProvider>(shared: &Shared<P>) {
    loop {
        let batch: Vec<Pending> = {
            let mut queue = lock(&shared.queue);
            loop {
                if !queue.pending.is_empty() {
                    break;
                }
                if queue.shutting_down {
                    return;
                }
                queue = wait(&shared.arrived, queue);
            }
            // The window opens when a worker first sees the queue
            // non-empty and closes at `batch_window` or `max_batch`,
            // whichever comes first.  Shutdown closes it immediately.
            let deadline = Instant::now() + shared.config.batch_window;
            while queue.pending.len() < shared.config.max_batch && !queue.shutting_down {
                let now = Instant::now();
                if now >= deadline || queue.pending.is_empty() {
                    break;
                }
                queue = wait_timeout(&shared.arrived, queue, deadline - now);
            }
            let take = queue.pending.len().min(shared.config.max_batch);
            queue.pending.drain(..take).collect()
        };
        // Another worker may have drained the queue while this one held
        // the window open.
        if batch.is_empty() {
            continue;
        }
        execute_batch(shared, batch);
    }
}

/// Per-unique-query scan detail captured while a batch executes, for
/// traced member requests: the scan-stage duration (the same clock read
/// the scan histogram recorded), the plan-derived attribution, the
/// partial-cache traffic and the per-shard child spans (partial-cache
/// paths on either axis, with start offsets relative to the scan's own
/// start).
struct ScanDetail {
    micros: u64,
    attribution: Option<ScanAttribution>,
    partial_hits: u64,
    partial_misses: u64,
    children: Vec<TraceSpan>,
}

/// Executes one batch: refreshes the provider (newly committed segments
/// become visible and stale cache generations retire), dedups identical
/// queries across submitters, answers what it can from the result cache,
/// runs the remaining misses through one fused scan (the session
/// additionally dedups shared scan specs), and fulfils every reply slot.
///
/// When any member of the batch is traced, the batch-level stage timings
/// (refresh, cache lookup, scan) are captured once from the spans' own
/// clock reads and fanned back out into each traced member's span tree —
/// a trace can never disagree with the histograms because both consumed
/// the same measured value.
fn execute_batch<P: SourceProvider>(shared: &Shared<P>, batch: Vec<Pending>) {
    let started = Instant::now();
    // First traced member, if any: the batch-level exemplar id (stamped
    // on the batch-exec histogram bucket and the slow-batch event).
    let batch_trace = batch
        .iter()
        .map(|pending| pending.trace_id)
        .find(|&id| id != 0)
        .unwrap_or(0);
    let any_traced = batch_trace != 0;
    // Refresh before snapshotting, so a query submitted after a commit
    // was published observes it; the refresh cost is attributed to this
    // batch's exec time.
    let refresh_span = Span::enter(&shared.telemetry.refresh_probe);
    let refreshed = shared.provider.refresh();
    let refresh_micros = refresh_span.finish();
    let refreshed_shards = refreshed.len() as u64;
    if !refreshed.is_empty() {
        shared.counters.refreshes.add(refreshed.len() as u64);
        shared.telemetry.recorder.record(
            "refresh",
            [
                ("shards", EventValue::from(refreshed.len())),
                ("indices", EventValue::from(format!("{refreshed:?}"))),
            ],
        );
    }
    // Stores a watching catalog adopted during that refresh surface as
    // one counter bump and one recorder event per store, so the fleet
    // smoke can cross-check `discovered_stores` against the event log.
    let discovered = shared.provider.drain_discovered();
    if !discovered.is_empty() {
        shared
            .counters
            .discovered_stores
            .add(discovered.len() as u64);
        for path in &discovered {
            shared.telemetry.recorder.record(
                "store-discovered",
                [("path", EventValue::from(path.display().to_string()))],
            );
        }
    }

    let mut unique: Vec<Query> = Vec::with_capacity(batch.len());
    let mut index_of: HashMap<&Query, usize> = HashMap::with_capacity(batch.len());
    let assignment: Vec<usize> = batch
        .iter()
        .map(|pending| match index_of.entry(&pending.query) {
            Entry::Occupied(slot) => *slot.get(),
            Entry::Vacant(slot) => {
                let index = unique.len();
                slot.insert(index);
                unique.push(pending.query.clone());
                index
            }
        })
        .collect();
    drop(index_of);

    // The representative trace id of each unique query: the first traced
    // member that mapped to it.  Scan-stage exemplars and per-shard child
    // spans are attributed to the representative.
    let mut rep_trace: Vec<u64> = vec![0; unique.len()];
    if any_traced {
        for (pending, &index) in batch.iter().zip(&assignment) {
            if pending.trace_id != 0 && rep_trace[index] == 0 {
                rep_trace[index] = pending.trace_id;
            }
        }
    }

    let mut batch_hits = 0usize;
    let mut batch_misses = 0usize;
    let mut cache_lookup_micros = 0u64;
    let mut scan_details: Vec<Option<ScanDetail>> = (0..unique.len()).map(|_| None).collect();
    let outcomes: Vec<Result<QueryResult, ServeError>> = shared.provider.with_source(|snapshot| {
        let source = snapshot.source;
        let generations = snapshot.generations;
        let mut results: Vec<Option<Result<QueryResult, ServeError>>> =
            (0..unique.len()).map(|_| None).collect();
        // 1. The generation-keyed cache: a hit is bit-identical to a
        //    fresh scan of this snapshot by the cache's key contract.
        let mut misses: Vec<usize> = Vec::new();
        {
            let cache_lookup = Span::enter(&shared.telemetry.cache_lookup);
            let mut cache = lock(&shared.cache);
            for (index, query) in unique.iter().enumerate() {
                match cache.get(query, generations) {
                    Some(result) => results[index] = Some(Ok(result)),
                    None => misses.push(index),
                }
            }
            cache_lookup_micros = cache_lookup.finish_with_exemplar(batch_trace);
        }
        batch_hits = unique.len() - misses.len();
        batch_misses = misses.len();
        shared.counters.cache_hits.add(batch_hits as u64);
        shared.counters.cache_misses.add(batch_misses as u64);

        // 2a. Trial-sharded snapshot: answer the misses from cached
        //     per-shard partials, with ONE fused scan per (shard,
        //     window) the batch actually needs — every missing query on
        //     that window rides the same pass.
        if let Some(windows) = snapshot.trial_windows {
            run_trial_partial_batch(
                shared,
                source,
                generations,
                windows,
                &unique,
                &rep_trace,
                &misses,
                &mut results,
                &mut scan_details,
            );
        } else if !misses.is_empty() {
            // 2b. Segment-axis partials where the snapshot supports them
            //     (shard-aligned plans over an all-usable segment
            //     catalog), one fused session scan for everything else.
            //     Every miss rode the same branch, so each one's
            //     scan-stage sample is the whole branch's elapsed time
            //     (keeping the count == cache_misses invariant), like
            //     `exec_micros` in `RequestTimings`.
            let scan_started = Instant::now();
            let session_misses: Vec<usize> = match snapshot.segment_ranges {
                Some(ranges) => run_segment_partial_batch(
                    shared,
                    source,
                    generations,
                    ranges,
                    &unique,
                    &rep_trace,
                    &misses,
                    &mut results,
                    &mut scan_details,
                ),
                None => misses.clone(),
            };
            if !session_misses.is_empty() {
                let to_run: Vec<Query> =
                    session_misses.iter().map(|&i| unique[i].clone()).collect();
                let session =
                    QuerySession::new(source).with_scan_histogram(&shared.telemetry.session_scan);
                match session.run(&to_run) {
                    Ok(scanned) => {
                        let mut cache = lock(&shared.cache);
                        for (&index, result) in session_misses.iter().zip(scanned) {
                            cache.insert(unique[index].clone(), generations, result.clone());
                            results[index] = Some(Ok(result));
                        }
                    }
                    Err(_) => {
                        // Unreachable in practice: every query was
                        // validated at submit time and the trial count
                        // never changes.  Fall back to per-query execution
                        // so each request still gets its own reply (a
                        // batch-wide error must never take out neighbours).
                        for &index in &session_misses {
                            results[index] = Some(
                                catrisk_riskquery::execute(source, &unique[index])
                                    .map_err(|err| ServeError::InvalidQuery(err.to_string())),
                            );
                        }
                    }
                }
            }
            let scan_micros = scan_started.elapsed().as_micros() as u64;
            for &index in &misses {
                shared
                    .telemetry
                    .scan
                    .record_with_exemplar(scan_micros, rep_trace[index]);
                if rep_trace[index] != 0 {
                    match &mut scan_details[index] {
                        // A segment-partial miss already has its detail;
                        // stamp it with the branch's measured elapsed.
                        Some(detail) => detail.micros = scan_micros,
                        // Attribution replans the query — pushdown only,
                        // no loss data — and is paid only for traced
                        // misses.
                        None => {
                            scan_details[index] = Some(ScanDetail {
                                micros: scan_micros,
                                attribution: QueryPlan::new(source, &unique[index])
                                    .ok()
                                    .map(|plan| plan.attribution()),
                                partial_hits: 0,
                                partial_misses: 0,
                                children: Vec::new(),
                            });
                        }
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|outcome| outcome.expect("every unique query resolved"))
            .collect()
    });

    let exec_micros = started.elapsed().as_micros() as u64;
    shared
        .telemetry
        .batch_exec
        .record_with_exemplar(exec_micros, batch_trace);
    let batch_size = batch.len() as u32;
    // Counters bump before the slots are fulfilled, so a client that just
    // received its reply already sees itself counted.
    shared.counters.batches.inc();
    shared
        .counters
        .largest_batch
        .bump_max(i64::from(batch_size));
    shared.telemetry.recorder.record(
        "batch",
        [
            ("size", EventValue::from(batch.len())),
            ("unique", EventValue::from(unique.len())),
            ("cache_hits", EventValue::from(batch_hits)),
            ("cache_misses", EventValue::from(batch_misses)),
            ("exec_micros", EventValue::from(exec_micros)),
        ],
    );
    let threshold = shared.telemetry.slow_batch_threshold_micros;
    if threshold > 0 && exec_micros > threshold {
        shared.telemetry.recorder.record(
            "slow-batch",
            [
                ("exec_micros", EventValue::from(exec_micros)),
                ("threshold_micros", EventValue::from(threshold)),
                ("batch_size", EventValue::from(batch.len())),
                // Exemplar: the first traced member of the slow batch
                // (0 when none was sampled) — resolvable via `trace <id>`.
                ("trace", EventValue::from(batch_trace)),
            ],
        );
    }
    let unique_count = unique.len() as u64;
    let _finalize = Span::enter(&shared.telemetry.finalize);
    for (pending, unique_index) in batch.into_iter().zip(assignment) {
        let queue_micros = started
            .saturating_duration_since(pending.enqueued)
            .as_micros() as u64;
        // One queue sample per admitted request, so the queue histogram's
        // count always equals `completed + failed`.
        shared
            .telemetry
            .queue
            .record_with_exemplar(queue_micros, pending.trace_id);
        let timings = RequestTimings {
            queue_micros,
            exec_micros,
            batch_size,
        };
        // The trace is assembled from the *same* u64 values the stats and
        // histograms consumed — `queue_micros` and `exec_micros` above —
        // never a fresh clock read, which is what makes
        // `trace.total_micros == queue_micros + exec_micros` an exact
        // contract rather than an approximation.
        let trace = (pending.trace_id != 0).then(|| {
            let total_micros = queue_micros + exec_micros;
            let mut root = TraceSpan::new("request", 0, total_micros);
            root.push_child(TraceSpan::new("queue", 0, queue_micros));
            let mut exec_span = TraceSpan::new("exec", queue_micros, exec_micros)
                .attr("batch_size", u64::from(batch_size))
                .attr("batch_unique", unique_count);
            exec_span.push_child(
                TraceSpan::new("refresh", exec_span.next_child_start(), refresh_micros)
                    .attr("shards", refreshed_shards),
            );
            let detail = &scan_details[unique_index];
            exec_span.push_child(
                TraceSpan::new(
                    "cache_lookup",
                    exec_span.next_child_start(),
                    cache_lookup_micros,
                )
                .attr("hit", u64::from(detail.is_none())),
            );
            if let Some(detail) = detail {
                let scan_start = exec_span.next_child_start();
                let mut scan_span = TraceSpan::new("scan", scan_start, detail.micros);
                if let Some(attribution) = detail.attribution {
                    scan_span = scan_span
                        .attr("segments", attribution.segments as u64)
                        .attr("trials", attribution.trials as u64)
                        .attr("groups", attribution.groups as u64)
                        .attr("bytes", attribution.bytes as u64);
                }
                if detail.partial_hits + detail.partial_misses > 0 {
                    scan_span = scan_span
                        .attr("partial_hits", detail.partial_hits)
                        .attr("partial_misses", detail.partial_misses);
                }
                for child in &detail.children {
                    scan_span.push_child(child.shifted(scan_start));
                }
                exec_span.push_child(scan_span);
            }
            root.push_child(exec_span);
            TraceRecord {
                id: pending.trace_id,
                total_micros,
                root,
            }
        });
        // Retain the trace *before* fulfilling the slot, so a client that
        // just received its traced reply can immediately resolve the id.
        if let Some(trace) = &trace {
            if shared.telemetry.traces.insert(trace.clone()) {
                shared.counters.traces_retained.inc();
            }
        }
        let outcome = match &outcomes[unique_index] {
            Ok(result) => {
                shared.counters.completed.inc();
                Ok(Reply {
                    result: result.clone(),
                    timings,
                    trace,
                })
            }
            Err(err) => {
                shared.counters.failed.inc();
                Err(err.clone())
            }
        };
        pending.slot.fulfil(outcome);
    }
}

/// One result-cache miss mid-flight through a partial-cache planner:
/// its plan, the per-shard partial slots being filled, its cache
/// traffic, and (when traced) the child spans accumulated so far.
struct PartialMiss {
    /// Index into the batch's `unique` queries.
    index: usize,
    plan: QueryPlan,
    /// One slot per shard, in shard order; `None` until probed or
    /// freshly scanned.
    parts: Vec<Option<Arc<TrialPartial>>>,
    hits: u64,
    rescans: u64,
    /// Traced members' `scan_shard` / `stitch` child spans, start
    /// offsets packed sequentially relative to the scan stage's start.
    children: Vec<TraceSpan>,
    next_start: u64,
}

impl PartialMiss {
    fn new(index: usize, plan: QueryPlan, shards: usize) -> Self {
        Self {
            index,
            plan,
            parts: vec![None; shards],
            hits: 0,
            rescans: 0,
            children: Vec::new(),
            next_start: 0,
        }
    }

    fn count_probe(&mut self) {
        self.hits = self.parts.iter().filter(|part| part.is_some()).count() as u64;
        self.rescans = self.parts.len() as u64 - self.hits;
    }
}

/// Groups the missing `(miss, shard)` pairs of one shard by scan window,
/// in first-appearance (deterministic) order: every member of a group
/// shares one fused scan of that window.
fn group_missing_by_window(
    states: &[PartialMiss],
    shard: usize,
    window_of: impl Fn(&PartialMiss) -> (usize, usize),
) -> Vec<((usize, usize), Vec<usize>)> {
    let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
    for (slot, state) in states.iter().enumerate() {
        if state.parts[shard].is_none() {
            let window = window_of(state);
            match groups.iter_mut().find(|(existing, _)| *existing == window) {
                Some((_, members)) => members.push(slot),
                None => groups.push((window, vec![slot])),
            }
        }
    }
    groups
}

/// The first traced member of a group (0 when none): the exemplar id
/// stamped on the group's `scan_shard` histogram sample.
fn group_exemplar(states: &[PartialMiss], members: &[usize], rep_trace: &[u64]) -> u64 {
    members
        .iter()
        .map(|&slot| rep_trace[states[slot].index])
        .find(|&id| id != 0)
        .unwrap_or(0)
}

/// Answers a batch's result-cache misses over a trial-sharded snapshot
/// from per-shard partial aggregates: cached partials are reused for
/// every shard whose generation (and the union's segment prefix) is
/// unchanged, the remaining `(query, shard)` pairs are grouped by
/// `(shard, clipped window)` and each group is rescanned by **one**
/// fused scan, and each query's parts stitch through the exact
/// adjacent-window monoid — bit-identical to one fused scan of the whole
/// axis.  The number of `scan_shard` samples (and `fused_partial_scans`
/// bumps) is therefore the number of distinct windows the batch touched,
/// not `queries × windows`.
///
/// `windows[j]` corresponds to `generations[j]` by the
/// [`SourceSnapshot`](crate::source::SourceSnapshot) contract.  Each
/// query's own trial filter clips each shard's window (clamping is
/// monotone, so the clipped windows stay adjacent and shards outside the
/// filter contribute exact zero-trial partials); queries whose filters
/// clip a shard differently land in different groups.
///
/// Every miss records one scan-stage sample carrying the whole phase's
/// elapsed time (all misses rode the same pass), keeping the scan
/// histogram's count equal to `cache_misses`.  Traced members' child
/// spans carry their group's measured duration — the same clock read the
/// `scan_shard` histogram consumed — so a trace's `scan_shard` child
/// count still equals that query's contribution to `partial_misses`.
#[allow(clippy::too_many_arguments)]
fn run_trial_partial_batch<P: SourceProvider>(
    shared: &Shared<P>,
    source: &dyn SegmentSource,
    generations: &[u64],
    windows: &[(usize, usize)],
    unique: &[Query],
    rep_trace: &[u64],
    misses: &[usize],
    results: &mut [Option<Result<QueryResult, ServeError>>],
    scan_details: &mut [Option<ScanDetail>],
) {
    let phase_started = Instant::now();
    let num_segments = source.num_segments();
    let mut states: Vec<PartialMiss> = Vec::with_capacity(misses.len());
    for &index in misses {
        match QueryPlan::new(source, &unique[index]) {
            Ok(plan) => states.push(PartialMiss::new(index, plan, windows.len())),
            Err(err) => results[index] = Some(Err(ServeError::InvalidQuery(err.to_string()))),
        }
    }
    let clip_of = |plan: &QueryPlan, (start, end): (usize, usize)| {
        (
            start.clamp(plan.trial_start, plan.trial_end),
            end.clamp(plan.trial_start, plan.trial_end),
        )
    };

    // Phase 1: probe every (miss, shard) pair under one short lock.
    {
        let mut partials = lock(&shared.partials);
        for state in &mut states {
            for (shard, &window) in windows.iter().enumerate() {
                let clip = clip_of(&state.plan, window);
                state.parts[shard] = partials
                    .get(&unique[state.index], shard, generations[shard], num_segments)
                    // The cached window is derived from the same fixed
                    // shard windows and query, but verify rather than
                    // assume — a mismatch is a miss, never a wrong stitch.
                    .filter(|partial| partial.window == clip);
            }
            state.count_probe();
        }
    }
    shared
        .counters
        .partial_hits
        .add(states.iter().map(|state| state.hits).sum());
    shared
        .counters
        .partial_misses
        .add(states.iter().map(|state| state.rescans).sum());

    // Phase 2: one fused scan per (shard, clipped window) the batch
    // misses (no cache lock held — scans are the expensive part and
    // other workers may be probing).
    let mut scanned: Vec<(usize, usize)> = Vec::new();
    for shard in 0..windows.len() {
        let groups =
            group_missing_by_window(&states, shard, |state| clip_of(&state.plan, windows[shard]));
        for ((start, end), members) in groups {
            let exemplar = group_exemplar(&states, &members, rep_trace);
            let (fresh, group_micros) = {
                let plans: Vec<&QueryPlan> =
                    members.iter().map(|&slot| &states[slot].plan).collect();
                // One shard-scan sample per fused scan, so the
                // histogram's count always equals `fused_partial_scans`.
                let shard_scan = Span::enter(&shared.telemetry.scan_shard);
                let fresh = scan_trial_partials_fused(source, &plans, start, end);
                (fresh, shard_scan.finish_with_exemplar(exemplar))
            };
            shared.counters.fused_partial_scans.inc();
            for (&slot, partial) in members.iter().zip(fresh) {
                let state = &mut states[slot];
                if rep_trace[state.index] != 0 {
                    let attribution = state.plan.attribution_for_window(start, end);
                    state.children.push(
                        TraceSpan::new("scan_shard", state.next_start, group_micros)
                            .attr("shard", shard as u64)
                            .attr("window_start", start as u64)
                            .attr("window_end", end as u64)
                            .attr("segments", attribution.segments as u64)
                            .attr("bytes", attribution.bytes as u64),
                    );
                    state.next_start += group_micros;
                }
                state.parts[shard] = Some(Arc::new(partial));
                scanned.push((slot, shard));
            }
        }
    }

    // Phase 3: publish the fresh partials — the same allocations the
    // stitches below read, no copy.
    if !scanned.is_empty() {
        let mut partials = lock(&shared.partials);
        for &(slot, shard) in &scanned {
            let state = &states[slot];
            partials.insert(
                &unique[state.index],
                shard,
                generations[shard],
                num_segments,
                Arc::clone(state.parts[shard].as_ref().expect("scanned")),
            );
        }
    }

    // Phase 4: stitch each miss from its (now complete) parts.
    for state in &mut states {
        let trace_id = rep_trace[state.index];
        let (stitched, stitch_micros) = {
            let parts: Vec<&TrialPartial> = state
                .parts
                .iter()
                .map(|part| part.as_deref().expect("filled"))
                .collect();
            let stitch = Span::enter(&shared.telemetry.stitch);
            let stitched = combine_trial_partial_refs(&unique[state.index], &parts);
            (stitched, stitch.finish_with_exemplar(trace_id))
        };
        if trace_id != 0 {
            state.children.push(
                TraceSpan::new("stitch", state.next_start, stitch_micros)
                    .attr("parts", windows.len() as u64),
            );
            state.next_start += stitch_micros;
        }
        let outcome = match stitched {
            Ok(result) => Ok(result),
            Err(_) => partial_fallback(
                shared,
                source,
                &unique[state.index],
                windows.len(),
                state.hits,
                state.rescans,
            ),
        };
        if let Ok(result) = &outcome {
            lock(&shared.cache).insert(unique[state.index].clone(), generations, result.clone());
        }
        results[state.index] = Some(outcome);
    }

    // Phase 5: one scan-stage sample per miss (plan failures included),
    // each carrying the whole phase's elapsed time.
    let phase_micros = phase_started.elapsed().as_micros() as u64;
    for &index in misses {
        shared
            .telemetry
            .scan
            .record_with_exemplar(phase_micros, rep_trace[index]);
    }
    for state in states {
        if rep_trace[state.index] != 0 {
            scan_details[state.index] = Some(ScanDetail {
                micros: phase_micros,
                attribution: Some(state.plan.attribution()),
                partial_hits: state.hits,
                partial_misses: state.rescans,
                children: state.children,
            });
        }
    }
}

/// Answers the shard-aligned subset of a batch's misses over a
/// multi-shard **segment**-axis snapshot from per-segment-shard partial
/// aggregates, and returns the misses it did *not* answer (unaligned
/// plans, plan failures) for the caller's fused session scan.
///
/// A plan is eligible when [`plan_is_shard_aligned`] holds — every
/// group's segments live in one shard — which is exactly the condition
/// under which summing per-shard partials in shard order reproduces the
/// flat scan bit-for-bit (each group receives one non-identity
/// contribution; identity vectors are bitwise no-ops by the kernel's
/// ±0.0 normalisation, ARCHITECTURE.md §3).  Cached partials are keyed
/// `(query, shard)` and stamped with that shard's generation and its own
/// segment count, so a single-store commit invalidates — and rescans —
/// exactly one shard.  Missing pairs are grouped by `(shard, trial
/// window)` and each group runs **one** fused scan of the
/// shard-restricted plans; the per-query loss clip is applied after the
/// combine, inside [`combine_segment_partials`].
///
/// Counter and span contracts match the trial path: one
/// `partial_hits`/`partial_misses` bump per probed pair, one
/// `scan_shard` sample and one `fused_partial_scans` bump per fused
/// scan, one `stitch` sample per answered query.  The caller records the
/// scan-stage samples (whole-branch elapsed) for every miss, including
/// the ones this path answered, and stamps `ScanDetail.micros`.
#[allow(clippy::too_many_arguments)]
fn run_segment_partial_batch<P: SourceProvider>(
    shared: &Shared<P>,
    source: &dyn SegmentSource,
    generations: &[u64],
    ranges: &[(usize, usize)],
    unique: &[Query],
    rep_trace: &[u64],
    misses: &[usize],
    results: &mut [Option<Result<QueryResult, ServeError>>],
    scan_details: &mut [Option<ScanDetail>],
) -> Vec<usize> {
    let mut session_misses: Vec<usize> = Vec::new();
    let mut states: Vec<PartialMiss> = Vec::new();
    for &index in misses {
        match QueryPlan::new(source, &unique[index]) {
            Ok(plan) if plan_is_shard_aligned(&plan, ranges) => {
                states.push(PartialMiss::new(index, plan, ranges.len()));
            }
            // Unaligned plans (a group spans shards: shard-ordered
            // summation would change the float fold) and plan failures
            // take the fused session path, which replans and reports
            // per query.
            _ => session_misses.push(index),
        }
    }
    if states.is_empty() {
        return session_misses;
    }

    // Phase 1: probe every (miss, shard) pair under one short lock.
    // The segment-count half of the key is the shard's own count, and
    // the cached window must equal the plan's whole trial window (the
    // loss clip is applied after the combine, so partials are
    // clip-independent).
    {
        let mut partials = lock(&shared.partials);
        for state in &mut states {
            let window = (state.plan.trial_start, state.plan.trial_end);
            for (shard, &(lo, hi)) in ranges.iter().enumerate() {
                state.parts[shard] = partials
                    .get(&unique[state.index], shard, generations[shard], hi - lo)
                    .filter(|partial| partial.window == window);
            }
            state.count_probe();
        }
    }
    shared
        .counters
        .partial_hits
        .add(states.iter().map(|state| state.hits).sum());
    shared
        .counters
        .partial_misses
        .add(states.iter().map(|state| state.rescans).sum());

    // Phase 2: one fused scan per (shard, trial window) the batch
    // misses, over the shard-restricted plans.
    let mut scanned: Vec<(usize, usize)> = Vec::new();
    for (shard, &(lo, hi)) in ranges.iter().enumerate() {
        let groups = group_missing_by_window(&states, shard, |state| {
            (state.plan.trial_start, state.plan.trial_end)
        });
        for ((start, end), members) in groups {
            let exemplar = group_exemplar(&states, &members, rep_trace);
            let restricted: Vec<QueryPlan> = members
                .iter()
                .map(|&slot| restrict_plan_to_segments(&states[slot].plan, lo, hi))
                .collect();
            let (fresh, group_micros) = {
                let plans: Vec<&QueryPlan> = restricted.iter().collect();
                let shard_scan = Span::enter(&shared.telemetry.scan_shard);
                let fresh = scan_trial_partials_fused(source, &plans, start, end);
                (fresh, shard_scan.finish_with_exemplar(exemplar))
            };
            shared.counters.fused_partial_scans.inc();
            for ((&slot, partial), plan) in members.iter().zip(fresh).zip(&restricted) {
                let state = &mut states[slot];
                if rep_trace[state.index] != 0 {
                    let attribution = plan.attribution_for_window(start, end);
                    state.children.push(
                        TraceSpan::new("scan_shard", state.next_start, group_micros)
                            .attr("shard", shard as u64)
                            .attr("window_start", start as u64)
                            .attr("window_end", end as u64)
                            .attr("segments", attribution.segments as u64)
                            .attr("bytes", attribution.bytes as u64),
                    );
                    state.next_start += group_micros;
                }
                state.parts[shard] = Some(Arc::new(partial));
                scanned.push((slot, shard));
            }
        }
    }

    // Phase 3: publish the fresh partials.
    if !scanned.is_empty() {
        let mut partials = lock(&shared.partials);
        for &(slot, shard) in &scanned {
            let (lo, hi) = ranges[shard];
            let state = &states[slot];
            partials.insert(
                &unique[state.index],
                shard,
                generations[shard],
                hi - lo,
                Arc::clone(state.parts[shard].as_ref().expect("scanned")),
            );
        }
    }

    // Phase 4: combine each miss's per-shard partials in shard order.
    for state in &mut states {
        let trace_id = rep_trace[state.index];
        let (combined, stitch_micros) = {
            let parts: Vec<&TrialPartial> = state
                .parts
                .iter()
                .map(|part| part.as_deref().expect("filled"))
                .collect();
            let stitch = Span::enter(&shared.telemetry.stitch);
            let combined = combine_segment_partials(&unique[state.index], &state.plan, &parts);
            (combined, stitch.finish_with_exemplar(trace_id))
        };
        if trace_id != 0 {
            state.children.push(
                TraceSpan::new("stitch", state.next_start, stitch_micros)
                    .attr("parts", ranges.len() as u64),
            );
            state.next_start += stitch_micros;
        }
        let outcome = match combined {
            Ok(result) => Ok(result),
            Err(_) => partial_fallback(
                shared,
                source,
                &unique[state.index],
                ranges.len(),
                state.hits,
                state.rescans,
            ),
        };
        if let Ok(result) = &outcome {
            lock(&shared.cache).insert(unique[state.index].clone(), generations, result.clone());
        }
        results[state.index] = Some(outcome);
    }

    // The caller records scan-stage samples and stamps `micros` for
    // every miss; this path only pre-fills the traced details it owns.
    for state in states {
        if rep_trace[state.index] != 0 {
            scan_details[state.index] = Some(ScanDetail {
                micros: 0,
                attribution: Some(state.plan.attribution()),
                partial_hits: state.hits,
                partial_misses: state.rescans,
                children: state.children,
            });
        }
    }
    session_misses
}

/// The self-heal path after a failed stitch/combine: cached parts that
/// cannot combine disagree with each other, so none of them can be
/// trusted — unreachable while the cache key contract holds, but a
/// valid query must never error over cache state.  Purges the
/// untrustworthy entries so the next execution rescans cleanly, and
/// answers this one with a full fresh scan.
fn partial_fallback<P: SourceProvider>(
    shared: &Shared<P>,
    source: &dyn SegmentSource,
    query: &Query,
    shards: usize,
    hits: u64,
    rescans: u64,
) -> Result<QueryResult, ServeError> {
    shared.telemetry.recorder.record(
        "stitch-fallback",
        [
            ("shards", EventValue::from(shards)),
            ("cached_parts", EventValue::from(hits)),
            ("rescanned", EventValue::from(rescans)),
        ],
    );
    lock(&shared.partials).purge(query, shards);
    shared
        .telemetry
        .recorder
        .record("cache-purge", [("shards", EventValue::from(shards))]);
    catrisk_riskquery::execute(source, query).map_err(|err| ServeError::InvalidQuery(err.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_store::{random_store, sample_queries};
    use catrisk_riskquery::prelude::*;

    #[test]
    fn served_replies_match_sequential_session() {
        let store = Arc::new(random_store(512, 24, 42));
        let queries = sample_queries();
        let expected = QuerySession::new(&*store).run(&queries).unwrap();

        let server = Server::new(
            Arc::clone(&store),
            ServerConfig {
                max_batch: 4,
                batch_window: Duration::from_micros(500),
                ..ServerConfig::default()
            },
        );
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|q| server.submit(q.clone()).unwrap())
            .collect();
        for (ticket, expected) in tickets.into_iter().zip(&expected) {
            let reply = ticket.wait().unwrap();
            assert_eq!(&reply.result, expected);
            assert!(reply.timings.batch_size >= 1);
        }
        let stats = server.stats();
        assert_eq!(stats.completed, queries.len() as u64);
        assert_eq!(stats.rejected, 0);
        assert!(stats.batches >= 1);
        assert!(stats.mean_batch() >= 1.0);
    }

    #[test]
    fn discovered_stores_surface_in_stats_and_recorder() {
        use crate::catalog::StoreCatalog;
        use catrisk_eventgen::peril::{Peril, Region};
        use catrisk_finterms::layer::LayerId;
        use catrisk_riskstore::StoreWriter;

        let dir = {
            let mut dir = std::env::temp_dir();
            dir.push(format!("catrisk-server-discover-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            dir
        };
        let write = |name: &str, layers: std::ops::Range<u32>| {
            let mut writer = StoreWriter::create(dir.join(name), 8).unwrap();
            for layer in layers {
                let losses: Vec<f64> = (0..8).map(|t| (layer as usize + t) as f64).collect();
                let meta = SegmentMeta::new(
                    LayerId(layer),
                    Peril::ALL[layer as usize % Peril::ALL.len()],
                    Region::Europe,
                    LineOfBusiness::Property,
                );
                writer.append_segment(meta, &losses, &losses).unwrap();
            }
            writer.finish().unwrap();
        };
        write("a.clm", 0..2);
        let catalog = StoreCatalog::open_dir(&dir).unwrap();
        catalog.set_refresh_interval(Duration::ZERO);
        let server = Server::with_defaults(catalog);
        let query = QueryBuilder::new()
            .group_by(Dimension::Layer)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let rows_before = server.query(query.clone()).unwrap().result.rows.len();
        assert_eq!(server.stats().discovered_stores, 0);

        // The ingest writer drops a sibling shard; the next batch's
        // refresh adopts it and announces it through both channels.
        write("b.clm", 2..4);
        let rows_after = server.query(query).unwrap().result.rows.len();
        assert_eq!(rows_after, rows_before + 2);
        let stats = server.stats();
        assert_eq!(stats.discovered_stores, 1);
        let events: Vec<_> = server
            .recorder_dump()
            .into_iter()
            .filter(|e| e.kind == "store-discovered")
            .collect();
        assert_eq!(
            events.len() as u64,
            stats.discovered_stores,
            "counter and recorder events must agree"
        );
        assert!(
            matches!(&events[0].fields[0].1, EventValue::Str(path) if path.contains("b.clm")),
            "the event names the adopted file"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_queries_are_rejected_at_submit() {
        let store = Arc::new(random_store(16, 4, 1));
        let server = Server::with_defaults(store);
        let bad = QueryBuilder::new()
            .trials(0..999_999)
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        match server.submit(bad) {
            Err(ServeError::InvalidQuery(msg)) => assert!(!msg.is_empty()),
            other => panic!("expected InvalidQuery, got {other:?}"),
        }
        // The good query still flows.
        let good = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert!(server.query(good).is_ok());
    }

    #[test]
    fn shutdown_refuses_new_work_and_is_idempotent() {
        let store = Arc::new(random_store(16, 4, 1));
        let server = Server::with_defaults(store);
        server.shutdown();
        server.shutdown();
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        assert!(matches!(
            server.submit(query),
            Err(ServeError::ShuttingDown)
        ));
        assert_eq!(ServeError::ShuttingDown.kind(), "shutting-down");
    }

    #[test]
    fn repeated_queries_hit_the_result_cache() {
        let store = Arc::new(random_store(128, 8, 33));
        let server = Server::new(Arc::clone(&store), ServerConfig::default());
        let query = QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Tvar { level: 0.99 })
            .build()
            .unwrap();
        let first = server.query(query.clone()).unwrap().result;
        let stats = server.stats();
        assert_eq!(stats.cache_misses, 1);
        // Same query again: a hit, and bit-identical.
        let second = server.query(query.clone()).unwrap().result;
        assert_eq!(first, second);
        let stats = server.stats();
        assert!(stats.cache_hits >= 1, "{stats:?}");
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.cache_hit_rate() > 0.0);
        // A static provider never refreshes.
        assert_eq!(stats.refreshes, 0);
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let store = Arc::new(random_store(64, 4, 7));
        let server = Server::new(
            Arc::clone(&store),
            ServerConfig {
                cache_capacity: 0,
                ..ServerConfig::default()
            },
        );
        let query = QueryBuilder::new()
            .aggregate(Aggregate::Mean)
            .build()
            .unwrap();
        let expected = catrisk_riskquery::execute(&*store, &query).unwrap();
        for _ in 0..3 {
            assert_eq!(server.query(query.clone()).unwrap().result, expected);
        }
        let stats = server.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.cache_misses, 3);
    }

    #[test]
    fn identical_queries_from_many_submitters_dedup() {
        let store = Arc::new(random_store(256, 8, 9));
        let server = Server::new(
            Arc::clone(&store),
            ServerConfig {
                // A wide-open window so every submit lands in one batch.
                batch_window: Duration::from_millis(50),
                ..ServerConfig::default()
            },
        );
        let query = QueryBuilder::new()
            .group_by(Dimension::Region)
            .aggregate(Aggregate::Tvar { level: 0.95 })
            .build()
            .unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| server.submit(query.clone()).unwrap())
            .collect();
        let expected = catrisk_riskquery::execute(&*store, &query).unwrap();
        for ticket in tickets {
            assert_eq!(ticket.wait().unwrap().result, expected);
        }
    }
}
